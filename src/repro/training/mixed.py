"""Mixed per-layer alphabet plans — the paper's §VI.E add-on technique.

Small concluding layers matter more for the output and cost a tiny share of
processing cycles, so they can afford more alphabets: 1-alphabet neurons in
the early large layers, 2/4-alphabet neurons in the last one or two layers.
This module builds such plans, retrains under them, and evaluates both the
accuracy (bit-accurate engine) and the energy (CSHM engine with per-layer
designs) — everything Fig. 11 plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4, AlphabetSet
from repro.datasets.base import Dataset
from repro.hardware.engine import ProcessingEngine
from repro.nn.network import Sequential
from repro.nn.optim import SGD
from repro.nn.quantized import QuantizationSpec, QuantizedNetwork
from repro.training.constrained import (
    ConstraintProjector,
    constrained_trainer,
    weight_param_name,
)

__all__ = ["build_mixed_plan", "paper_mixed_plan", "MIXED_PLAN_APPS",
           "MixedPlanResult", "evaluate_plan"]

#: Applications with a §VI.E mixed plan (the ones Fig. 11 covers).
MIXED_PLAN_APPS = ("mnist_mlp", "svhn", "tich")


def build_mixed_plan(network: Sequential,
                     final_sets: list[AlphabetSet],
                     base_set: AlphabetSet = ALPHA_1,
                     ) -> list[AlphabetSet]:
    """§VI.E plan: ``base_set`` everywhere except the last ``len(final_sets)``
    parameterised layers, which get *final_sets* in order.

    For the paper's SVHN example: ``build_mixed_plan(net, [ALPHA_2, ALPHA_4])``
    puts {1} on the first four layers, {1,3} on the penultimate and
    {1,3,5,7} on the ultimate layer.
    """
    num_layers = sum(1 for layer in network.layers
                     if weight_param_name(layer) is not None)
    if len(final_sets) > num_layers:
        raise ValueError(
            f"{len(final_sets)} final sets for {num_layers} layers"
        )
    plan: list[AlphabetSet] = [base_set] * (num_layers - len(final_sets))
    plan.extend(final_sets)
    return plan


def paper_mixed_plan(app: str, network: Sequential) -> list[AlphabetSet]:
    """The paper's §VI.E plan for each Fig. 11 application.

    MNIST (2-layer): {1} hidden, {1,3,5,7} output.
    SVHN (6-layer) and TICH (5-layer): {1} early, {1,3} penultimate,
    {1,3,5,7} ultimate.
    """
    if app == "mnist_mlp":
        return build_mixed_plan(network, [ALPHA_4], base_set=ALPHA_1)
    if app in ("svhn", "tich"):
        return build_mixed_plan(network, [ALPHA_2, ALPHA_4],
                                base_set=ALPHA_1)
    raise ValueError(f"no §VI.E mixed plan for {app!r}; "
                     f"choose from {MIXED_PLAN_APPS}")


@dataclass(frozen=True)
class MixedPlanResult:
    """Accuracy and energy of one (possibly mixed) deployment plan."""

    label: str
    accuracy: float
    energy_nj: float
    cycles: int

    def normalized_energy(self, baseline: "MixedPlanResult") -> float:
        return self.energy_nj / baseline.energy_nj


def retrain_with_plan(network: Sequential, dataset: Dataset, bits: int,
                      plan: list[AlphabetSet | None],
                      learning_rate: float = 0.075,
                      batch_size: int = 32, patience: int = 3,
                      max_epochs: int = 15,
                      use_images: bool = False,
                      constraint_mode: str = "greedy") -> None:
    """Constrained retraining of *network* under a per-layer plan."""
    x_train = dataset.x_train if use_images else dataset.flat_train
    x_test = dataset.x_test if use_images else dataset.flat_test
    projector = ConstraintProjector(network, bits, layer_plan=plan,
                                    mode=constraint_mode)
    optimizer = SGD(network, learning_rate)
    trainer = constrained_trainer(network, optimizer, projector,
                                  batch_size=batch_size, patience=patience)
    trainer.fit(x_train, dataset.y_train_onehot, x_test, dataset.y_test,
                max_epochs=max_epochs)


def evaluate_plan(network: Sequential, dataset: Dataset, bits: int,
                  plan: list[AlphabetSet | None],
                  label: str,
                  use_images: bool = False,
                  constraint_mode: str = "greedy") -> MixedPlanResult:
    """Bit-accurate accuracy + engine energy of *network* under *plan*.

    The network is assumed already (re)trained for the plan; pass a plan of
    ``None`` entries to evaluate the conventional deployment.
    """
    x_test = dataset.x_test if use_images else dataset.flat_test
    base_spec = QuantizationSpec(bits)
    layer_specs = []
    for aset in plan:
        if aset is None:
            layer_specs.append(QuantizationSpec(bits))
        else:
            layer_specs.append(QuantizationSpec.constrained(
                bits, aset, mode=constraint_mode))
    quantized = QuantizedNetwork.from_float(network, base_spec,
                                            layer_specs=layer_specs)
    accuracy = quantized.accuracy(x_test, dataset.y_test)

    engine = ProcessingEngine(bits)
    report = engine.run(network.topology(), layer_alphabets=list(plan))
    return MixedPlanResult(label=label, accuracy=accuracy,
                           energy_nj=report.energy_nj, cycles=report.cycles)
