"""Algorithm 2: the NN training and testing design methodology.

1. Train the network unconstrained until accuracy saturates.
2. Measure the baseline accuracy ``J`` (through the quantised engine with a
   conventional multiplier) and create a restore point.
3. Retrain from the restore point with the smallest alphabet count at a
   lower learning rate, until saturation.
4. Measure the retrained accuracy ``K`` through the ASM engine.  Accept if
   ``K >= J * Q``; otherwise restart from the restore point with the next
   larger alphabet set.

The ladder defaults to the paper's 1 → 2 → 4 → 8 alphabet escalation; the
8-alphabet set is exact, so the procedure always terminates with a feasible
design (worst case: zero approximation, zero energy benefit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.alphabet import AlphabetSet, standard_set
from repro.datasets.base import Dataset
from repro.nn.network import Sequential
from repro.nn.optim import SGD
from repro.nn.quantized import QuantizationSpec, QuantizedNetwork
from repro.nn.trainer import TrainHistory, Trainer
from repro.training.constrained import ConstraintProjector, constrained_trainer

__all__ = ["StageResult", "MethodologyResult", "DesignMethodology"]


@dataclass(frozen=True)
class StageResult:
    """Outcome of one retraining stage of Algorithm 2."""

    num_alphabets: int
    alphabet_set: AlphabetSet
    accuracy: float
    epochs: int
    accepted: bool


@dataclass
class MethodologyResult:
    """Full record of an Algorithm 2 run."""

    float_accuracy: float
    baseline_accuracy: float          # J: quantised conventional engine
    quality: float
    stages: list[StageResult] = field(default_factory=list)

    @property
    def final_stage(self) -> StageResult:
        if not self.stages:
            raise ValueError("methodology ran no stages")
        return self.stages[-1]

    @property
    def succeeded(self) -> bool:
        return bool(self.stages) and self.stages[-1].accepted

    @property
    def chosen_alphabets(self) -> int:
        return self.final_stage.num_alphabets

    @property
    def accuracy_loss(self) -> float:
        """Accuracy loss vs the conventional baseline, in fractional points
        (the paper's 'Accuracy Loss (%)' divided by 100)."""
        return self.baseline_accuracy - self.final_stage.accuracy


class DesignMethodology:
    """Drives Algorithm 2 end to end for one benchmark.

    Parameters mirror the paper: ``quality`` is the constraint ``Q <= 1``;
    ``ladder`` the alphabet counts tried in order; ``retrain_lr_scale`` the
    "lower learning rate" of step 3.
    """

    def __init__(self, bits: int, quality: float = 0.99,
                 ladder: tuple[int, ...] = (1, 2, 4, 8),
                 base_learning_rate: float = 0.3,
                 retrain_lr_scale: float = 0.25,
                 batch_size: int = 32,
                 patience: int = 3,
                 constraint_mode: str = "greedy",
                 seed: int = 0,
                 backend: str = "reference",
                 eval_batch_size: int | None = None) -> None:
        if not 0 < quality <= 1:
            raise ValueError(f"quality must be in (0, 1], got {quality}")
        if not ladder:
            raise ValueError("ladder must not be empty")
        self.bits = bits
        self.quality = quality
        self.ladder = tuple(ladder)
        self.base_learning_rate = base_learning_rate
        self.retrain_lr_scale = retrain_lr_scale
        self.batch_size = batch_size
        self.patience = patience
        self.constraint_mode = constraint_mode
        self.seed = seed
        #: kernel backend for the K-measurements and the per-step weight
        #: projection (bit-identical across backends; the pipeline passes
        #: its configured one through)
        self.backend = backend
        #: evaluation batch size for the K-measurements (``None`` = the
        #: kernels default); memory knob only
        self.eval_batch_size = eval_batch_size

    # ------------------------------------------------------------------
    def _engine_accuracy(self, network: Sequential, dataset: Dataset,
                         x_test, alphabet_set: AlphabetSet | None) -> float:
        """Accuracy through the bit-accurate engine."""
        if alphabet_set is None:
            spec = QuantizationSpec(self.bits)
        else:
            spec = QuantizationSpec.constrained(
                self.bits, alphabet_set, mode=self.constraint_mode)
        from repro.kernels import DEFAULT_EVAL_BATCH

        quantized = QuantizedNetwork.from_float(network, spec,
                                                backend=self.backend)
        return quantized.accuracy(
            x_test, dataset.y_test,
            batch_size=self.eval_batch_size or DEFAULT_EVAL_BATCH)

    def run(self, network: Sequential, dataset: Dataset,
            max_epochs: int = 30, retrain_epochs: int = 15,
            use_images: bool = False,
            verbose: bool = False) -> MethodologyResult:
        """Execute Algorithm 2 on *network* / *dataset*."""
        x_train = dataset.x_train if use_images else dataset.flat_train
        x_test = dataset.x_test if use_images else dataset.flat_test

        # step 1: unconstrained training to saturation
        optimizer = SGD(network, self.base_learning_rate)
        trainer = Trainer(network, optimizer, batch_size=self.batch_size,
                          patience=self.patience)
        trainer.fit(x_train, dataset.y_train_onehot, x_test, dataset.y_test,
                    max_epochs=max_epochs, verbose=verbose)

        # step 2: baseline accuracy J and restore point
        float_accuracy = network.accuracy(x_test, dataset.y_test)
        baseline = self._engine_accuracy(network, dataset, x_test, None)
        restore_point = network.state()
        return self.escalate(network, dataset, restore_point, baseline,
                             float_accuracy=float_accuracy,
                             retrain_epochs=retrain_epochs,
                             use_images=use_images, verbose=verbose)

    def escalate(self, network: Sequential, dataset: Dataset,
                 restore_point: list, baseline_accuracy: float,
                 float_accuracy: float | None = None,
                 retrain_epochs: int = 15, use_images: bool = False,
                 verbose: bool = False) -> MethodologyResult:
        """Steps 3-4 of Algorithm 2, starting from an already-trained
        *restore_point* whose conventional-engine accuracy is
        *baseline_accuracy* (J).

        Escalates through the ladder until ``K >= J * Q``; on return the
        network holds the last-tried (i.e. chosen) stage's weights.  Split
        out of :meth:`run` so callers that train elsewhere — the
        ``constrain`` stage of :mod:`repro.pipeline` — can reuse the
        ladder without retraining step 1.
        """
        x_train = dataset.x_train if use_images else dataset.flat_train
        x_test = dataset.x_test if use_images else dataset.flat_test
        baseline = baseline_accuracy
        result = MethodologyResult(
            float_accuracy=(baseline_accuracy if float_accuracy is None
                            else float_accuracy),
            baseline_accuracy=baseline,
            quality=self.quality,
        )

        # steps 3-4: escalate the alphabet count until K >= J * Q
        for num_alphabets in self.ladder:
            alphabet_set = standard_set(num_alphabets)
            network.load_state(restore_point)
            projector = ConstraintProjector(
                network, self.bits, alphabet_set,
                mode=self.constraint_mode, backend=self.backend)
            optimizer = SGD(
                network, self.base_learning_rate * self.retrain_lr_scale)
            trainer = constrained_trainer(
                network, optimizer, projector,
                batch_size=self.batch_size, patience=self.patience)
            history: TrainHistory = trainer.fit(
                x_train, dataset.y_train_onehot, x_test, dataset.y_test,
                max_epochs=retrain_epochs, verbose=verbose)
            accuracy = self._engine_accuracy(
                network, dataset, x_test, alphabet_set)
            accepted = accuracy >= baseline * self.quality
            result.stages.append(StageResult(
                num_alphabets=num_alphabets,
                alphabet_set=alphabet_set,
                accuracy=accuracy,
                epochs=history.epochs_run,
                accepted=accepted,
            ))
            if verbose:  # pragma: no cover - console noise
                print(f"alphabets={num_alphabets}: K={accuracy:.4f} "
                      f"(J={baseline:.4f}, Q={self.quality}) "
                      f"{'accepted' if accepted else 'rejected'}")
            if accepted:
                break
        return result
