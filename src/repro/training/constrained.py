"""Constrained (re)training: projected SGD under quartet constraints.

The paper "imposes restrictions on the weight update" during retraining so
that unsupported quartet values never occur.  The differentiable-training
analogue is projection: after every optimiser step each synapse matrix is
quantised to its per-layer power-of-two grid, pushed onto the alphabet-
supported quartet grid by Algorithm 1, and dequantised back to float.
Biases are left unconstrained — the engine adds them in the accumulator;
they never pass through the multiplier.

:class:`ConstraintProjector` also supports a *per-layer* alphabet plan
(the paper's §VI.E mixed networks): pass one alphabet set (or ``None`` for
an unconstrained layer) per parameterised layer.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.asm.alphabet import AlphabetSet
from repro.asm.constraints import WeightConstrainer
from repro.kernels import get_backend, quantize_constrain
from repro.kernels.registry import KernelBackend
from repro.nn.layers import Conv2D, Dense, ScaledAvgPool2D
from repro.nn.network import Sequential
from repro.nn.optim import SGD
from repro.nn.trainer import Trainer

__all__ = ["ConstraintProjector", "constrained_trainer", "weight_param_name"]

#: Which parameter of each layer type passes through the multiplier.
_WEIGHT_PARAMS = {Dense: "W", Conv2D: "W", ScaledAvgPool2D: "gain"}


def weight_param_name(layer) -> str | None:
    """Name of the multiplier-facing parameter of *layer*, if any."""
    for cls, param in _WEIGHT_PARAMS.items():
        if isinstance(layer, cls):
            return param
    return None


class ConstraintProjector:
    """Projects a network's weights onto alphabet-supported grids.

    Parameters
    ----------
    network:
        The network being trained.
    bits:
        Weight word width (8/12).
    alphabet_set:
        Single set applied to every parameterised layer, or ``None``
        combined with ``layer_plan``.
    layer_plan:
        Optional per-layer alphabet sets (``None`` entries leave that layer
        unconstrained), aligned with the network's parameterised layers.
    mode:
        Constraint rounding mode (``"greedy"`` = Algorithm 1, or
        ``"nearest"``).
    backend:
        Projection-kernel backend (:mod:`repro.kernels`): ``"reference"``
        re-runs the original quantise → constrain → dequantise sequence,
        ``"fast"`` (the ``"auto"`` default) runs the fused in-place pass
        with memoized per-layer formats and buffers.  Bit-identical
        results either way — the projection runs after **every**
        optimiser step, so this is the retraining hot-loop speed knob
        (see ``BENCH_training.json``).
    """

    def __init__(self, network: Sequential, bits: int,
                 alphabet_set: AlphabetSet | None = None,
                 layer_plan: list[AlphabetSet | None] | None = None,
                 mode: str = "greedy",
                 backend: str | KernelBackend = "auto") -> None:
        self.network = network
        self.bits = bits
        self.mode = mode
        self._kernel = get_backend(backend)
        param_layers = [layer for layer in network.layers
                        if weight_param_name(layer) is not None]
        if layer_plan is None:
            if alphabet_set is None:
                raise ValueError("pass alphabet_set or layer_plan")
            layer_plan = [alphabet_set] * len(param_layers)
        if len(layer_plan) != len(param_layers):
            raise ValueError(
                f"plan covers {len(layer_plan)} layers, network has "
                f"{len(param_layers)} parameterised layers"
            )
        self.layer_plan = list(layer_plan)
        self._targets = []
        constrainer_cache: dict[tuple[int, ...], WeightConstrainer] = {}
        for layer, aset in zip(param_layers, layer_plan):
            if aset is None:
                continue
            key = aset.alphabets
            if key not in constrainer_cache:
                constrainer_cache[key] = WeightConstrainer(
                    bits, aset, mode=mode)
            self._targets.append(
                (layer, weight_param_name(layer), constrainer_cache[key],
                 {}))   # per-target kernel cache (memoized fmt + buffers)

    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """Name of the selected projection-kernel backend."""
        return self._kernel.name

    def project(self) -> None:
        """Snap every constrained weight tensor onto its supported grid.

        Dispatches to the backend's projection kernel
        (:meth:`~repro.kernels.registry.KernelBackend.project_weights`);
        every backend implements the same quantise → constrain →
        dequantise round trip (reference semantics:
        :func:`repro.kernels.quantize_constrain`).
        """
        if not obs.enabled():
            for layer, param, constrainer, cache in self._targets:
                layer.params[param] = self._kernel.project_weights(
                    layer.params[param], self.bits, constrainer, cache)
            return
        started = time.perf_counter()
        for layer, param, constrainer, cache in self._targets:
            layer.params[param] = self._kernel.project_weights(
                layer.params[param], self.bits, constrainer, cache)
        obs.record_kernel(self._kernel.name, "project_weights",
                          time.perf_counter() - started,
                          calls=len(self._targets))

    __call__ = project

    @property
    def num_constrained_layers(self) -> int:
        return len(self._targets)

    def violations(self) -> int:
        """Count weights currently off their supported grid (0 right after
        a projection — the invariant the tests check)."""
        total = 0
        for layer, param, constrainer, _ in self._targets:
            _, ints, constrained = quantize_constrain(
                layer.params[param], self.bits, constrainer)
            total += int(np.count_nonzero(constrained != ints))
        return total


def constrained_trainer(network: Sequential, optimizer: SGD,
                        projector: ConstraintProjector,
                        **trainer_kwargs) -> Trainer:
    """A :class:`Trainer` that projects after every optimiser step and once
    up front (so training starts from a feasible point)."""
    projector.project()
    return Trainer(network, optimizer, post_step=projector.project,
                   **trainer_kwargs)
