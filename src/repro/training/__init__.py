"""Constrained retraining, Algorithm-2 methodology and mixed plans."""

from repro.training.constrained import (
    ConstraintProjector,
    constrained_trainer,
    weight_param_name,
)
from repro.training.methodology import (
    DesignMethodology,
    MethodologyResult,
    StageResult,
)
from repro.training.mixed import (
    MixedPlanResult,
    build_mixed_plan,
    evaluate_plan,
    retrain_with_plan,
)

__all__ = [
    "ConstraintProjector", "constrained_trainer", "weight_param_name",
    "DesignMethodology", "MethodologyResult", "StageResult",
    "MixedPlanResult", "build_mixed_plan", "evaluate_plan",
    "retrain_with_plan",
]
