"""Two's-complement encoding helpers used throughout the ASM datapath models.

The hardware described in the paper operates on 8- and 12-bit two's-complement
words.  These helpers convert between Python integers and fixed-width machine
words, and provide the small bit-level predicates the rest of the library
needs (sign extraction, power-of-two tests, ceil-log2).

All functions validate their inputs aggressively: silent wrap-around is a
hardware behaviour we model *explicitly* elsewhere (see
:mod:`repro.fixedpoint.qformat` saturation), never an accident.
"""

from __future__ import annotations

__all__ = [
    "signed_range",
    "to_twos_complement",
    "from_twos_complement",
    "sign_bit",
    "bit_string",
    "is_power_of_two",
    "clog2",
    "popcount",
]


def signed_range(bits: int) -> tuple[int, int]:
    """Return the inclusive ``(minimum, maximum)`` of a signed *bits*-bit word.

    >>> signed_range(8)
    (-128, 127)
    """
    _check_bits(bits)
    half = 1 << (bits - 1)
    return -half, half - 1


def to_twos_complement(value: int, bits: int) -> int:
    """Encode *value* as an unsigned *bits*-bit two's-complement word.

    Raises :class:`OverflowError` if *value* does not fit.

    >>> to_twos_complement(-1, 8)
    255
    >>> to_twos_complement(105, 8)
    105
    """
    _check_bits(bits)
    low, high = signed_range(bits)
    if not low <= value <= high:
        raise OverflowError(
            f"value {value} does not fit in a signed {bits}-bit word "
            f"(range [{low}, {high}])"
        )
    return value & ((1 << bits) - 1)


def from_twos_complement(word: int, bits: int) -> int:
    """Decode an unsigned *bits*-bit two's-complement *word* to a Python int.

    >>> from_twos_complement(255, 8)
    -1
    >>> from_twos_complement(105, 8)
    105
    """
    _check_bits(bits)
    if not 0 <= word < (1 << bits):
        raise ValueError(f"word {word} is not an unsigned {bits}-bit value")
    if word & (1 << (bits - 1)):
        return word - (1 << bits)
    return word


def sign_bit(value: int, bits: int) -> int:
    """Return the sign bit (0 or 1) of *value* viewed as a *bits*-bit word."""
    return (to_twos_complement(value, bits) >> (bits - 1)) & 1


def bit_string(value: int, bits: int) -> str:
    """Render *value* as a *bits*-character binary string (two's complement).

    >>> bit_string(105, 8)
    '01101001'
    >>> bit_string(-2, 4)
    '1110'
    """
    return format(to_twos_complement(value, bits), f"0{bits}b")


def is_power_of_two(value: int) -> bool:
    """True when *value* is a positive power of two (1, 2, 4, ...)."""
    return value > 0 and (value & (value - 1)) == 0


def clog2(value: int) -> int:
    """Ceiling of log2 for positive integers; clog2(1) == 0.

    Used when sizing mux trees and barrel shifters in the hardware model.
    """
    if value < 1:
        raise ValueError(f"clog2 requires a positive integer, got {value}")
    return (value - 1).bit_length()


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError(f"popcount requires a non-negative integer, got {value}")
    return bin(value).count("1")


def popcount_array(values) -> "np.ndarray":
    """Vectorised popcount for non-negative int64 arrays.

    Used by the cycle-accurate engine simulator to count bit toggles
    (Hamming distance of consecutive bus values).
    """
    import numpy as np

    values = np.asarray(values, dtype=np.int64)
    if values.size and values.min() < 0:
        raise ValueError("popcount_array requires non-negative values")
    counts = np.zeros(values.shape, dtype=np.int64)
    work = values.copy()
    while work.any():
        counts += work & 1
        work >>= 1
    return counts


def _check_bits(bits: int) -> None:
    if bits < 2:
        raise ValueError(f"word width must be at least 2 bits, got {bits}")
