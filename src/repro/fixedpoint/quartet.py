"""Quartet decomposition of synapse-weight magnitudes.

The ASM splits the magnitude of a weight into 4-bit groups the paper calls
*quartets*.  For an *n*-bit two's-complement weight the most-significant
quartet loses one bit to the sign, so:

* 8-bit weight  → quartets ``(P, R)`` with widths ``(3, 4)``
* 12-bit weight → quartets ``(P, Q, R)`` with widths ``(3, 4, 4)``

(the paper's Fig. 4).  The sign is handled outside the quartet datapath —
"we will multiply only the absolute value".

:class:`QuartetLayout` owns the split/join arithmetic.  Quartets are indexed
LSB-first throughout the library (index 0 == ``R``), because shift amounts
grow with the index (quartet *i* is weighted by ``16**i``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["QuartetLayout", "LAYOUT_8BIT", "LAYOUT_12BIT"]

_QUARTET_BITS = 4


@dataclass(frozen=True)
class QuartetLayout:
    """Describes how a signed *bits*-bit weight splits into 4-bit quartets."""

    bits: int

    def __post_init__(self) -> None:
        if self.bits < 5:
            raise ValueError(
                f"a quartet layout needs at least 5 bits (sign + one quartet), "
                f"got {self.bits}"
            )
        if (self.bits - 1) % 1 != 0:
            raise ValueError(f"invalid bit width {self.bits}")

    @property
    def magnitude_bits(self) -> int:
        """Bits available to the magnitude (all but the sign)."""
        return self.bits - 1

    @property
    def num_quartets(self) -> int:
        """Number of quartets, LSB-first; the MSB quartet may be narrow."""
        return -(-self.magnitude_bits // _QUARTET_BITS)

    @property
    def quartet_widths(self) -> tuple[int, ...]:
        """Width in bits of each quartet, LSB-first.

        >>> QuartetLayout(8).quartet_widths
        (4, 3)
        >>> QuartetLayout(12).quartet_widths
        (4, 4, 3)
        """
        widths = []
        remaining = self.magnitude_bits
        while remaining > 0:
            widths.append(min(_QUARTET_BITS, remaining))
            remaining -= _QUARTET_BITS
        return tuple(widths)

    @property
    def max_magnitude(self) -> int:
        """Largest representable magnitude (``2**(bits-1) - 1``)."""
        return (1 << self.magnitude_bits) - 1

    def quartet_max(self, index: int) -> int:
        """Largest value the quartet at LSB-first *index* can hold."""
        return (1 << self.quartet_widths[index]) - 1

    # ------------------------------------------------------------------
    def split(self, magnitude: int) -> tuple[int, ...]:
        """Split a non-negative *magnitude* into quartet values, LSB-first.

        >>> QuartetLayout(8).split(105)   # 0b110_1001 -> R=0b1001, P=0b110
        (9, 6)
        >>> QuartetLayout(12).split(0b101_1010_0110)
        (6, 10, 5)
        """
        self._check_magnitude(magnitude)
        quartets = []
        for width in self.quartet_widths:
            quartets.append(magnitude & ((1 << width) - 1))
            magnitude >>= width
        return tuple(quartets)

    def join(self, quartets: tuple[int, ...] | list[int]) -> int:
        """Inverse of :meth:`split`.

        >>> QuartetLayout(8).join((9, 6))
        105
        """
        widths = self.quartet_widths
        if len(quartets) != len(widths):
            raise ValueError(
                f"expected {len(widths)} quartets, got {len(quartets)}"
            )
        magnitude = 0
        shift = 0
        for value, width in zip(quartets, widths):
            if not 0 <= value <= (1 << width) - 1:
                raise ValueError(
                    f"quartet value {value} does not fit in {width} bits"
                )
            magnitude |= value << shift
            shift += width
        return magnitude

    def shift_of(self, index: int) -> int:
        """Bit position of quartet *index*'s LSB (its weight is ``2**shift``).

        >>> QuartetLayout(12).shift_of(1)
        4
        """
        widths = self.quartet_widths
        if not 0 <= index < len(widths):
            raise IndexError(f"quartet index {index} out of range")
        return sum(widths[:index])

    def _check_magnitude(self, magnitude: int) -> None:
        if magnitude < 0:
            raise ValueError(f"magnitude must be non-negative, got {magnitude}")
        if magnitude > self.max_magnitude:
            raise OverflowError(
                f"magnitude {magnitude} exceeds {self.bits}-bit limit "
                f"{self.max_magnitude}"
            )


LAYOUT_8BIT = QuartetLayout(8)
LAYOUT_12BIT = QuartetLayout(12)
