"""Fixed-point Q-format quantisation.

The paper stores synapse weights and neuron inputs as 8- or 12-bit
two's-complement words.  A :class:`QFormat` describes where the binary point
sits; quantisation is round-to-nearest with saturation, matching what the
Verilog processing engine would see after weight download.

Per-layer scales are restricted to powers of two (:func:`qformat_for_range`)
because a power-of-two scale costs nothing in hardware (a wire re-labelling),
whereas an arbitrary scale would itself need a multiplier — exactly the unit
the paper is trying to remove.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.binary import signed_range

__all__ = ["QFormat", "qformat_for_range"]


@dataclass(frozen=True)
class QFormat:
    """Signed fixed-point format with *total_bits* bits, *frac_bits* of which
    sit right of the binary point.

    ``frac_bits`` may be negative (coarse grids) or exceed ``total_bits - 1``
    (sub-unit ranges); both arise from power-of-two per-layer scaling.

    >>> q = QFormat(8, 7)
    >>> q.resolution
    0.0078125
    >>> q.quantize(0.5)
    64
    >>> q.to_float(64)
    0.5
    """

    total_bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise ValueError(
                f"QFormat needs at least 2 bits, got {self.total_bits}"
            )

    @property
    def int_bits(self) -> int:
        """Bits left of the binary point, excluding the sign bit."""
        return self.total_bits - 1 - self.frac_bits

    @property
    def resolution(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** (-self.frac_bits)

    @property
    def min_value(self) -> float:
        """Most negative representable value."""
        return signed_range(self.total_bits)[0] * self.resolution

    @property
    def max_value(self) -> float:
        """Most positive representable value."""
        return signed_range(self.total_bits)[1] * self.resolution

    @property
    def max_magnitude(self) -> int:
        """Largest integer magnitude (``2**(total_bits-1) - 1``)."""
        return signed_range(self.total_bits)[1]

    # ------------------------------------------------------------------
    # scalar API
    # ------------------------------------------------------------------
    def quantize(self, value: float) -> int:
        """Round *value* to the nearest representable integer code, saturating.

        Round-half-away-from-zero, the behaviour of a rounding adder stage.
        """
        low, high = signed_range(self.total_bits)
        scaled = value / self.resolution
        code = int(np.floor(abs(scaled) + 0.5)) * (1 if scaled >= 0 else -1)
        return max(low, min(high, code))

    def to_float(self, code: int) -> float:
        """Value of the integer *code* in this format."""
        low, high = signed_range(self.total_bits)
        if not low <= code <= high:
            raise OverflowError(
                f"code {code} outside signed {self.total_bits}-bit range"
            )
        return code * self.resolution

    # ------------------------------------------------------------------
    # array API
    # ------------------------------------------------------------------
    def quantize_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`quantize`; returns an ``int64`` array."""
        low, high = signed_range(self.total_bits)
        scaled = np.asarray(values, dtype=np.float64) / self.resolution
        codes = np.sign(scaled) * np.floor(np.abs(scaled) + 0.5)
        return np.clip(codes, low, high).astype(np.int64)

    def to_float_array(self, codes: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`to_float`; validates range."""
        codes = np.asarray(codes)
        low, high = signed_range(self.total_bits)
        if codes.size and (codes.min() < low or codes.max() > high):
            raise OverflowError(
                f"codes outside signed {self.total_bits}-bit range"
            )
        return codes.astype(np.float64) * self.resolution

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Q{self.int_bits}.{self.frac_bits}"


def qformat_for_range(total_bits: int, max_abs: float) -> QFormat:
    """Choose the finest power-of-two-scaled :class:`QFormat` covering
    ``[-max_abs, +max_abs]``.

    This is the per-layer weight scale rule: the integer grid is scaled by
    ``2**-frac_bits`` with the largest ``frac_bits`` such that ``max_abs``
    still fits.

    >>> qformat_for_range(8, 0.9)
    QFormat(total_bits=8, frac_bits=7)
    >>> qformat_for_range(8, 3.5)
    QFormat(total_bits=8, frac_bits=5)
    """
    if max_abs <= 0:
        raise ValueError(f"max_abs must be positive, got {max_abs}")
    import math

    max_mag = signed_range(total_bits)[1]
    # Largest frac such that max_abs <= max_mag * 2**-frac, computed directly
    # then nudged to absorb float rounding at power-of-two boundaries.
    frac = math.floor(math.log2(max_mag / max_abs))
    while max_abs > max_mag * 2.0 ** (-frac):
        frac -= 1
    while max_abs <= max_mag * 2.0 ** (-(frac + 1)):
        frac += 1
    return QFormat(total_bits, frac)
