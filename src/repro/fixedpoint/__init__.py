"""Fixed-point arithmetic substrate: two's complement, Q-formats, quartets."""

from repro.fixedpoint.binary import (
    bit_string,
    clog2,
    from_twos_complement,
    is_power_of_two,
    popcount,
    sign_bit,
    signed_range,
    to_twos_complement,
)
from repro.fixedpoint.qformat import QFormat, qformat_for_range
from repro.fixedpoint.quartet import LAYOUT_8BIT, LAYOUT_12BIT, QuartetLayout

__all__ = [
    "bit_string",
    "clog2",
    "from_twos_complement",
    "is_power_of_two",
    "popcount",
    "sign_bit",
    "signed_range",
    "to_twos_complement",
    "QFormat",
    "qformat_for_range",
    "QuartetLayout",
    "LAYOUT_8BIT",
    "LAYOUT_12BIT",
]
