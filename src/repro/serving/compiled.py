"""Compiled models: the serving-side view of an exported network.

A :class:`CompiledModel` loads an artifact bundle straight into contiguous
integer weight matrices — the ASM effective-weight remap was folded in at
export time, so a forward pass is pure batched integer matmul plus the
activation/requantisation arithmetic, with **no**
:class:`~repro.asm.multiplier.AlphabetSetMultiplier` or
:class:`~repro.asm.constraints.WeightConstrainer` table construction on the
load path.  (When a table *is* needed — e.g. reconstructing a spec — the
process-wide LRU caches in :mod:`repro.asm.multiplier` make it a lookup.)

Compilation additionally lowers the integer matmuls onto BLAS: numpy has no
accelerated int64 GEMM, but whenever ``fan_in * max|W| * max|x|`` is below
``2**53`` every product and partial sum is an exactly-representable float64
integer, so running the accumulation through ``dgemm`` is *bit-exact* while
being an order of magnitude faster.  8- and 12-bit words at the paper's
fan-ins clear that bound by ~20 binary orders of magnitude; layers that ever
exceeded it would silently stay on the int64 path.  Compiled outputs are
therefore bit-identical to
:meth:`repro.nn.quantized.QuantizedNetwork.forward` (asserted in
``tests/test_serving.py`` and ``benchmarks/bench_serving_throughput.py``).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.asm.alphabet import AlphabetSet
from repro.fixedpoint.qformat import QFormat
from repro.hardware.engine import LayerWork, NetworkTopology, ProcessingEngine
from repro.nn.conv_utils import conv_output_size, im2col
from repro.nn.quantized import (
    QuantizedNetwork,
    _QuantConv,
    _QuantDense,
    _QuantFlatten,
    _QuantPool,
    _requantize,
)
from repro.serving.artifact import _load_arrays, build_layers, read_manifest

__all__ = ["CompiledModel"]

#: Largest integer magnitude float64 represents exactly.
_EXACT_FLOAT64 = 2 ** 53


def _blas_exact(w_int: np.ndarray, fan_in: int, act_fmt: QFormat) -> bool:
    """True when the layer's accumulation cannot round in float64.

    Activations are act-format codes, so ``|x| <= 2**(total_bits-1)``; with
    ``fan_in`` MACs the accumulator magnitude is bounded by
    ``fan_in * max|W| * max|x|``.  Exact while that stays below ``2**53``.
    """
    max_w = int(np.abs(w_int).max()) if w_int.size else 0
    max_x = 1 << (act_fmt.total_bits - 1)
    return fan_in * max_w * max_x < _EXACT_FLOAT64


def _quantize_codes_f64(values: np.ndarray, fmt: QFormat) -> np.ndarray:
    """``fmt.quantize_array`` producing float64 codes instead of int64.

    Same op sequence (scale, round-half-away-from-zero, saturate) with
    in-place arithmetic, so the code *values* are identical — they just stay
    in the dtype the BLAS layers consume, skipping two dtype round-trips per
    layer.
    """
    from repro.fixedpoint.binary import signed_range

    low, high = signed_range(fmt.total_bits)
    scaled = np.asarray(values, dtype=np.float64) / fmt.resolution
    signs = np.sign(scaled)
    np.abs(scaled, out=scaled)
    scaled += 0.5
    np.floor(scaled, out=scaled)
    scaled *= signs
    return np.clip(scaled, low, high, out=scaled)


class _BlasMixin:
    """Accept activation codes as either int64 or float64."""

    @staticmethod
    def _as_float_codes(x_int: np.ndarray) -> np.ndarray:
        if x_int.dtype == np.float64:
            return x_int
        return x_int.astype(np.float64)

    def _requantize_codes(self, real: np.ndarray) -> np.ndarray:
        """The float-codes twin of :func:`repro.nn.quantized._requantize`."""
        if self.lut is not None:
            activated = self.lut(real)
        else:
            activated = self.activation.forward(real)
        return _quantize_codes_f64(activated, self.act_fmt)


class _BlasDense(_BlasMixin, _QuantDense):
    """Dense forward with the exact-in-float64 GEMM lowering."""

    def __init__(self, layer: _QuantDense) -> None:
        super().__init__(layer.w_int, layer.w_fmt, layer.bias,
                         layer.activation, layer.act_fmt, layer.lut,
                         is_output=layer.is_output, name=layer.name)
        self.alphabets = layer.alphabets
        self._w_float = np.ascontiguousarray(self.w_int, dtype=np.float64)

    def forward(self, x_int: np.ndarray, x_fmt: QFormat):
        # bit-exact: every product/partial sum is an integer < 2**53
        acc = self._as_float_codes(x_int) @ self._w_float
        scale = x_fmt.resolution * self.w_fmt.resolution
        real = acc * scale + self.bias
        if self.is_output:
            return real, None
        return self._requantize_codes(real), self.act_fmt


class _BlasConv(_BlasMixin, _QuantConv):
    """Conv forward with the exact-in-float64 GEMM lowering."""

    def __init__(self, layer: _QuantConv) -> None:
        super().__init__(layer.w_int, layer.w_fmt, layer.bias, layer.kernel,
                         layer.activation, layer.act_fmt, layer.lut,
                         name=layer.name)
        self.alphabets = layer.alphabets
        kernels = self.w_int.reshape(self.out_channels, -1)
        self._kernels_float_t = np.ascontiguousarray(
            kernels.T, dtype=np.float64)

    def forward(self, x_int: np.ndarray, x_fmt: QFormat):
        batch, _, height, width = x_int.shape
        out_h = conv_output_size(height, self.kernel)
        out_w = conv_output_size(width, self.kernel)
        cols = im2col(self._as_float_codes(x_int), self.kernel)
        acc = cols @ self._kernels_float_t
        scale = x_fmt.resolution * self.w_fmt.resolution
        real = acc * scale + self.bias
        real = real.transpose(0, 2, 1).reshape(
            batch, self.out_channels, out_h, out_w)
        return self._requantize_codes(real), self.act_fmt


def _compile_layer(layer, act_fmt: QFormat):
    """Swap a quantised layer for its BLAS lowering when provably exact."""
    if type(layer) is _QuantDense and _blas_exact(
            layer.w_int, layer.w_int.shape[0], act_fmt):
        return _BlasDense(layer)
    if type(layer) is _QuantConv:
        fan_in = layer.w_int.shape[1] * layer.kernel * layer.kernel
        if _blas_exact(layer.w_int, fan_in, act_fmt):
            return _BlasConv(layer)
    return layer


class CompiledModel:
    """An immutable, inference-only model compiled from an artifact bundle.

    Construct with :meth:`load` (from disk) or :meth:`from_quantized` (from
    an in-memory :class:`QuantizedNetwork`).  ``forward``/``predict`` accept
    float input batches exactly like :class:`QuantizedNetwork`.
    """

    def __init__(self, layers: list, act_fmt: QFormat,
                 manifest: dict[str, Any]) -> None:
        self.layers = [_compile_layer(layer, act_fmt) for layer in layers]
        self.act_fmt = act_fmt
        self.manifest = manifest
        self._energy_nj: float | None = None
        self._energy_known = False

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str) -> "CompiledModel":
        """Load and integrity-check the bundle at *path*."""
        manifest = read_manifest(path)
        arrays = _load_arrays(path, manifest)
        layers, act_fmt = build_layers(manifest, arrays)
        return cls(layers, act_fmt, manifest)

    @classmethod
    def from_quantized(cls, network: QuantizedNetwork,
                       name: str | None = None) -> "CompiledModel":
        """Compile an in-memory quantised network (no disk round trip).

        The layer objects are shared with *network*; they are never mutated
        by inference.
        """
        spec = network.spec
        manifest = {
            "model_name": name or network.name,
            "bits": spec.bits,
            "alphabets": (list(spec.alphabet_set)
                          if spec.alphabet_set else None),
            "fallback": spec.fallback,
            "constrainer_mode": (spec.constrainer.mode
                                 if spec.constrainer is not None else None),
            "use_lut": network.use_lut,
            "spec_label": network.deployment_label,
            "input_spatial": (list(network.input_spatial)
                              if network.input_spatial else None),
        }
        return cls(list(network.layers), network.act_fmt, manifest)

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.manifest["model_name"]

    @property
    def bits(self) -> int:
        return int(self.manifest["bits"])

    @property
    def alphabet_set(self) -> AlphabetSet | None:
        alphabets = self.manifest["alphabets"]
        return AlphabetSet(tuple(alphabets)) if alphabets else None

    @property
    def spec_label(self) -> str:
        return self.manifest.get("spec_label", f"{self.bits}b")

    @property
    def input_spatial(self) -> tuple[int, int] | None:
        spatial = self.manifest.get("input_spatial")
        return tuple(spatial) if spatial else None

    @property
    def num_params(self) -> int:
        """Deployed parameter count (integer weight/gain tables + biases)."""
        total = 0
        for layer in self.layers:
            if isinstance(layer, (_QuantDense, _QuantConv)):
                total += layer.w_int.size + layer.bias.size
            elif isinstance(layer, _QuantPool):
                total += layer.gain_int.size + layer.bias.size
        return total

    @property
    def num_outputs(self) -> int:
        """Width of the score vector (class count)."""
        for layer in reversed(self.layers):
            if isinstance(layer, _QuantDense):
                return layer.w_int.shape[1]
        raise ValueError("model has no dense output layer")

    # ------------------------------------------------------------------
    # inference (same layer code as QuantizedNetwork.forward)
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Raw output scores for a float input batch (bit-identical to the
        exported :class:`QuantizedNetwork`)."""
        # codes stay float64 between BLAS layers (exact — see module
        # docstring); int64-path layers get int64 codes as usual
        codes = _quantize_codes_f64(x, self.act_fmt)
        fmt = self.act_fmt
        for layer in self.layers:
            if not isinstance(layer, (_BlasMixin, _QuantFlatten)) \
                    and codes.dtype != np.int64:
                codes = codes.astype(np.int64)
            codes, fmt = layer.forward(codes, fmt)
        return codes

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(x), axis=1)

    def accuracy(self, x: np.ndarray, labels: np.ndarray,
                 batch_size: int = 512) -> float:
        if len(x) != len(labels):
            raise ValueError("inputs and labels differ in length")
        correct = 0
        for start in range(0, len(x), batch_size):
            stop = start + batch_size
            correct += int(np.sum(self.predict(x[start:stop])
                                  == labels[start:stop]))
        return correct / len(x) if len(x) else 0.0

    # ------------------------------------------------------------------
    # hardware cost (the paper's energy story, reported live by serving)
    # ------------------------------------------------------------------
    def topology(self) -> NetworkTopology:
        """Compute demand per inference, mirroring
        :meth:`repro.nn.network.Sequential.topology`."""
        return self._topology_and_alphabets()[0]

    def _topology_and_alphabets(self) -> tuple[
            NetworkTopology, list[AlphabetSet | None]]:
        """Topology plus the per-layer alphabet sets aligned with it."""
        works: list[LayerWork] = []
        layer_sets: list[AlphabetSet | None] = []
        spatial = self.input_spatial
        for index, layer in enumerate(self.layers):
            name = layer.name or f"{layer.kind}{index}"
            if isinstance(layer, _QuantDense):
                fan_in, fan_out = layer.w_int.shape
                works.append(LayerWork(name, fan_out, fan_in))
            elif isinstance(layer, _QuantConv):
                if spatial is None:
                    raise ValueError(
                        f"{name}: artifact lacks input_spatial; cannot "
                        f"derive the conv topology")
                out_h = spatial[0] - layer.kernel + 1
                out_w = spatial[1] - layer.kernel + 1
                in_channels = layer.w_int.shape[1]
                works.append(LayerWork(
                    name, layer.out_channels * out_h * out_w,
                    in_channels * layer.kernel * layer.kernel))
                spatial = (out_h, out_w)
            elif isinstance(layer, _QuantPool):
                if spatial is None:
                    raise ValueError(
                        f"{name}: artifact lacks input_spatial; cannot "
                        f"derive the pool topology")
                out_h = spatial[0] // layer.size
                out_w = spatial[1] // layer.size
                works.append(LayerWork(
                    name, layer.channels * out_h * out_w, 1))
                spatial = (out_h, out_w)
            elif isinstance(layer, _QuantFlatten):
                continue
            layer_sets.append(AlphabetSet(layer.alphabets)
                              if layer.alphabets is not None else None)
        if not works:
            raise ValueError("model has no compute layers")
        return NetworkTopology(self.name, tuple(works)), layer_sets

    def energy_per_inference_nj(self) -> float | None:
        """Estimated energy (nJ) for one inference on the CSHM engine.

        Mixed deployments are costed per layer with each layer's own
        alphabet set.  ``None`` when the engine cannot cost this model
        (unsupported word width or a conv model exported without spatial
        metadata).
        """
        if not self._energy_known:
            try:
                engine = ProcessingEngine(self.bits, self.alphabet_set)
                topology, layer_sets = self._topology_and_alphabets()
                self._energy_nj = engine.run(
                    topology, layer_alphabets=layer_sets).energy_nj
            except (KeyError, ValueError):
                self._energy_nj = None
            # set the flag only after the value is in place, so concurrent
            # readers never observe the un-computed None (worst case two
            # threads compute the same number)
            self._energy_known = True
        return self._energy_nj

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CompiledModel {self.name}: {self.spec_label}, "
                f"{len(self.layers)} layers>")
