"""Compiled models: the serving-side view of an exported network.

A :class:`CompiledModel` loads an artifact bundle straight into contiguous
integer weight matrices — the ASM effective-weight remap was folded in at
export time, so a forward pass is pure batched integer matmul plus the
activation/requantisation arithmetic, with **no**
:class:`~repro.asm.multiplier.AlphabetSetMultiplier` or
:class:`~repro.asm.constraints.WeightConstrainer` table construction on the
load path.  (When a table *is* needed — e.g. reconstructing a spec — the
process-wide LRU caches in :mod:`repro.asm.multiplier` make it a lookup.)

Compilation is backend selection: the layer stack is the same one
:class:`~repro.nn.quantized.QuantizedNetwork` runs, driven by the ``fast``
kernel backend of :mod:`repro.kernels` — BLAS in float64 wherever the
``2**53`` accumulator bound proves that exact, the reference integer
kernels per layer otherwise (see ``docs/backends.md``).  Compiled outputs
are therefore bit-identical to
:meth:`repro.nn.quantized.QuantizedNetwork.forward` (asserted in
``tests/test_serving.py``, ``tests/test_kernels.py`` and
``benchmarks/bench_kernels_backends.py``).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.asm.alphabet import AlphabetSet
from repro.fixedpoint.qformat import QFormat
from repro.hardware.engine import LayerWork, NetworkTopology, ProcessingEngine
from repro.kernels import DEFAULT_EVAL_BATCH, batched_accuracy, get_backend
from repro.kernels.registry import KernelBackend
from repro.nn.quantized import (
    QuantizedNetwork,
    _QuantConv,
    _QuantDense,
    _QuantFlatten,
    _QuantPool,
)
from repro.serving.artifact import _load_arrays, build_layers, read_manifest

__all__ = ["CompiledModel"]


class CompiledModel:
    """An immutable, inference-only model compiled from an artifact bundle.

    Construct with :meth:`load` (from disk) or :meth:`from_quantized` (from
    an in-memory :class:`QuantizedNetwork`).  ``forward``/``predict`` accept
    float input batches exactly like :class:`QuantizedNetwork`.
    """

    def __init__(self, layers: list, act_fmt: QFormat,
                 manifest: dict[str, Any],
                 backend: str | KernelBackend = "fast") -> None:
        self.layers = list(layers)
        self.act_fmt = act_fmt
        self.manifest = manifest
        self._backend = get_backend(backend)
        self._energy_nj: float | None = None
        self._energy_known = False

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str) -> "CompiledModel":
        """Load and integrity-check the bundle at *path*."""
        manifest = read_manifest(path)
        arrays = _load_arrays(path, manifest)
        layers, act_fmt = build_layers(manifest, arrays)
        return cls(layers, act_fmt, manifest)

    @classmethod
    def from_quantized(cls, network: QuantizedNetwork,
                       name: str | None = None) -> "CompiledModel":
        """Compile an in-memory quantised network (no disk round trip).

        The layer objects are shared with *network*; they are never mutated
        by inference (the fast backend's per-layer weight caches attach to
        them, which both views share).
        """
        spec = network.spec
        manifest = {
            "model_name": name or network.name,
            "bits": spec.bits,
            "alphabets": (list(spec.alphabet_set)
                          if spec.alphabet_set else None),
            "fallback": spec.fallback,
            "constrainer_mode": (spec.constrainer.mode
                                 if spec.constrainer is not None else None),
            "use_lut": network.use_lut,
            "spec_label": network.deployment_label,
            "input_spatial": (list(network.input_spatial)
                              if network.input_spatial else None),
        }
        return cls(list(network.layers), network.act_fmt, manifest)

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.manifest["model_name"]

    @property
    def bits(self) -> int:
        return int(self.manifest["bits"])

    @property
    def alphabet_set(self) -> AlphabetSet | None:
        alphabets = self.manifest["alphabets"]
        return AlphabetSet(tuple(alphabets)) if alphabets else None

    @property
    def spec_label(self) -> str:
        return self.manifest.get("spec_label", f"{self.bits}b")

    @property
    def input_spatial(self) -> tuple[int, int] | None:
        spatial = self.manifest.get("input_spatial")
        return tuple(spatial) if spatial else None

    @property
    def backend(self) -> str:
        """Name of the kernel backend this model was compiled for."""
        return self._backend.name

    @property
    def lowerings(self) -> tuple[str, ...]:
        """Per-compute-layer lowering the backend chose (``"blas"`` /
        ``"integer"``); the observability hook for the fallback policy."""
        return tuple(self._backend.lowering(layer) for layer in self.layers
                     if not isinstance(layer, _QuantFlatten))

    @property
    def num_params(self) -> int:
        """Deployed parameter count (integer weight/gain tables + biases)."""
        total = 0
        for layer in self.layers:
            if isinstance(layer, (_QuantDense, _QuantConv)):
                total += layer.w_int.size + layer.bias.size
            elif isinstance(layer, _QuantPool):
                total += layer.gain_int.size + layer.bias.size
        return total

    @property
    def num_outputs(self) -> int:
        """Width of the score vector (class count)."""
        for layer in reversed(self.layers):
            if isinstance(layer, _QuantDense):
                return layer.w_int.shape[1]
        raise ValueError("model has no dense output layer")

    # ------------------------------------------------------------------
    # inference (same layer stack as QuantizedNetwork, fast backend)
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Raw output scores for a float input batch (bit-identical to the
        exported :class:`QuantizedNetwork`)."""
        backend = self._backend
        codes = backend.quantize_input(x, self.act_fmt)
        fmt = self.act_fmt
        for layer in self.layers:
            codes, fmt = layer.forward(codes, fmt, backend)
        return codes

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(x), axis=1)

    def accuracy(self, x: np.ndarray, labels: np.ndarray,
                 batch_size: int = DEFAULT_EVAL_BATCH) -> float:
        return batched_accuracy(self.predict, x, labels,
                                batch_size=batch_size)

    # ------------------------------------------------------------------
    # hardware cost (the paper's energy story, reported live by serving)
    # ------------------------------------------------------------------
    def topology(self) -> NetworkTopology:
        """Compute demand per inference, mirroring
        :meth:`repro.nn.network.Sequential.topology`."""
        return self._topology_and_alphabets()[0]

    def _topology_and_alphabets(self) -> tuple[
            NetworkTopology, list[AlphabetSet | None]]:
        """Topology plus the per-layer alphabet sets aligned with it."""
        works: list[LayerWork] = []
        layer_sets: list[AlphabetSet | None] = []
        spatial = self.input_spatial
        for index, layer in enumerate(self.layers):
            name = layer.name or f"{layer.kind}{index}"
            if isinstance(layer, _QuantDense):
                fan_in, fan_out = layer.w_int.shape
                works.append(LayerWork(name, fan_out, fan_in))
            elif isinstance(layer, _QuantConv):
                if spatial is None:
                    raise ValueError(
                        f"{name}: artifact lacks input_spatial; cannot "
                        f"derive the conv topology")
                out_h = spatial[0] - layer.kernel + 1
                out_w = spatial[1] - layer.kernel + 1
                in_channels = layer.w_int.shape[1]
                works.append(LayerWork(
                    name, layer.out_channels * out_h * out_w,
                    in_channels * layer.kernel * layer.kernel))
                spatial = (out_h, out_w)
            elif isinstance(layer, _QuantPool):
                if spatial is None:
                    raise ValueError(
                        f"{name}: artifact lacks input_spatial; cannot "
                        f"derive the pool topology")
                out_h = spatial[0] // layer.size
                out_w = spatial[1] // layer.size
                works.append(LayerWork(
                    name, layer.channels * out_h * out_w, 1))
                spatial = (out_h, out_w)
            elif isinstance(layer, _QuantFlatten):
                continue
            layer_sets.append(AlphabetSet(layer.alphabets)
                              if layer.alphabets is not None else None)
        if not works:
            raise ValueError("model has no compute layers")
        return NetworkTopology(self.name, tuple(works)), layer_sets

    def energy_per_inference_nj(self) -> float | None:
        """Estimated energy (nJ) for one inference on the CSHM engine.

        Mixed deployments are costed per layer with each layer's own
        alphabet set.  ``None`` when the engine cannot cost this model
        (unsupported word width or a conv model exported without spatial
        metadata).
        """
        if not self._energy_known:
            try:
                engine = ProcessingEngine(self.bits, self.alphabet_set)
                topology, layer_sets = self._topology_and_alphabets()
                self._energy_nj = engine.run(
                    topology, layer_alphabets=layer_sets).energy_nj
            except (KeyError, ValueError):
                self._energy_nj = None
            # set the flag only after the value is in place, so concurrent
            # readers never observe the un-computed None (worst case two
            # threads compute the same number)
            self._energy_known = True
        return self._energy_nj

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CompiledModel {self.name}: {self.spec_label}, "
                f"{len(self.layers)} layers>")
