"""Serving metrics: throughput, latency, queue depth — and energy.

The paper's claim is energy per inference; serving reports it live by
multiplying each model's estimated per-inference energy (from
:meth:`repro.serving.compiled.CompiledModel.energy_per_inference_nj`, which
costs the CSHM engine of :mod:`repro.hardware.engine`) by the samples it
served.  All counters are thread-safe; latency percentiles come from a
bounded rolling window so a long-lived server stays O(1) in memory.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any

__all__ = ["ServingMetrics"]

#: Rolling-window size for latency/batch-size percentiles.
_WINDOW = 2048


def _percentile(window: list[float], fraction: float) -> float:
    if not window:
        return 0.0
    ordered = sorted(window)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


class ServingMetrics:
    """Thread-safe counters for one serving process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._requests = 0
        self._samples = 0
        self._batches = 0
        self._errors = 0
        self._energy_nj = 0.0
        self._latencies: deque[float] = deque(maxlen=_WINDOW)
        self._batch_sizes: deque[int] = deque(maxlen=_WINDOW)
        self._queue_depth = 0
        self._per_model: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_request(self, model: str, samples: int, latency_s: float,
                       energy_nj: float | None = None) -> None:
        """One completed predict request of *samples* inputs."""
        with self._lock:
            self._requests += 1
            self._samples += samples
            self._latencies.append(latency_s)
            if energy_nj is not None:
                self._energy_nj += energy_nj
            slot = self._per_model.setdefault(
                model, {"requests": 0, "samples": 0, "energy_nj": 0.0})
            slot["requests"] += 1
            slot["samples"] += samples
            if energy_nj is not None:
                slot["energy_nj"] += energy_nj

    def record_batch(self, size: int) -> None:
        """One coalesced forward pass of *size* samples."""
        with self._lock:
            self._batches += 1
            self._batch_sizes.append(size)

    def record_error(self) -> None:
        with self._lock:
            self._errors += 1

    def set_queue_depth(self, depth: int) -> None:
        with self._lock:
            self._queue_depth = depth

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-able view of every counter (the ``/stats`` payload)."""
        with self._lock:
            uptime = time.monotonic() - self._started
            latencies = list(self._latencies)
            batch_sizes = list(self._batch_sizes)
            return {
                "uptime_s": round(uptime, 3),
                "requests_total": self._requests,
                "samples_total": self._samples,
                "batches_total": self._batches,
                "errors_total": self._errors,
                "queue_depth": self._queue_depth,
                "throughput_samples_per_s": (
                    round(self._samples / uptime, 3) if uptime > 0 else 0.0),
                "latency_ms": {
                    "mean": round(1e3 * sum(latencies) / len(latencies), 3)
                    if latencies else 0.0,
                    "p50": round(1e3 * _percentile(latencies, 0.50), 3),
                    "p95": round(1e3 * _percentile(latencies, 0.95), 3),
                    "max": round(1e3 * max(latencies), 3)
                    if latencies else 0.0,
                },
                "batch_size": {
                    "mean": round(sum(batch_sizes) / len(batch_sizes), 3)
                    if batch_sizes else 0.0,
                    "max": max(batch_sizes) if batch_sizes else 0,
                },
                "energy": {
                    "total_nj": round(self._energy_nj, 3),
                    "total_uj": round(self._energy_nj * 1e-3, 6),
                    "mean_nj_per_sample": (
                        round(self._energy_nj / self._samples, 3)
                        if self._samples else 0.0),
                },
                "models": {name: dict(slot)
                           for name, slot in sorted(self._per_model.items())},
            }
