"""Serving metrics: throughput, latency, queue depth — and energy.

The paper's claim is energy per inference; serving reports it live by
multiplying each model's estimated per-inference energy (from
:meth:`repro.serving.compiled.CompiledModel.energy_per_inference_nj`, which
costs the CSHM engine of :mod:`repro.hardware.engine`) by the samples it
served.

Since the :mod:`repro.obs` layer landed, :class:`ServingMetrics` is a
thin façade over an always-on :class:`~repro.obs.MetricsRegistry`: every
counter, gauge and histogram lives in the registry (so the same numbers
come out as JSON via :meth:`snapshot` **and** as the Prometheus text
format via :meth:`to_prometheus`, served at ``GET /metrics``), and the
latency/batch-size percentiles use the shared linear-interpolation
:func:`repro.obs.quantile` — replacing the old nearest-rank-by-
truncation helper that biased p95/p99 low.  All recording is
thread-safe; percentiles come from a bounded rolling window so a
long-lived server stays O(1) in memory.

The registry is private to the server process (not the process-global
:func:`repro.obs.registry`): request metrics must be on regardless of
the repo-wide tracing switch.
"""

from __future__ import annotations

import time
from typing import Any

from repro.obs import DEFAULT_WINDOW, MetricsRegistry

__all__ = ["ServingMetrics"]

#: Rolling-window size for latency/batch-size percentiles.
_WINDOW = DEFAULT_WINDOW


class ServingMetrics:
    """Thread-safe request/batch/energy metrics for one serving process.

    Pass a *registry* to share one with other components; by default
    each instance owns a fresh :class:`~repro.obs.MetricsRegistry`.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._started = time.monotonic()
        reg = self.registry
        self._requests = reg.counter("serving.requests")
        self._samples = reg.counter("serving.samples")
        self._batches = reg.counter("serving.batches")
        self._errors = reg.counter("serving.errors")
        self._shed = reg.counter("serving.shed_total")
        self._deadline_expired = reg.counter("serving.deadline_expired")
        self._energy_nj = reg.counter("serving.energy_nj")
        self._queue_depth = reg.gauge("serving.queue_depth")
        self._latency = reg.histogram("serving.latency_seconds",
                                      window=_WINDOW)
        self._batch_sizes = reg.histogram("serving.batch_size",
                                          window=_WINDOW)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_request(self, model: str, samples: int, latency_s: float,
                       energy_nj: float | None = None) -> None:
        """One completed predict request of *samples* inputs."""
        reg = self.registry
        self._requests.inc()
        self._samples.inc(samples)
        self._latency.observe(latency_s)
        reg.counter("serving.model_requests", model=model).inc()
        reg.counter("serving.model_samples", model=model).inc(samples)
        if energy_nj is not None:
            self._energy_nj.inc(energy_nj)
            reg.counter("serving.model_energy_nj", model=model,
                        ).inc(energy_nj)

    def record_batch(self, size: int) -> None:
        """One coalesced forward pass of *size* samples."""
        self._batches.inc()
        self._batch_sizes.observe(size)

    def record_error(self) -> None:
        self._errors.inc()

    def record_shed(self) -> None:
        """One request shed by admission control (queue at its bound)."""
        self._shed.inc()

    def record_deadline_expired(self) -> None:
        """One queued request dropped because its deadline passed."""
        self._deadline_expired.inc()

    def set_queue_depth(self, depth: int) -> None:
        self._queue_depth.set(depth)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-able view of every counter (the ``/stats`` payload)."""
        uptime = time.monotonic() - self._started
        samples = self._samples.value
        energy_nj = self._energy_nj.value
        latency = self._latency.summary()
        batch = self._batch_sizes.summary()
        per_model: dict[str, dict[str, float]] = {}
        for row in self.registry.to_dict():
            name = row["name"]
            if not name.startswith("serving.model_"):
                continue
            slot = per_model.setdefault(
                row["labels"]["model"],
                {"requests": 0, "samples": 0, "energy_nj": 0.0})
            field = name.removeprefix("serving.model_")
            slot[field] = (int(row["value"]) if field != "energy_nj"
                           else row["value"])
        return {
            "uptime_s": round(uptime, 3),
            "requests_total": int(self._requests.value),
            "samples_total": int(samples),
            "batches_total": int(self._batches.value),
            "errors_total": int(self._errors.value),
            "shed_total": int(self._shed.value),
            "deadline_expired_total": int(self._deadline_expired.value),
            "queue_depth": int(self._queue_depth.value),
            "throughput_samples_per_s": (
                round(samples / uptime, 3) if uptime > 0 else 0.0),
            "latency_ms": {
                "mean": round(1e3 * latency["mean"], 3),
                "p50": round(1e3 * latency["p50"], 3),
                "p95": round(1e3 * latency["p95"], 3),
                "p99": round(1e3 * latency["p99"], 3),
                "max": round(1e3 * latency["max"], 3),
            },
            "batch_size": {
                "mean": round(batch["mean"], 3),
                "p50": round(batch["p50"], 3),
                "p95": round(batch["p95"], 3),
                "max": int(batch["max"]),
            },
            "energy": {
                "total_nj": round(energy_nj, 3),
                "total_uj": round(energy_nj * 1e-3, 6),
                "mean_nj_per_sample": (
                    round(energy_nj / samples, 3) if samples else 0.0),
            },
            "models": {name: dict(slot)
                       for name, slot in sorted(per_model.items())},
        }

    def to_prometheus(self) -> str:
        """Every serving metric in the Prometheus text format
        (the ``GET /metrics`` body)."""
        return self.registry.to_prometheus()
