"""Versioned on-disk model artifacts with integrity hashes.

An artifact is a directory bundle::

    <path>/
        manifest.json   # schema, spec metadata, layer descriptors, hashes
        arrays.npz      # the pre-folded integer weight tables + biases

The arrays are the *deployed* integer weights of a
:class:`~repro.nn.quantized.QuantizedNetwork` — the Q-format rounding,
Algorithm-1 constraining and ASM effective-weight remap have all been folded
in at export time, so loading never touches a multiplier or constrainer
table and a reloaded forward pass is bit-identical to the exported network
(asserted in ``tests/test_serving.py``).

Integrity: every array is hashed (SHA-256 over dtype, shape and bytes) and
the manifest carries a checksum over its own canonical JSON.  Any mismatch
raises :class:`ArtifactIntegrityError` at load.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any

import numpy as np

from repro.asm.alphabet import AlphabetSet
from repro.asm.constraints import WeightConstrainer
from repro.fixedpoint.qformat import QFormat
from repro.nn.activations import SigmoidLUT, get_activation
from repro.nn.quantized import (
    QuantizationSpec,
    QuantizedNetwork,
    _QuantConv,
    _QuantDense,
    _QuantFlatten,
    _QuantPool,
)

__all__ = ["ArtifactError", "ArtifactIntegrityError", "ARTIFACT_FORMAT",
           "ARTIFACT_VERSION", "MANIFEST_NAME", "ARRAYS_NAME",
           "save_artifact", "load_artifact", "read_manifest"]

ARTIFACT_FORMAT = "repro-serving/model"
ARTIFACT_VERSION = 1
MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"


class ArtifactError(Exception):
    """Malformed or unreadable artifact bundle."""


class ArtifactIntegrityError(ArtifactError):
    """An integrity hash did not match the stored payload."""


# ----------------------------------------------------------------------
# hashing helpers
# ----------------------------------------------------------------------
def _array_digest(array: np.ndarray) -> str:
    """SHA-256 over dtype, shape and raw bytes (C-order)."""
    digest = hashlib.sha256()
    digest.update(str(array.dtype.str).encode())
    digest.update(str(array.shape).encode())
    digest.update(np.ascontiguousarray(array).tobytes())
    return "sha256:" + digest.hexdigest()


def _manifest_digest(manifest: dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON of *manifest* minus its checksum."""
    body = {k: v for k, v in manifest.items() if k != "checksum"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode()).hexdigest()


def _fmt_to_json(fmt: QFormat) -> dict[str, int]:
    return {"total_bits": fmt.total_bits, "frac_bits": fmt.frac_bits}


def _fmt_from_json(data: dict[str, int]) -> QFormat:
    return QFormat(int(data["total_bits"]), int(data["frac_bits"]))


# ----------------------------------------------------------------------
# save
# ----------------------------------------------------------------------
def _describe_layer(index: int, layer) -> tuple[dict[str, Any],
                                                dict[str, np.ndarray]]:
    """Manifest entry + named arrays for one quantised layer."""
    prefix = f"layer{index}"
    entry: dict[str, Any] = {"kind": layer.kind, "name": layer.name}
    if not isinstance(layer, _QuantFlatten):
        # per-layer because mixed deployments (§VI.E) fold each layer for
        # its own alphabet set; energy estimates need the real per-layer set
        entry["alphabets"] = (list(layer.alphabets)
                              if layer.alphabets is not None else None)
    arrays: dict[str, np.ndarray] = {}
    if isinstance(layer, _QuantDense):
        entry.update(activation=layer.activation.name,
                     w_fmt=_fmt_to_json(layer.w_fmt),
                     is_output=layer.is_output)
        arrays[f"{prefix}:w_int"] = layer.w_int
        arrays[f"{prefix}:bias"] = layer.bias
    elif isinstance(layer, _QuantConv):
        entry.update(activation=layer.activation.name,
                     w_fmt=_fmt_to_json(layer.w_fmt),
                     kernel=layer.kernel)
        arrays[f"{prefix}:w_int"] = layer.w_int
        arrays[f"{prefix}:bias"] = layer.bias
    elif isinstance(layer, _QuantPool):
        entry.update(activation=layer.activation.name,
                     gain_fmt=_fmt_to_json(layer.gain_fmt),
                     size=layer.size)
        arrays[f"{prefix}:gain_int"] = layer.gain_int
        arrays[f"{prefix}:bias"] = layer.bias
    elif isinstance(layer, _QuantFlatten):
        pass
    else:  # pragma: no cover - new layer kinds must extend the schema
        raise ArtifactError(
            f"cannot serialise layer type {type(layer).__name__}")
    entry["arrays"] = sorted(arrays)
    return entry, arrays


def save_artifact(network: QuantizedNetwork, path: str,
                  name: str | None = None,
                  metadata: dict[str, Any] | None = None) -> str:
    """Write *network* as an artifact bundle under directory *path*.

    Returns *path*.  ``name`` overrides the model name recorded in the
    manifest; ``metadata`` is an optional free-form JSON-able dict stored
    under ``"user_metadata"`` (e.g. training provenance).
    """
    spec = network.spec
    layers_json: list[dict[str, Any]] = []
    arrays: dict[str, np.ndarray] = {}
    for index, layer in enumerate(network.layers):
        entry, layer_arrays = _describe_layer(index, layer)
        layers_json.append(entry)
        arrays.update(layer_arrays)

    manifest: dict[str, Any] = {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "model_name": name or network.name,
        "bits": spec.bits,
        "alphabets": list(spec.alphabet_set) if spec.alphabet_set else None,
        "fallback": spec.fallback,
        "constrainer_mode": (spec.constrainer.mode
                             if spec.constrainer is not None else None),
        "use_lut": network.use_lut,
        "act_fmt": _fmt_to_json(network.act_fmt),
        "input_spatial": (list(network.input_spatial)
                          if network.input_spatial else None),
        "spec_label": network.deployment_label,
        "layers": layers_json,
        "array_hashes": {key: _array_digest(value)
                         for key, value in arrays.items()},
        "user_metadata": metadata or {},
    }
    manifest["checksum"] = _manifest_digest(manifest)

    os.makedirs(path, exist_ok=True)
    np.savez(os.path.join(path, ARRAYS_NAME), **arrays)
    with open(os.path.join(path, MANIFEST_NAME), "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
# load
# ----------------------------------------------------------------------
def read_manifest(path: str) -> dict[str, Any]:
    """Read and checksum-verify the manifest of the bundle at *path*."""
    manifest_path = os.path.join(path, MANIFEST_NAME)
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise ArtifactError(f"no {MANIFEST_NAME} in {path!r}") from None
    except json.JSONDecodeError as error:
        raise ArtifactError(f"corrupt manifest in {path!r}: {error}") \
            from None
    if manifest.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(
            f"{path!r} is not a {ARTIFACT_FORMAT} bundle "
            f"(format={manifest.get('format')!r})")
    if manifest.get("version") != ARTIFACT_VERSION:
        raise ArtifactError(
            f"unsupported artifact version {manifest.get('version')!r} "
            f"(this build reads version {ARTIFACT_VERSION})")
    if manifest.get("checksum") != _manifest_digest(manifest):
        raise ArtifactIntegrityError(
            f"manifest checksum mismatch in {path!r}")
    return manifest


def _load_arrays(path: str, manifest: dict[str, Any],
                 ) -> dict[str, np.ndarray]:
    """Load and hash-verify every array the manifest references."""
    arrays_path = os.path.join(path, ARRAYS_NAME)
    try:
        with np.load(arrays_path) as data:
            arrays = {key: data[key] for key in data.files}
    except FileNotFoundError:
        raise ArtifactError(f"no {ARRAYS_NAME} in {path!r}") from None
    except (OSError, ValueError) as error:
        raise ArtifactIntegrityError(
            f"unreadable {ARRAYS_NAME} in {path!r}: {error}") from None
    hashes = manifest["array_hashes"]
    missing = set(hashes) - set(arrays)
    if missing:
        raise ArtifactIntegrityError(
            f"{path!r} is missing arrays {sorted(missing)}")
    for key, expected in hashes.items():
        actual = _array_digest(arrays[key])
        if actual != expected:
            raise ArtifactIntegrityError(
                f"array {key!r} in {path!r} fails its integrity hash "
                f"({actual} != {expected})")
    return arrays


def build_layers(manifest: dict[str, Any], arrays: dict[str, np.ndarray],
                 ) -> tuple[list, QFormat]:
    """Reconstruct the quantised layer stack from a verified bundle.

    Shared by :func:`load_artifact` and
    :class:`repro.serving.compiled.CompiledModel`; neither path rebuilds
    multiplier or constrainer tables.
    """
    act_fmt = _fmt_from_json(manifest["act_fmt"])
    lut = (SigmoidLUT(output_bits=int(manifest["bits"]) - 1)
           if manifest["use_lut"] else None)
    layers = []
    for index, entry in enumerate(manifest["layers"]):
        prefix = f"layer{index}"
        kind = entry["kind"]
        name = entry.get("name")
        if kind == "flatten":
            layers.append(_QuantFlatten(name=name))
            continue
        activation = get_activation(entry["activation"])
        layer_lut = lut if activation.name == "sigmoid" else None
        if kind == "dense":
            quant = _QuantDense(
                arrays[f"{prefix}:w_int"], _fmt_from_json(entry["w_fmt"]),
                arrays[f"{prefix}:bias"], activation, act_fmt, layer_lut,
                is_output=bool(entry["is_output"]), name=name)
        elif kind == "conv":
            quant = _QuantConv(
                arrays[f"{prefix}:w_int"], _fmt_from_json(entry["w_fmt"]),
                arrays[f"{prefix}:bias"], int(entry["kernel"]),
                activation, act_fmt, layer_lut, name=name)
        elif kind == "pool":
            quant = _QuantPool(
                arrays[f"{prefix}:gain_int"],
                _fmt_from_json(entry["gain_fmt"]),
                arrays[f"{prefix}:bias"], int(entry["size"]),
                activation, act_fmt, layer_lut, name=name)
        else:
            raise ArtifactError(f"unknown layer kind {kind!r}")
        # absent key (pre-mixed-spec bundles) falls back to the
        # network-level set; an explicit null means conventional
        alphabets = entry.get("alphabets", manifest["alphabets"])
        quant.alphabets = tuple(alphabets) if alphabets else None
        layers.append(quant)
    return layers, act_fmt


def spec_from_manifest(manifest: dict[str, Any]) -> QuantizationSpec:
    """Rebuild the :class:`QuantizationSpec` recorded in a manifest.

    Only :func:`load_artifact` (the exact round-trip path) calls this; the
    serving hot path (:class:`CompiledModel`) skips it entirely.  The
    multiplier/constrainer tables this constructs are memoized process-wide,
    so repeated loads are cheap.
    """
    bits = int(manifest["bits"])
    alphabets = manifest["alphabets"]
    alphabet_set = AlphabetSet(tuple(alphabets)) if alphabets else None
    mode = manifest["constrainer_mode"]
    constrainer = (WeightConstrainer(bits, alphabet_set, mode=mode)
                   if alphabet_set is not None and mode is not None else None)
    return QuantizationSpec(bits, alphabet_set, constrainer=constrainer,
                            fallback=manifest["fallback"])


def load_artifact(path: str) -> QuantizedNetwork:
    """Exact round-trip load: bundle → :class:`QuantizedNetwork`.

    The returned network's :meth:`forward` is bit-identical to the network
    that was exported (same integer weights, formats, activations and LUT).
    """
    manifest = read_manifest(path)
    arrays = _load_arrays(path, manifest)
    layers, act_fmt = build_layers(manifest, arrays)
    spatial = manifest["input_spatial"]
    return QuantizedNetwork(
        layers, act_fmt, spec_from_manifest(manifest),
        name=manifest["model_name"],
        input_spatial=tuple(spatial) if spatial else None,
        use_lut=bool(manifest["use_lut"]))
