"""``python -m repro.serving`` — the artifact server CLI (deprecated;
use ``repro serve``)."""

from repro.serving.server import deprecated_main

if __name__ == "__main__":
    raise SystemExit(deprecated_main())
