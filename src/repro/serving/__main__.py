"""``python -m repro.serving`` — the artifact server CLI."""

from repro.serving.server import main

if __name__ == "__main__":
    raise SystemExit(main())
