"""Named, versioned multi-model registry.

One serving process can hold the digit, face, SVHN and TICH models (and
several versions of each) simultaneously; the batching queue and HTTP front
end resolve ``(name, version)`` keys through a :class:`ModelRegistry`.
Thread-safe — registration and lookup may race with serving traffic.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.serving.compiled import CompiledModel

__all__ = ["ModelEntry", "ModelRegistry", "default_registry"]


@dataclass(frozen=True)
class ModelEntry:
    """One registered (name, version) slot."""

    name: str
    version: int
    model: CompiledModel
    path: str | None = None
    registered_at: float = field(default_factory=time.time)

    @property
    def key(self) -> str:
        return f"{self.name}@v{self.version}"


class ModelRegistry:
    """Register / resolve / list / evict compiled models by name+version.

    Versions are positive integers; ``version=None`` on lookup or eviction
    means "latest".  Registering without an explicit version auto-assigns
    one past the highest version ever registered under that name (evicted
    versions are not reused, so a ``(name, version)`` key never silently
    changes meaning).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._models: dict[str, dict[int, ModelEntry]] = {}
        # highest version ever registered per name; survives eviction so
        # auto-assigned versions are never reused for a different model
        self._high_water: dict[str, int] = {}

    # ------------------------------------------------------------------
    def register(self, model: CompiledModel | str,
                 name: str | None = None,
                 version: int | None = None) -> ModelEntry:
        """Add a model (a :class:`CompiledModel` or an artifact path).

        Returns the created :class:`ModelEntry`.  Re-registering an existing
        ``(name, version)`` raises ``ValueError`` — evict first to replace.
        """
        path: str | None = None
        if isinstance(model, str):
            path = model
            model = CompiledModel.load(model)
        name = name or model.name
        with self._lock:
            versions = self._models.setdefault(name, {})
            if version is None:
                version = self._high_water.get(name, 0) + 1
            elif version < 1:
                raise ValueError(f"version must be >= 1, got {version}")
            if version in versions:
                raise ValueError(
                    f"model {name!r} version {version} already registered")
            entry = ModelEntry(name=name, version=version, model=model,
                               path=path)
            versions[version] = entry
            self._high_water[name] = max(self._high_water.get(name, 0),
                                         version)
            return entry

    # ------------------------------------------------------------------
    def entry(self, name: str, version: int | None = None) -> ModelEntry:
        """The :class:`ModelEntry` for ``(name, version)`` (latest when
        *version* is ``None``)."""
        with self._lock:
            versions = self._models.get(name)
            if not versions:
                raise KeyError(f"no model named {name!r}; "
                               f"registered: {sorted(self._models)}")
            if version is None:
                version = max(versions)
            try:
                return versions[version]
            except KeyError:
                raise KeyError(
                    f"model {name!r} has no version {version}; "
                    f"available: {sorted(versions)}") from None

    def get(self, name: str, version: int | None = None) -> CompiledModel:
        """Resolve a compiled model (latest version by default)."""
        return self.entry(name, version).model

    def list_models(self) -> list[ModelEntry]:
        """All entries, sorted by (name, version)."""
        with self._lock:
            return [entry
                    for name in sorted(self._models)
                    for _, entry in sorted(self._models[name].items())]

    def evict(self, name: str, version: int | None = None) -> int:
        """Remove one version (or every version when ``None``) of *name*.

        Returns the number of entries removed; unknown names remove 0.
        """
        with self._lock:
            versions = self._models.get(name)
            if not versions:
                return 0
            if version is None:
                removed = len(versions)
                del self._models[name]
                return removed
            if versions.pop(version, None) is None:
                return 0
            if not versions:
                del self._models[name]
            return 1

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models

    def __len__(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._models.values())


_DEFAULT = ModelRegistry()


def default_registry() -> ModelRegistry:
    """The process-wide registry used by the CLI server by default."""
    return _DEFAULT
