"""Serving stack: compiled artifacts, model registry, batching, HTTP front end.

The experiment drivers in :mod:`repro.experiments` train, constrain and
evaluate networks in one shot; this package turns the result into a
deployable artifact and serves it:

``repro.serving.artifact``
    Versioned on-disk bundle (``manifest.json`` + ``arrays.npz``) holding a
    :class:`~repro.nn.quantized.QuantizedNetwork`'s pre-folded effective
    integer weights, quantisation spec and integrity hashes, with exact
    (bit-identical) round-trip load.
``repro.serving.compiled``
    :class:`CompiledModel` — loads a bundle straight into contiguous integer
    matrices; no constrainer/multiplier table rebuilds on the load path.
``repro.serving.registry``
    Named, versioned multi-model registry for one serving process.
``repro.serving.batching``
    Dynamic micro-batching queue coalescing single requests into batched
    integer-matmul forward passes.
``repro.serving.metrics``
    Throughput/latency/queue-depth counters plus the paper's energy story
    (estimated nJ per inference via :mod:`repro.hardware.engine`).
``repro.serving.server``
    Stdlib HTTP front end — ``python -m repro.serving`` / ``repro-serve``.
"""

from repro.serving.artifact import (
    ArtifactError,
    ArtifactIntegrityError,
    load_artifact,
    read_manifest,
    save_artifact,
)
from repro.serving.batching import (
    BatchSettings,
    DeadlineExceededError,
    MicroBatcher,
    QueueFullError,
)
from repro.serving.compiled import CompiledModel
from repro.serving.metrics import ServingMetrics
from repro.serving.registry import ModelEntry, ModelRegistry, default_registry
from repro.serving.server import create_server, main

__all__ = [
    "ArtifactError", "ArtifactIntegrityError",
    "load_artifact", "read_manifest", "save_artifact",
    "BatchSettings", "MicroBatcher",
    "QueueFullError", "DeadlineExceededError",
    "CompiledModel",
    "ServingMetrics",
    "ModelEntry", "ModelRegistry", "default_registry",
    "create_server", "main",
]
