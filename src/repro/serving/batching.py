"""Dynamic micro-batching: coalesce single requests into batched passes.

The integer-matmul forward pass is dramatically cheaper per sample when
batched (see ``benchmarks/bench_serving_throughput.py``), so the server
never runs one sample at a time: requests enter a queue, a worker thread
drains it, groups requests by model key, and runs one forward pass per
group.  A request waits at most ``max_latency_ms`` for co-riders and a
batch never exceeds ``max_batch_size`` samples.

Each :meth:`MicroBatcher.submit` returns a
:class:`concurrent.futures.Future` resolving to the score rows for that
request — batching is invisible to callers, and because the batched forward
is row-wise exact integer arithmetic, results are bit-identical to an
unbatched pass.

Overload hardening (see ``docs/robustness.md``): ``max_queue_depth``
bounds the queue and :meth:`submit` sheds with :class:`QueueFullError`
once it is full (the server maps this to ``503`` + ``Retry-After``);
``deadline_s`` bounds a request's total queue + compute time — a request
that waited past its deadline resolves to
:class:`DeadlineExceededError` instead of burning a forward pass on an
answer nobody is waiting for.  An exception escaping a batch resolves
that batch's futures and never kills the worker thread.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import obs
from repro.serving.metrics import ServingMetrics

__all__ = ["BatchSettings", "MicroBatcher", "QueueFullError",
           "DeadlineExceededError"]


class QueueFullError(RuntimeError):
    """Request shed: the batching queue is at ``max_queue_depth``."""


class DeadlineExceededError(RuntimeError):
    """Request dropped: it waited in the queue past ``deadline_s``."""


@dataclass(frozen=True)
class BatchSettings:
    """Tunables for the micro-batching queue."""

    max_batch_size: int = 64
    max_latency_ms: float = 5.0
    #: admission bound: submits shed with :class:`QueueFullError` while
    #: this many requests are already queued (0 = unbounded)
    max_queue_depth: int = 0
    #: per-request deadline in seconds; a request still queued past it
    #: resolves to :class:`DeadlineExceededError` (None = no deadline)
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_latency_ms < 0:
            raise ValueError("max_latency_ms must be >= 0")
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")


class _Request:
    __slots__ = ("key", "x", "future", "enqueued")

    def __init__(self, key, x: np.ndarray) -> None:
        self.key = key
        self.x = x
        self.future: Future = Future()
        self.enqueued = time.monotonic()


class MicroBatcher:
    """Background worker that batches predict requests per model key.

    Parameters
    ----------
    resolve:
        ``key -> model`` callable; a model only needs ``forward``.  Pass
        ``registry.get`` (or ``lambda key: registry.get(*key)`` for
        ``(name, version)`` keys) to serve from a
        :class:`~repro.serving.registry.ModelRegistry`; pass
        ``lambda _key: model`` for a single model.
    settings:
        Batch size / latency bounds.
    metrics:
        Optional :class:`ServingMetrics` fed batch sizes and queue depth.
    """

    def __init__(self, resolve: Callable[[object], object],
                 settings: BatchSettings | None = None,
                 metrics: ServingMetrics | None = None) -> None:
        self._resolve = resolve
        self.settings = settings or BatchSettings()
        self.metrics = metrics
        self._queue: queue.Queue[_Request | None] = queue.Queue()
        self._closed = False
        self._lock = threading.Lock()
        self._worker = threading.Thread(target=self._run, daemon=True,
                                        name="repro-microbatcher")
        self._worker.start()

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def submit(self, key, x: np.ndarray) -> Future:
        """Enqueue one request; resolves to the score rows for *x*.

        *x* may be a single sample (feature vector / image) or a small
        batch; a leading batch axis is added for single samples.
        """
        # convert/validate outside the lock — payloads can be large and
        # concurrent submitters are the normal case
        x = np.asarray(x, dtype=np.float64)
        if x.ndim in (1, 3):            # one flat sample / one image
            x = x[np.newaxis]
        if x.ndim not in (2, 4):
            raise ValueError(
                f"expected a sample or batch, got shape {x.shape}")
        request = _Request(key, x)
        with self._lock:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            if self.overloaded():
                if self.metrics is not None:
                    self.metrics.record_shed()
                raise QueueFullError(
                    f"queue is at its depth bound "
                    f"({self.settings.max_queue_depth}); retry later")
            self._queue.put(request)
        if self.metrics is not None:
            self.metrics.set_queue_depth(self._queue.qsize())
        return request.future

    def predict(self, key, x: np.ndarray, timeout: float | None = 10.0,
                ) -> np.ndarray:
        """Synchronous helper: submit and wait for the scores."""
        return self.submit(key, x).result(timeout=timeout)

    def queue_depth(self) -> int:
        """Requests currently waiting (approximate, like ``qsize``).

        The server's ``/stats`` and ``/metrics`` handlers poll this so
        snapshots report the live depth rather than the depth at the
        last submit."""
        return self._queue.qsize()

    def overloaded(self) -> bool:
        """Whether the next :meth:`submit` would shed (``/healthz``'s
        readiness signal).  Always ``False`` when the queue is unbounded.
        """
        return (self.settings.max_queue_depth > 0
                and self._queue.qsize() >= self.settings.max_queue_depth)

    def close(self, timeout: float | None = 5.0) -> None:
        """Drain outstanding requests and stop the worker."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(None)
        self._worker.join(timeout=timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # worker
    # ------------------------------------------------------------------
    def _collect(self, first: _Request) -> tuple[list[_Request], bool]:
        """Gather co-riders for *first* until size or latency bound."""
        batch = [first]
        samples = len(first.x)
        deadline = first.enqueued + self.settings.max_latency_ms / 1e3
        stop = False
        while samples < self.settings.max_batch_size:
            wait = deadline - time.monotonic()
            try:
                item = (self._queue.get_nowait() if wait <= 0
                        else self._queue.get(timeout=wait))
            except queue.Empty:
                break
            if item is None:
                stop = True
                break
            batch.append(item)
            samples += len(item.x)
        return batch, stop

    @staticmethod
    def _resolve_future(future: Future, result=None,
                        error: Exception | None = None) -> None:
        """Set a future's outcome, tolerating a concurrent cancel().

        The client owns the future and may cancel between our check and the
        set — swallowing :class:`InvalidStateError` keeps the worker thread
        alive (a dead worker would hang every later request forever).
        """
        try:
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(result)
        except InvalidStateError:
            pass

    def _expire(self, batch: list[_Request]) -> list[_Request]:
        """Drop requests whose deadline passed while they queued."""
        deadline_s = self.settings.deadline_s
        if deadline_s is None:
            return batch
        now = time.monotonic()
        live = []
        for request in batch:
            waited = now - request.enqueued
            if waited > deadline_s:
                if self.metrics is not None:
                    self.metrics.record_deadline_expired()
                self._resolve_future(request.future, error=(
                    DeadlineExceededError(
                        f"request queued {waited * 1e3:.0f}ms, past its "
                        f"{deadline_s * 1e3:.0f}ms deadline")))
            else:
                live.append(request)
        return live

    def _flush(self, batch: list[_Request]) -> None:
        """Run one forward pass per model key and resolve futures."""
        batch = self._expire(batch)
        # group on (key, sample shape) so one malformed request cannot
        # break np.concatenate — and thereby the batch — for its co-riders
        groups: dict[object, list[_Request]] = {}
        for request in batch:
            groups.setdefault((request.key, request.x.shape[1:]),
                              []).append(request)
        for (key, _shape), requests in groups.items():
            try:
                with obs.span("serving.batch", requests=len(requests)):
                    model = self._resolve(key)
                    scores = model.forward(
                        np.concatenate([r.x for r in requests], axis=0))
            except Exception as error:
                for request in requests:
                    self._resolve_future(request.future, error=error)
                continue
            if self.metrics is not None:
                self.metrics.record_batch(len(scores))
            offset = 0
            for request in requests:
                rows = scores[offset:offset + len(request.x)]
                offset += len(request.x)
                self._resolve_future(request.future, result=rows)

    def _flush_isolated(self, batch: list[_Request]) -> None:
        """Flush, absorbing anything the flush machinery itself raises.

        ``_flush`` already fences model errors per group; this is the
        last line of defence for bugs *around* the forward pass (metrics,
        grouping, a hostile ``resolve``).  The worker thread must survive
        — a dead worker hangs every later request forever — so the batch
        fails, its futures resolve, and the loop continues.
        """
        try:
            self._flush(batch)
        except Exception as error:  # noqa: BLE001 - isolate the worker
            for request in batch:
                if not request.future.done():
                    self._resolve_future(request.future, error=error)

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                break
            batch, stop = self._collect(item)
            if self.metrics is not None:
                self.metrics.set_queue_depth(self._queue.qsize())
            self._flush_isolated(batch)
            if stop:
                break
        # drain anything enqueued before close() won the lock
        leftovers: list[_Request] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                leftovers.append(item)
        if leftovers:
            self._flush_isolated(leftovers)
