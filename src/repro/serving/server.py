"""Stdlib HTTP front end for the serving stack.

Endpoints (all JSON):

* ``GET  /health``  — liveness + registered model list,
* ``GET  /healthz`` — readiness probe: ``200 ready`` normally, ``503
  overloaded`` while the batching queue is at its depth bound (load
  balancers should stop routing here until it drains),
* ``GET  /models``  — registry detail (name, version, spec label, energy),
* ``GET  /stats``   — :class:`~repro.serving.metrics.ServingMetrics`
  snapshot (throughput, latency p50/p95/p99, live queue depth, error
  counts, energy totals),
* ``GET  /metrics`` — the same metrics in the Prometheus text exposition
  format (scrape target; text/plain, not JSON),
* ``POST /predict`` — ``{"model": name, "inputs": [[...], ...],
  "version": optional int}`` → ``{"predictions": [...], "scores": ...}``.

Run from a checkout::

    PYTHONPATH=src python -m repro.serving results/artifacts/digits

or, after ``pip install -e .``, via the ``repro-serve`` console script.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro import obs
from repro.serving.batching import (
    BatchSettings,
    DeadlineExceededError,
    MicroBatcher,
    QueueFullError,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.registry import ModelRegistry, default_registry

__all__ = ["ServingServer", "create_server", "main", "deprecated_main"]


class ServingServer(ThreadingHTTPServer):
    """HTTP server owning the registry, batcher and metrics."""

    daemon_threads = True
    # the socketserver default backlog (5) resets connections under
    # concurrent bursts; batching exists precisely for those
    request_queue_size = 128

    def __init__(self, address: tuple[str, int],
                 registry: ModelRegistry,
                 settings: BatchSettings | None = None) -> None:
        super().__init__(address, _Handler)
        self.registry = registry
        self.metrics = ServingMetrics()
        self.batcher = MicroBatcher(
            lambda key: registry.get(*key), settings=settings,
            metrics=self.metrics)

    def shutdown(self) -> None:
        """Stop the HTTP loop, drain the batcher, release the socket."""
        super().shutdown()
        self.batcher.close()
        self.server_close()


class _Handler(BaseHTTPRequestHandler):
    server: ServingServer

    # silence per-request stderr lines; metrics carry the signal
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------
    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str,
                         retry_after_s: int | None = None) -> None:
        self.server.metrics.record_error()
        body = json.dumps({"error": message}).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            self.send_header("Retry-After", str(retry_after_s))
        self.end_headers()
        self.wfile.write(body)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib API
        if self.path == "/health":
            entries = self.server.registry.list_models()
            self._send_json({
                "status": "ok",
                "models": [entry.key for entry in entries],
            })
        elif self.path == "/healthz":
            # readiness, not liveness: flips 503 while the batcher sheds
            # so load balancers stop routing until the queue drains
            if self.server.batcher.overloaded():
                self._send_json(
                    {"status": "overloaded",
                     "queue_depth": self.server.batcher.queue_depth()},
                    status=503)
            else:
                self._send_json({"status": "ready"})
        elif self.path == "/stats":
            # refresh the gauge so the snapshot reports the *live* depth,
            # not the depth at the last enqueue/dequeue
            self.server.metrics.set_queue_depth(
                self.server.batcher.queue_depth())
            self._send_json(self.server.metrics.snapshot())
        elif self.path == "/metrics":
            self.server.metrics.set_queue_depth(
                self.server.batcher.queue_depth())
            body = self.server.metrics.to_prometheus().encode()
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path == "/models":
            payload = []
            for entry in self.server.registry.list_models():
                model = entry.model
                payload.append({
                    "name": entry.name,
                    "version": entry.version,
                    "spec": model.spec_label,
                    "bits": model.bits,
                    "params": model.num_params,
                    "path": entry.path,
                    "energy_nj_per_inference":
                        model.energy_per_inference_nj(),
                })
            self._send_json({"models": payload})
        else:
            self._send_error_json(404, f"unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib API
        if self.path != "/predict":
            self._send_error_json(404, f"unknown path {self.path!r}")
            return
        started = time.monotonic()
        try:
            length = int(self.headers.get("Content-Length", 0))
            request = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError):
            self._send_error_json(400, "body is not valid JSON")
            return
        if not isinstance(request, dict):
            # valid JSON but not an object (e.g. a bare list) used to
            # escape as an unhandled 500; malformed input is the
            # client's fault and must say so
            self._send_error_json(
                400, f"body must be a JSON object, "
                     f"got {type(request).__name__}")
            return
        name = request.get("model")
        if not name:
            self._send_error_json(400, "missing 'model'")
            return
        version = request.get("version")
        try:
            inputs = np.asarray(request.get("inputs"), dtype=np.float64)
        except (TypeError, ValueError):
            self._send_error_json(400, "'inputs' is not a numeric array")
            return
        if inputs.ndim not in (1, 2, 3, 4):
            self._send_error_json(
                400, f"'inputs' has unsupported rank {inputs.ndim}")
            return
        try:
            # resolve once and pin the version, so the batch, the energy
            # estimate and the metrics all describe the same model even if
            # the registry is mutated mid-request
            with obs.span("serving.request", model=name,
                          samples=1 if inputs.ndim == 1 else len(inputs)):
                entry = self.server.registry.entry(name, version)
                future = self.server.batcher.submit((name, entry.version),
                                                    inputs)
                scores = future.result(timeout=30.0)
        except KeyError as error:
            self._send_error_json(
                404, str(error.args[0]) if error.args else str(error))
            return
        except QueueFullError as error:
            # admission control: shed with Retry-After so well-behaved
            # clients back off instead of hammering an overloaded queue
            self._send_error_json(503, str(error), retry_after_s=1)
            return
        except DeadlineExceededError as error:
            self._send_error_json(503, str(error), retry_after_s=1)
            return
        except ValueError as error:
            # shape/rank mismatches between the inputs and the model
            self._send_error_json(400, f"bad inputs: {error}")
            return
        except Exception as error:  # noqa: BLE001 - report, don't crash
            self._send_error_json(500, f"{type(error).__name__}: {error}")
            return
        latency = time.monotonic() - started
        per_inference = entry.model.energy_per_inference_nj()
        energy = (per_inference * len(scores)
                  if per_inference is not None else None)
        self.server.metrics.record_request(
            model=entry.key, samples=len(scores), latency_s=latency,
            energy_nj=energy)
        self._send_json({
            "model": name,
            "predictions": np.argmax(scores, axis=1).tolist(),
            "scores": np.asarray(scores).tolist(),
            "latency_ms": round(latency * 1e3, 3),
            "energy_nj_est": energy,
        })


# ----------------------------------------------------------------------
def create_server(registry: ModelRegistry, host: str = "127.0.0.1",
                  port: int = 0,
                  settings: BatchSettings | None = None) -> ServingServer:
    """Build a :class:`ServingServer` (``port=0`` → ephemeral port)."""
    return ServingServer((host, port), registry, settings=settings)


def serve_forever(server: ServingServer) -> None:
    """Blocking serve loop with clean Ctrl-C shutdown."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        shutdown = threading.Thread(target=server.shutdown)
        shutdown.start()
        shutdown.join()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve exported ASM model artifacts over HTTP")
    parser.add_argument(
        "artifacts", nargs="+", metavar="[NAME=]PATH",
        help="artifact bundle directory, optionally renamed via NAME=PATH")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8100)
    parser.add_argument("--max-batch-size", type=int, default=64,
                        help="samples per coalesced forward pass")
    parser.add_argument("--max-latency-ms", type=float, default=5.0,
                        help="longest a request waits for co-riders")
    parser.add_argument("--max-queue-depth", type=int, default=0,
                        help="shed requests (503) past this queue depth "
                             "(0 = unbounded)")
    parser.add_argument("--deadline-ms", type=float, default=0.0,
                        help="drop requests queued longer than this "
                             "(0 = no deadline)")
    args = parser.parse_args(argv)

    from repro.serving.artifact import ArtifactError

    registry = default_registry()
    for item in args.artifacts:
        name, _, path = item.rpartition("=")
        try:
            entry = registry.register(path, name=name or None)
        except ArtifactError as error:
            print(f"error: cannot register {path!r}: {error}")
            return 1
        energy = entry.model.energy_per_inference_nj()
        energy_text = (f"{energy:.1f} nJ/inference"
                       if energy is not None else "energy n/a")
        print(f"registered {entry.key}: {entry.model.spec_label}, "
              f"{entry.model.num_params} params, {energy_text}")

    server = create_server(
        registry, host=args.host, port=args.port,
        settings=BatchSettings(
            max_batch_size=args.max_batch_size,
            max_latency_ms=args.max_latency_ms,
            max_queue_depth=args.max_queue_depth,
            deadline_s=(args.deadline_ms / 1e3
                        if args.deadline_ms > 0 else None)))
    host, port = server.server_address[:2]
    print(f"serving {len(registry)} model(s) on http://{host}:{port} "
          f"(POST /predict, GET /health /healthz /models /stats /metrics)")
    serve_forever(server)
    return 0


def deprecated_main(argv: list[str] | None = None) -> int:
    """Entry point of the legacy ``repro-serve`` console script."""
    print("note: `repro-serve` is deprecated; use `repro serve` "
          "(see `repro --help`)", file=sys.stderr)
    return main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
