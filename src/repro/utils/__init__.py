"""Shared utilities used across subsystems (serialization, ...)."""

from repro.utils.serialization import to_jsonable, write_json

__all__ = ["to_jsonable", "write_json"]
