"""JSON-friendly serialization of result objects.

One dataclass-walking converter shared by the experiment runner's
``--json`` output and the pipeline's :class:`~repro.pipeline.report.
PipelineReport` (both used to hand-roll their own copy).  The goal is
*fidelity*, not schema: dataclasses become dicts, tuples become lists,
numpy scalars/arrays become their Python equivalents, and anything else
passes through for ``json.dump(..., default=str)`` to finish off.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, is_dataclass

import numpy as np

__all__ = ["to_jsonable", "write_json"]


def to_jsonable(value):
    """Recursively convert *value* into JSON-serialisable builtins."""
    if is_dataclass(value) and not isinstance(value, type):
        return {k: to_jsonable(v) for k, v in asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


def write_json(path: str, payload, indent: int = 2) -> str:
    """Write *payload* (via :func:`to_jsonable`) to *path*; returns *path*."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(to_jsonable(payload), handle, indent=indent, default=str)
    return path
