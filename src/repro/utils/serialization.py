"""JSON-friendly serialization of result objects.

One dataclass-walking converter shared by the experiment runner's
``--json`` output and the pipeline's :class:`~repro.pipeline.report.
PipelineReport` (both used to hand-roll their own copy).  The goal is
*fidelity*, not schema: dataclasses become dicts, tuples become lists,
numpy scalars/arrays become their Python equivalents, and anything else
passes through for ``json.dump(..., default=str)`` to finish off.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, is_dataclass

import numpy as np

__all__ = ["to_jsonable", "write_json", "atomic_write_json",
           "load_mapping"]


def to_jsonable(value):
    """Recursively convert *value* into JSON-serialisable builtins."""
    if is_dataclass(value) and not isinstance(value, type):
        return {k: to_jsonable(v) for k, v in asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


def write_json(path: str, payload, indent: int = 2) -> str:
    """Write *payload* (via :func:`to_jsonable`) to *path*; returns *path*."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(to_jsonable(payload), handle, indent=indent, default=str)
    return path


def atomic_write_json(path: str, payload, indent: int = 2) -> str:
    """Like :func:`write_json`, but via a temp file + atomic rename.

    Safe against concurrent writers producing the same entry (pipeline
    stage cache, exploration journal): each writes its own temp file and
    the final ``os.replace`` is atomic, so readers never observe a
    partial file.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w") as handle:
        json.dump(to_jsonable(payload), handle, indent=indent, default=str)
    os.replace(tmp, path)
    return path


def load_mapping(path: str, error_cls: type[Exception],
                 noun: str = "config") -> dict:
    """Load a ``.json`` or ``.toml`` file as a plain mapping.

    Shared by :class:`~repro.pipeline.config.PipelineConfig` and
    :class:`~repro.explore.space.SearchSpace`; parse and extension errors
    raise *error_cls* with *noun* naming the offending artifact.
    """
    ext = os.path.splitext(path)[1].lower()
    if ext == ".toml":
        try:
            import tomllib
        except ImportError:  # pragma: no cover - Python 3.10
            raise error_cls(
                f"TOML {noun}s need Python 3.11+ (tomllib); "
                f"use a JSON {noun} instead") from None
        with open(path, "rb") as handle:
            try:
                return tomllib.load(handle)
            except tomllib.TOMLDecodeError as error:
                raise error_cls(f"{noun} is not valid TOML: {error}")
    if ext == ".json":
        with open(path) as handle:
            try:
                return json.load(handle)
            except json.JSONDecodeError as error:
                raise error_cls(f"{noun} is not valid JSON: {error}")
    raise error_cls(
        f"unsupported {noun} extension {ext!r} (use .json or .toml)")
