"""Declarative search spaces over pipeline configurations.

A :class:`SearchSpace` names the axes of a design-space exploration —
design tokens, word widths, budget tiers, seeds, ladder qualities,
constraint modes — plus the strategy that walks them and the objectives
the Pareto reduction optimises.  Like
:class:`~repro.pipeline.config.PipelineConfig` it is frozen, validated
on construction, loadable from a dict / JSON / TOML file, round-trips
exactly, and has a content digest (which keys the exploration journal).

Every *candidate* the space enumerates is an ordinary
:class:`PipelineConfig` carrying exactly one design token, so candidate
evaluation is just :func:`~repro.pipeline.pipeline.run_pipeline` — the
explorer adds no second execution path.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields

from repro.datasets.registry import BENCHMARKS
from repro.explore.pareto import resolve_objectives
from repro.pipeline.config import (
    DESIGN_COUNTS,
    Budget,
    PipelineConfig,
    PipelineConfigError,
    parse_design,
)

__all__ = ["SearchSpaceError", "SearchSpace", "EVAL_STAGES",
           "STRATEGIES"]

#: The stage plan every candidate runs: enough for the full metric set
#: (accuracy + loss from evaluate/quantize, energy/area/delay from energy).
EVAL_STAGES = ("train", "quantize", "constrain", "evaluate", "energy")

STRATEGIES = ("grid", "random", "sensitivity")


class SearchSpaceError(ValueError):
    """Invalid search-space description (bad value or unknown key)."""


@dataclass(frozen=True)
class SearchSpace:
    """The axes, strategy and objectives of one exploration."""

    app: str
    name: str = ""                       # journal/report label; default: app
    designs: tuple[str, ...] = ("conventional", "asm4", "asm2", "asm1")
    bits: tuple[int | None, ...] = (None,)   # None/0 -> Table IV width
    budgets: tuple[str | Budget, ...] = ("quick",)
    seeds: tuple[int, ...] = (0,)
    qualities: tuple[float, ...] = (0.99,)   # ladder designs' Q
    constraint_modes: tuple[str, ...] = ("greedy",)
    strategy: str = "grid"
    samples: int = 8                     # random strategy: grid points drawn
    strategy_seed: int = 0               # random strategy: sampling rng
    max_candidates: int | None = None
    #: sensitivity strategy: counts to degrade the chosen layers to
    sensitivity_counts: tuple[int, ...] = (1,)
    objectives: tuple[str, ...] = ("accuracy", "energy_per_mac_fj",
                                   "area_um2", "latency_us")
    #: kernel backend every candidate evaluates on (bit-identical across
    #: backends — "auto" runs sweeps on the fast BLAS path)
    backend: str = "auto"
    #: simulation-kernel backend for the candidates' toggle simulator
    #: (bit-identical across backends — "auto" runs sweeps on the
    #: vectorised counting path)
    sim_backend: str = "auto"
    #: training-kernel backend every candidate retrains with
    #: (bit-identical across backends — "auto" runs sweeps on the
    #: planned training path)
    train_backend: str = "auto"
    #: test samples each candidate traces through the cycle-accurate
    #: simulator (0 = analytic energy only; see PipelineConfig)
    sim_samples: int = 0
    #: fault rates each candidate additionally sweeps (non-empty adds
    #: the ``faults`` stage to every candidate; see ``repro.faults``)
    fault_rates: tuple[float, ...] = ()
    #: fault model of the sweep (see PipelineConfig.fault_kind)
    fault_kind: str = "activation_upset"
    #: seed of the deterministic fault-site hash
    fault_seed: int = 0

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        for field_name in ("designs", "bits", "budgets", "seeds",
                           "qualities", "constraint_modes",
                           "sensitivity_counts", "objectives",
                           "fault_rates"):
            value = getattr(self, field_name)
            if isinstance(value, list):
                object.__setattr__(self, field_name, tuple(value))
        # TOML has no null: 0 means "the benchmark's Table IV width"
        object.__setattr__(self, "bits", tuple(
            None if b in (0, None) else int(b) for b in self.bits))
        object.__setattr__(self, "budgets", tuple(
            _coerce_budget(b) for b in self.budgets))
        if not self.name:
            object.__setattr__(self, "name", self.app)
        self._validate()

    def _validate(self) -> None:
        if self.app not in BENCHMARKS:
            raise SearchSpaceError(
                f"unknown app {self.app!r}; choose from {sorted(BENCHMARKS)}")
        for field_name in ("designs", "bits", "budgets", "seeds",
                           "qualities", "constraint_modes",
                           "sensitivity_counts"):
            if not getattr(self, field_name):
                raise SearchSpaceError(f"{field_name} must not be empty")
        if len(set(self.designs)) != len(self.designs):
            raise SearchSpaceError(f"duplicate designs in {self.designs}")
        if self.strategy not in STRATEGIES:
            raise SearchSpaceError(
                f"unknown strategy {self.strategy!r}; choose from "
                f"{STRATEGIES}")
        if self.samples < 1:
            raise SearchSpaceError(f"samples must be >= 1, got {self.samples}")
        for count in self.sensitivity_counts:
            if count not in DESIGN_COUNTS:
                raise SearchSpaceError(
                    f"sensitivity count {count} has no standard alphabet "
                    f"set (choose from {DESIGN_COUNTS})")
        if self.max_candidates is not None and self.max_candidates < 1:
            raise SearchSpaceError(
                f"max_candidates must be >= 1, got {self.max_candidates}")
        try:
            resolve_objectives(self.objectives)
        except ValueError as error:
            raise SearchSpaceError(str(error)) from None
        # probe one candidate per design so bad tokens / apps without a
        # §VI.E plan / bad bits fail at load time, not mid-exploration
        for design in self.designs:
            try:
                self.candidate(design, self.bits[0], self.budgets[0],
                               self.seeds[0], self.qualities[0],
                               self.constraint_modes[0])
            except PipelineConfigError as error:
                raise SearchSpaceError(str(error)) from None

    # ------------------------------------------------------------------
    # candidates
    # ------------------------------------------------------------------
    def candidate(self, design: str, bits: int | None, budget: str | Budget,
                  seed: int, quality: float, constraint_mode: str,
                  cache_dir: str | None = None) -> PipelineConfig:
        """The :class:`PipelineConfig` of one design point."""
        stages = EVAL_STAGES + ("faults",) if self.fault_rates \
            else EVAL_STAGES
        return PipelineConfig(
            app=self.app, bits=bits, designs=(design,), stages=stages,
            budget=budget, seed=seed, quality=quality,
            constraint_mode=constraint_mode, cache_dir=cache_dir,
            backend=self.backend, sim_backend=self.sim_backend,
            train_backend=self.train_backend,
            sim_samples=self.sim_samples,
            fault_rates=self.fault_rates, fault_kind=self.fault_kind,
            fault_seed=self.fault_seed)

    def grid(self, cache_dir: str | None = None) -> tuple[PipelineConfig, ...]:
        """The full cartesian grid, canonicalised and deduplicated.

        Axes that cannot affect a design are pinned to their first value
        (``constraint_mode``/``quality`` for conventional, ``quality``
        for non-ladder designs), so sweeping ``qualities`` does not clone
        every ASM point; the resulting duplicates collapse by config
        digest, preserving first-seen order.
        """
        seen: set[str] = set()
        out: list[PipelineConfig] = []
        for design in self.designs:
            kind = parse_design(design)
            for bits in self.bits:
                for budget in self.budgets:
                    for seed in self.seeds:
                        for mode in self.constraint_modes:
                            for quality in self.qualities:
                                if kind is None:
                                    mode_c = self.constraint_modes[0]
                                    quality_c = self.qualities[0]
                                elif kind != "ladder":
                                    mode_c, quality_c = \
                                        mode, self.qualities[0]
                                else:
                                    mode_c, quality_c = mode, quality
                                config = self.candidate(
                                    design, bits, budget, seed,
                                    quality_c, mode_c, cache_dir)
                                digest = config.digest()
                                if digest in seen:
                                    continue
                                seen.add(digest)
                                out.append(config)
        if self.max_candidates is not None:
            out = out[:self.max_candidates]
        return tuple(out)

    # ------------------------------------------------------------------
    # round-trips (same conventions as PipelineConfig)
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "SearchSpace":
        if not isinstance(data, dict):
            raise SearchSpaceError(
                f"search space must be a mapping, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SearchSpaceError(
                f"unknown search-space key(s): {', '.join(unknown)}; "
                f"known keys: {', '.join(sorted(known))}")
        return cls(**data)

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "name": self.name,
            "designs": list(self.designs),
            "bits": [0 if b is None else b for b in self.bits],
            "budgets": [b if isinstance(b, str) else {
                "name": b.name, "n_train": b.n_train, "n_test": b.n_test,
                "max_epochs": b.max_epochs,
                "retrain_epochs": b.retrain_epochs,
            } for b in self.budgets],
            "seeds": list(self.seeds),
            "qualities": list(self.qualities),
            "constraint_modes": list(self.constraint_modes),
            "strategy": self.strategy,
            "samples": self.samples,
            "strategy_seed": self.strategy_seed,
            "max_candidates": self.max_candidates,
            "sensitivity_counts": list(self.sensitivity_counts),
            "objectives": list(self.objectives),
            "backend": self.backend,
            "sim_backend": self.sim_backend,
            "train_backend": self.train_backend,
            "sim_samples": self.sim_samples,
            "fault_rates": list(self.fault_rates),
            "fault_kind": self.fault_kind,
            "fault_seed": self.fault_seed,
        }

    @classmethod
    def load(cls, path: str) -> "SearchSpace":
        """Load a ``.json`` or ``.toml`` search-space file."""
        from repro.utils.serialization import load_mapping

        return cls.from_dict(
            load_mapping(path, SearchSpaceError, noun="search space"))

    def digest(self) -> str:
        """Content hash; keys the exploration journal."""
        canon = json.dumps(self.to_dict(), sort_keys=True,
                           separators=(",", ":"))
        return hashlib.sha256(canon.encode()).hexdigest()


def _coerce_budget(value) -> str | Budget:
    if isinstance(value, (str, Budget)):
        if isinstance(value, str) and value not in ("quick", "full"):
            raise SearchSpaceError(
                f"unknown budget tier {value!r}; choose from "
                f"['full', 'quick'] or give an inline budget table")
        return value
    if isinstance(value, dict):
        try:
            return Budget(name=str(value.get("name", "custom")),
                          n_train=int(value["n_train"]),
                          n_test=int(value["n_test"]),
                          max_epochs=int(value["max_epochs"]),
                          retrain_epochs=int(value["retrain_epochs"]))
        except KeyError as error:
            raise SearchSpaceError(
                f"budget table is missing key {error.args[0]!r}") from None
    raise SearchSpaceError(
        f"budget must be a tier name or a budget table, "
        f"got {type(value).__name__}")
