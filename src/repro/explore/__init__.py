"""repro.explore — parallel design-space exploration with Pareto frontiers.

The paper's central claim is a *trade-off*: alphabet-set multiplier
neurons buy large energy/area savings for a bounded accuracy drop, and
Algorithm 2 / the §VI.E mixed deployments are hand-picked points on that
curve.  This subsystem makes the curve itself a first-class object:

* :class:`SearchSpace` — a declarative description (JSON/TOML) of the
  design axes to sweep: design tokens (including custom per-layer
  ``mixed:C1-C2-...`` plans), word widths, budget tiers, seeds, ladder
  qualities, constraint modes;
* strategies — ``grid`` (exhaustive), ``random`` (seeded sampling) and
  ``sensitivity`` (a greedy per-layer search that degrades the least
  output-sensitive layers first, generalising Algorithm 2);
* a multiprocessing executor whose workers share one dependency-keyed
  pipeline stage cache, plus an order-independent resumable journal —
  serial and parallel explorations of the same space leave bit-identical
  journals and frontiers;
* :class:`ExplorationReport` — every candidate's
  (accuracy, energy, area, delay) metrics plus the Pareto frontier, as
  JSON and formatted tables;
* :func:`register_frontier` — exports the frontier winners into the
  serving :class:`~repro.serving.registry.ModelRegistry` so the best
  trade-off points are immediately servable.

Typical use::

    from repro.explore import SearchSpace, run_exploration
    space = SearchSpace.load("examples/configs/digits_explore.toml")
    report = run_exploration(space, "results/explore/digits", jobs=4)
    print(format_exploration_report(report))

or, from a shell: ``repro explore examples/configs/digits_explore.toml
--jobs 4``.
"""

from repro.explore.deploy import register_frontier
from repro.explore.executor import (
    CandidateTimeout,
    evaluate_candidate,
    metrics_from_report,
    run_candidates,
)
from repro.explore.journal import (
    FAILED_STATUS,
    ExplorationJournal,
    JournalError,
    list_journals,
    load_space,
)
from repro.explore.pareto import (
    OBJECTIVES,
    Objective,
    dominates,
    pareto_frontier,
    resolve_objectives,
)
from repro.explore.report import ExplorationReport, format_exploration_report
from repro.explore.space import (
    EVAL_STAGES,
    STRATEGIES,
    SearchSpace,
    SearchSpaceError,
)
from repro.explore.strategies import (
    grid_candidates,
    random_candidates,
    run_exploration,
    sensitivity_order,
)

__all__ = [
    "SearchSpace", "SearchSpaceError", "EVAL_STAGES", "STRATEGIES",
    "Objective", "OBJECTIVES", "dominates", "pareto_frontier",
    "resolve_objectives",
    "ExplorationJournal", "JournalError", "load_space", "list_journals",
    "FAILED_STATUS", "CandidateTimeout",
    "evaluate_candidate", "metrics_from_report", "run_candidates",
    "ExplorationReport", "format_exploration_report",
    "grid_candidates", "random_candidates", "sensitivity_order",
    "run_exploration",
    "register_frontier",
]
