"""Pareto dominance utilities over candidate metric mappings.

The explorer reduces every evaluated design point to a flat
``metric name -> float`` mapping and asks one question: which points are
*Pareto-optimal* under the configured objectives?  A point is dominated
when another point is no worse on every objective and strictly better on
at least one; the frontier is the set of non-dominated points.

Conventions
-----------
* Duplicate points (equal on every objective) do not dominate each other
  — all copies stay on the frontier.
* With a single objective the frontier is every point attaining the
  optimum (ties included).
* Indices into the input sequence are returned in input order, so the
  frontier of a deterministically-ordered candidate list is itself
  deterministic.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

__all__ = ["Objective", "OBJECTIVES", "resolve_objectives", "dominates",
           "pareto_frontier"]


@dataclass(frozen=True)
class Objective:
    """One axis of the trade-off: a metric key and a direction."""

    key: str
    maximize: bool = False

    def better(self, a: float, b: float) -> bool:
        """True when value *a* is strictly better than *b*."""
        return a > b if self.maximize else a < b


#: The metric axes a :class:`~repro.explore.space.SearchSpace` may name,
#: with the direction that makes each one "better".
OBJECTIVES: dict[str, Objective] = {
    "accuracy": Objective("accuracy", maximize=True),
    "accuracy_loss": Objective("accuracy_loss"),
    "energy_nj": Objective("energy_nj"),
    "energy_per_mac_fj": Objective("energy_per_mac_fj"),
    "area_um2": Objective("area_um2"),
    "latency_us": Objective("latency_us"),
    "cycles": Objective("cycles"),
}


def resolve_objectives(keys: Sequence[str]) -> tuple[Objective, ...]:
    """Map metric names to :class:`Objective` records (unknown = error)."""
    if not keys:
        raise ValueError("at least one objective is required")
    resolved = []
    for key in keys:
        try:
            resolved.append(OBJECTIVES[key])
        except KeyError:
            raise ValueError(
                f"unknown objective {key!r}; choose from "
                f"{sorted(OBJECTIVES)}") from None
    return tuple(resolved)


def dominates(a: Mapping[str, float], b: Mapping[str, float],
              objectives: Sequence[Objective]) -> bool:
    """True when point *a* Pareto-dominates point *b*.

    *a* dominates *b* iff *a* is no worse on every objective and strictly
    better on at least one.  Equal points therefore never dominate each
    other.
    """
    strictly_better = False
    for obj in objectives:
        av, bv = a[obj.key], b[obj.key]
        if obj.better(bv, av):
            return False
        if obj.better(av, bv):
            strictly_better = True
    return strictly_better


def pareto_frontier(points: Sequence[Mapping[str, float]],
                    objectives: Sequence[Objective]) -> tuple[int, ...]:
    """Indices of the non-dominated *points*, in input order.

    O(n^2) pairwise sweep — candidate counts are small (a design-space
    grid, not a population), and the simple form keeps ties and
    duplicates exactly to the documented conventions.
    """
    if not objectives:
        raise ValueError("at least one objective is required")
    frontier = []
    for i, point in enumerate(points):
        if any(dominates(other, point, objectives)
               for j, other in enumerate(points) if j != i):
            continue
        frontier.append(i)
    return tuple(frontier)
