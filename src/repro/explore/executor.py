"""Multiprocessing evaluation of exploration candidates.

One shared worker-pool layer for everything in the repo that fans
pipeline work out over processes:

* :func:`run_candidates` — evaluate a list of candidate
  :class:`PipelineConfig`s (the explorer's hot path), journaling each
  result as it lands;
* :func:`run_pipeline_jobs` / :func:`run_experiment_jobs` — the
  ``--jobs`` flag of ``repro run`` and ``repro experiment``.

Determinism: workers only *compute*; the parent process owns the journal
and the result ordering (records are keyed by candidate config digest
and re-ordered by candidate index), so ``jobs=1`` and ``jobs=N`` produce
bit-identical journals and frontiers.  Workers share the pipeline stage
cache directory — safe, because stage-cache writes are atomic and the
stages are deterministic (two workers racing to produce an entry write
identical bytes).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from collections.abc import Callable, Sequence
from contextlib import contextmanager

from repro import obs
from repro.explore.journal import FAILED_STATUS, RECORD_FORMAT, \
    ExplorationJournal
from repro.faults import chaos as _chaos
from repro.pipeline.config import PipelineConfig
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.report import PipelineReport

__all__ = ["RECORD_FORMAT", "CandidateTimeout", "metrics_from_report",
           "evaluate_candidate", "run_candidates", "pool_map",
           "run_pipeline_jobs", "run_experiment_jobs"]

#: Metric keys every candidate record carries (the Pareto axes).
METRIC_KEYS = ("accuracy", "accuracy_loss", "energy_nj",
               "energy_per_mac_fj", "area_um2", "latency_us", "cycles")

#: Default bounded-retry count for failing candidates (attempts =
#: ``max_retries + 1``); exhausted candidates are quarantined into the
#: journal as typed failure records.
DEFAULT_MAX_RETRIES = 2

#: First-retry backoff; doubles per retry round.  Deliberately tiny —
#: the common transient (a cursed chaos attempt, an OS hiccup) clears
#: immediately, and sweeps must not crawl.
DEFAULT_BACKOFF_S = 0.05


class CandidateTimeout(RuntimeError):
    """A candidate exceeded the per-candidate evaluation timeout."""


@contextmanager
def _deadline(seconds: float | None):
    """Raise :class:`CandidateTimeout` after *seconds* of wall time.

    Uses ``SIGALRM``, so it only arms in a (worker) main thread on
    platforms that have it; elsewhere it is a no-op and the candidate
    runs unbounded — a graceful degradation, not an error.
    """
    if not seconds or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):
        raise CandidateTimeout(
            f"candidate exceeded the {seconds:g}s evaluation timeout")

    try:
        previous = signal.signal(signal.SIGALRM, _expired)
    except ValueError:          # not in the main thread
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def pool_map(fn: Callable, payloads: Sequence, jobs: int,
             on_result: Callable[[object], None] | None = None) -> list:
    """Map *fn* over *payloads*, in-process or on a worker pool.

    *fn* must accept one payload and return ``(index, value)`` with the
    payload's position; results come back ordered by that index whatever
    the completion order.  ``on_result`` (if given) sees each
    ``(index, value)`` as it completes — the journaling hook.

    Under a traced parent (``--trace``), fork-start workers keep tracing
    into per-worker shard files (:mod:`repro.obs.shard`); ``repro stats``
    merges them back under the parent's ``explore.map`` span.  Tracing
    never touches the values workers return, so journals stay
    bit-identical between traced and untraced runs.
    """
    results: dict[int, object] = {}
    if jobs <= 1 or len(payloads) <= 1:
        for payload in payloads:
            index, value = fn(payload)
            if on_result is not None:
                on_result((index, value))
            results[index] = value
    else:
        ctx = _pool_context()
        with ctx.Pool(processes=min(jobs, len(payloads))) as pool:
            for index, value in pool.imap_unordered(fn, payloads):
                if on_result is not None:
                    on_result((index, value))
                results[index] = value
    return [results[index] for index in sorted(results)]


# ----------------------------------------------------------------------
# candidate evaluation
# ----------------------------------------------------------------------
def metrics_from_report(report: PipelineReport, design: str) -> dict:
    """Flatten one design's pipeline report into the Pareto metric axes."""
    eval_row = report.require("evaluate").row_for(design)
    energy_row = report.require("energy").row_for(design)
    return {
        "accuracy": eval_row.accuracy,
        "accuracy_loss": (eval_row.loss if eval_row.loss is not None
                          else 0.0),
        "energy_nj": energy_row.energy_nj,
        "energy_per_mac_fj": energy_row.energy_per_mac_fj,
        "area_um2": energy_row.area_um2,
        "latency_us": energy_row.latency_us,
        "cycles": energy_row.cycles,
    }


def evaluate_candidate(config: PipelineConfig,
                       resume: bool = True) -> dict:
    """Run one candidate pipeline and reduce it to a journal record.

    The record is pure JSON builtins and intentionally contains nothing
    order-, timing- or location-dependent (``cache_dir`` is stripped, and
    ``cached_stages`` is *not* recorded — which stages happened to be
    warm differs between serial and parallel runs of the same space).
    """
    with obs.span("explore.candidate", design=config.designs[0],
                  seed=config.seed, digest=config.digest()[:12]):
        report = Pipeline(config).run(resume=resume)
    design = config.designs[0]
    eval_row = report.require("evaluate").row_for(design)
    config_dict = config.to_dict()
    config_dict["cache_dir"] = None
    record = {
        "format": RECORD_FORMAT,
        "config": config_dict,
        "config_digest": config.digest(),
        "design": design,
        "label": eval_row.label,
        "metrics": metrics_from_report(report, design),
    }
    if design != "conventional":
        outcome = report.require("constrain").outcome_for(design)
        record["retrain_epochs"] = outcome.epochs
        if outcome.chosen_alphabets is not None:
            record["chosen_alphabets"] = outcome.chosen_alphabets
    if report.faults is not None:
        record["faults"] = {
            "kind": report.faults.kind,
            "seed": report.faults.seed,
            "rows": [{"design": row.design, "rate": row.rate,
                      "accuracy": row.accuracy,
                      "degradation": row.degradation,
                      "injected": row.injected}
                     for row in report.faults.rows],
        }
    return record


def _candidate_worker(payload) -> tuple[int, dict]:
    index, config_dict, resume, attempt, timeout_s = payload
    config = PipelineConfig.from_dict(config_dict)
    started = time.perf_counter()
    try:
        with _deadline(timeout_s):
            # the chaos harness (tests/CI only; inert otherwise) gets
            # first strike, exactly where a real worker would crash or
            # stall — inside the deadline, so slow workers time out
            _chaos.maybe_strike(config.digest(), attempt)
            record = evaluate_candidate(config, resume=resume)
    except Exception as error:
        # failures come back as typed values, never as pool-breaking
        # exceptions: the parent owns retry/quarantine policy
        return index, {"failure": {"error_type": type(error).__name__,
                                   "error": str(error)[:500]},
                       "elapsed_s": time.perf_counter() - started}
    # the record itself must stay deterministic (it is journaled and
    # compared bit-for-bit between serial and parallel runs), so timing
    # rides alongside it and is stripped off by ``run_candidates``
    return index, {"record": record,
                   "elapsed_s": time.perf_counter() - started}


def run_candidates(configs: Sequence[PipelineConfig],
                   journal: ExplorationJournal | None = None,
                   jobs: int = 1, resume: bool = True,
                   verbose: bool = False,
                   max_retries: int = DEFAULT_MAX_RETRIES,
                   timeout_s: float | None = None,
                   backoff_s: float = DEFAULT_BACKOFF_S,
                   ) -> tuple[list[dict], dict]:
    """Evaluate *configs*, reusing journal records where possible.

    Returns ``(records, stats)`` with records in candidate order and
    ``stats = {"candidates", "journal_hits", "evaluated", "failed",
    "retries", "elapsed_s", "utilization"}`` — ``elapsed_s`` sums the
    workers' per-candidate wall time and ``utilization`` is that busy
    time over the pool's capacity (``jobs``  × the fan-out wall time),
    the explorer's worker-utilization figure.  With ``resume=False``
    both the journal and the pipeline stage cache are ignored (and then
    rewritten).

    Hardening: a failing candidate is retried up to *max_retries* times
    with exponential backoff (``backoff_s`` doubling per round); a
    candidate still failing after that is *quarantined* — a typed
    failure record (``"status": "failed"``) lands in the journal and in
    the returned records, and resumed runs skip it.  *timeout_s* bounds
    each attempt's wall time (``SIGALRM``-based; see
    :class:`CandidateTimeout`).  Successful candidates' records are
    byte-identical whether or not failures happened around them.
    """
    records: dict[int, dict] = {}
    pending: list[tuple[int, dict, bool, int, float | None]] = []
    telemetry = obs.enabled()
    for index, config in enumerate(configs):
        digest = config.digest()
        cached = journal.load_record(digest) if (journal is not None
                                                and resume) else None
        if cached is not None:
            records[index] = cached
            if telemetry:
                obs.registry().counter("explore.journal_hits").inc()
            if verbose:
                note = ("quarantined, skipped"
                        if cached.get("status") == FAILED_STATUS
                        else "journal hit")
                print(f"[{index + 1}/{len(configs)}] "
                      f"{config.designs[0]} seed={config.seed}: {note}")
        else:
            pending.append((index, config.to_dict(), resume, 0, timeout_s))

    busy = [0.0]

    def landed(item) -> None:
        index, outcome = item
        busy[0] += outcome["elapsed_s"]
        if "failure" in outcome:
            # retry/quarantine policy runs after the round completes
            return
        record = outcome["record"]
        records[index] = record
        if journal is not None:
            journal.write_record(record)
            if telemetry:
                obs.registry().counter("explore.journal_writes").inc()
        if telemetry:
            obs.registry().counter("explore.candidates_evaluated").inc()
            obs.registry().histogram("explore.candidate_seconds").observe(
                outcome["elapsed_s"])
        if verbose:
            metrics = record["metrics"]
            print(f"[{index + 1}/{len(configs)}] {record['design']} "
                  f"seed={record['config']['seed']}: "
                  f"accuracy={metrics['accuracy'] * 100:.2f}% "
                  f"energy={metrics['energy_nj']:.1f}nJ")

    def quarantine(index: int, failure: dict, attempts: int) -> None:
        config_dict = configs[index].to_dict()
        config_dict["cache_dir"] = None
        record = {
            "format": RECORD_FORMAT,
            "config": config_dict,
            "config_digest": configs[index].digest(),
            "design": configs[index].designs[0],
            "status": FAILED_STATUS,
            "error_type": failure["error_type"],
            "error": failure["error"],
            "attempts": attempts,
        }
        records[index] = record
        if journal is not None:
            journal.write_record(record)
        if telemetry:
            obs.registry().counter("explore.quarantined").inc()
        if verbose:
            print(f"[{index + 1}/{len(configs)}] "
                  f"{configs[index].designs[0]} "
                  f"seed={configs[index].seed}: QUARANTINED after "
                  f"{attempts} attempts ({failure['error_type']}: "
                  f"{failure['error']})")

    retries_total = 0
    failed = 0
    workers = max(1, min(jobs, len(pending)) if pending else 1)
    with obs.span("explore.map", candidates=len(configs),
                  pending=len(pending), jobs=workers) as map_span:
        started = time.perf_counter()
        round_payloads = pending
        while round_payloads:
            outcomes = pool_map(_candidate_worker, round_payloads, jobs,
                                on_result=landed)
            retry_payloads = []
            ordered = sorted(round_payloads, key=lambda p: p[0])
            for payload, outcome in zip(ordered, outcomes):
                if "failure" not in outcome:
                    continue
                index, config_dict, res, attempt, limit = payload
                if attempt < max_retries:
                    retries_total += 1
                    if telemetry:
                        obs.registry().counter("explore.retries").inc()
                    if verbose:
                        failure = outcome["failure"]
                        print(f"[{index + 1}/{len(configs)}] "
                              f"{configs[index].designs[0]} "
                              f"seed={configs[index].seed}: attempt "
                              f"{attempt + 1} failed "
                              f"({failure['error_type']}), retrying")
                    retry_payloads.append(
                        (index, config_dict, res, attempt + 1, limit))
                else:
                    failed += 1
                    quarantine(index, outcome["failure"], attempt + 1)
            if retry_payloads and backoff_s > 0:
                # exponential backoff: every payload in a round shares
                # the same attempt number
                time.sleep(backoff_s * 2 ** (retry_payloads[0][3] - 1))
            round_payloads = retry_payloads
        wall = time.perf_counter() - started
        utilization = (busy[0] / (workers * wall)
                       if pending and wall > 0 else 0.0)
        map_span.set(utilization=round(utilization, 3),
                     retries=retries_total, failed=failed)
    if telemetry:
        obs.registry().gauge("explore.workers").set(workers)
        obs.registry().gauge("explore.worker_utilization").set(utilization)
    stats = {
        "candidates": len(configs),
        "journal_hits": len(configs) - len(pending),
        "evaluated": len(pending) - failed,
        "failed": failed,
        "retries": retries_total,
        "elapsed_s": busy[0],
        "utilization": utilization,
    }
    return [records[index] for index in sorted(records)], stats


# ----------------------------------------------------------------------
# generic pipeline / experiment fan-out (the CLI --jobs flag)
# ----------------------------------------------------------------------
def _pipeline_job(payload) -> tuple[int, dict]:
    from repro.pipeline.report import format_report

    index, config_dict, stages, resume = payload
    config = PipelineConfig.from_dict(config_dict)
    report = Pipeline(config).run(stages=stages, resume=resume)
    return index, {"config_digest": config.digest(),
                   "text": format_report(report),
                   "report": report.to_dict()}


def run_pipeline_jobs(configs: Sequence[PipelineConfig],
                      stages: tuple[str, ...] | None = None,
                      resume: bool = True, jobs: int = 1) -> list[dict]:
    """Run several pipeline configs, each returning its formatted report."""
    payloads = [(index, config.to_dict(), stages, resume)
                for index, config in enumerate(configs)]
    return pool_map(_pipeline_job, payloads, jobs)


def _experiment_job(payload) -> tuple[int, dict]:
    from repro.experiments.runner import run_experiment
    from repro.utils.serialization import write_json

    index, name, full, seed, write_results = payload
    text, result = run_experiment(name, full=full, seed=seed)
    path = None
    if write_results:
        path = write_json(os.path.join("results", f"{name}.json"), result)
    return index, {"name": name, "text": text, "path": path}


def run_experiment_jobs(names: Sequence[str], full: bool = False,
                        seed: int = 0, write_results: bool = False,
                        jobs: int = 1) -> list[dict]:
    """Run several named experiments, each returning its printable text."""
    payloads = [(index, name, full, seed, write_results)
                for index, name in enumerate(names)]
    return pool_map(_experiment_job, payloads, jobs)
