"""Frontier -> serving: make the Pareto-optimal designs servable.

The point of the exploration is to *pick* a trade-off, so the winners
should not stay numbers in a report: :func:`register_frontier` exports
every non-conventional frontier design as a serving artifact bundle and
registers it in a :class:`~repro.serving.registry.ModelRegistry`, where
the batching queue / HTTP server can resolve it immediately.

Thanks to the dependency-keyed stage cache, exporting a frontier winner
re-runs nothing but the ``export`` stage itself — train/constrain results
are shared with the exploration that found it.
"""

from __future__ import annotations

import os

from repro.explore.report import ExplorationReport
from repro.pipeline.config import PipelineConfig
from repro.pipeline.pipeline import Pipeline
from repro.serving.registry import ModelEntry, ModelRegistry

__all__ = ["register_frontier"]


def register_frontier(report: ExplorationReport,
                      registry: ModelRegistry | None = None,
                      export_dir: str = os.path.join(
                          "results", "artifacts", "explore"),
                      cache_dir: str | None = None,
                      verbose: bool = False) -> list[ModelEntry]:
    """Export and register every ASM/mixed frontier design of *report*.

    Artifacts land under ``<export_dir>/<config-digest[:12]>/`` (one
    directory per candidate, so same-design candidates from different
    seeds do not overwrite each other) and register under the name
    ``<app>-<design>`` — the registry auto-versions repeats.  Returns the
    created entries in frontier order; conventional designs have nothing
    to export and are skipped.

    ``cache_dir`` defaults to the stage cache the exploration itself
    used (``report.cache_dir``), so only the ``export`` stage runs; a
    report reloaded from JSON no longer knows its cache and retrains
    unless one is passed.
    """
    if registry is None:
        registry = ModelRegistry()
    if cache_dir is None:
        cache_dir = report.cache_dir
    entries: list[ModelEntry] = []
    for record in report.frontier_records():
        design = record["design"]
        if design == "conventional":
            continue
        config = PipelineConfig.from_dict(record["config"])
        config = config.with_overrides(
            stages=(*config.stages, "export"),
            export_design=design,
            export_dir=os.path.join(export_dir,
                                    record["config_digest"][:12]),
            cache_dir=cache_dir)
        pipeline_report = Pipeline(config).run(verbose=verbose)
        export = pipeline_report.require("export")
        name = f"{config.app}-{design.replace(':', '_')}"
        entry = registry.register(export.path, name=name)
        if verbose:
            print(f"[registry] {entry.key} <- {export.path}")
        entries.append(entry)
    return entries
