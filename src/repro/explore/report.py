"""The :class:`ExplorationReport` — one serialisable record per exploration.

Same conventions as :class:`~repro.pipeline.report.PipelineReport`: a
frozen dataclass holding everything the run knows, a ``to_dict`` that is
one ``json.dump`` away from disk, and a plain-text formatter rendering
through :func:`repro.hardware.report.format_table` so exploration output
looks like every other table in the repo.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.explore.pareto import resolve_objectives
from repro.explore.space import SearchSpace
from repro.hardware.report import format_table
from repro.utils.serialization import write_json

__all__ = ["ExplorationReport", "format_exploration_report"]


@dataclass(frozen=True)
class ExplorationReport:
    """Everything one exploration run knows."""

    space: SearchSpace
    records: tuple[dict, ...]        # candidate records, enumeration order
    frontier: tuple[int, ...]        # indices into records
    journal_hits: int = 0
    evaluated: int = 0
    #: candidates quarantined as typed failure records (they stay in the
    #: journal but never enter ``records`` or the frontier)
    failed: int = 0
    #: stage cache the exploration ran against, so follow-up work
    #: (register_frontier) reuses it.  Deliberately NOT serialised:
    #: records and reports must stay location-independent (the
    #: serial-vs-parallel bit-identity guarantee).
    cache_dir: str | None = None

    # ------------------------------------------------------------------
    def frontier_records(self) -> list[dict]:
        return [self.records[index] for index in self.frontier]

    def best(self, objective: str) -> dict:
        """The record optimising one *objective* alone (ties: first)."""
        (resolved,) = resolve_objectives((objective,))
        best = None
        for record in self.records:
            value = record["metrics"][resolved.key]
            if best is None or resolved.better(
                    value, best["metrics"][resolved.key]):
                best = record
        if best is None:
            raise ValueError("exploration produced no records")
        return best

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "space": self.space.to_dict(),
            "space_digest": self.space.digest(),
            "objectives": list(self.space.objectives),
            "candidates": len(self.records),
            "journal_hits": self.journal_hits,
            "evaluated": self.evaluated,
            "failed": self.failed,
            "frontier": list(self.frontier),
            "records": [dict(record) for record in self.records],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def save(self, path: str) -> str:
        return write_json(path, self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "ExplorationReport":
        return cls(space=SearchSpace.from_dict(data["space"]),
                   records=tuple(data["records"]),
                   frontier=tuple(data["frontier"]),
                   journal_hits=data.get("journal_hits", 0),
                   evaluated=data.get("evaluated", 0),
                   failed=data.get("failed", 0))


# ----------------------------------------------------------------------
def _candidate_rows(report: ExplorationReport,
                    indices: list[int]) -> list[list[str]]:
    frontier = set(report.frontier)
    rows = []
    for index in indices:
        record = report.records[index]
        config = record["config"]
        metrics = record["metrics"]
        rows.append([
            "*" if index in frontier else "",
            str(index),
            record["design"],
            str(config["seed"]),
            f"{metrics['accuracy'] * 100:.2f}",
            f"{metrics['accuracy_loss'] * 100:.2f}",
            f"{metrics['energy_nj']:.1f}",
            f"{metrics['energy_per_mac_fj']:.1f}",
            f"{metrics['area_um2']:.0f}",
            f"{metrics['latency_us']:.1f}",
        ])
    return rows


def format_exploration_report(report: ExplorationReport) -> str:
    """Human-readable summary of one exploration run."""
    space = report.space
    sections = []
    header = [
        ["search space", space.name],
        ["application", space.app],
        ["strategy", space.strategy],
        ["objectives", ", ".join(space.objectives)],
        ["candidates", str(len(report.records))],
        ["journal hits / evaluated",
         f"{report.journal_hits} / {report.evaluated}"],
        ["frontier size", str(len(report.frontier))],
    ]
    if report.failed:
        header.append(["quarantined", str(report.failed)])
    sections.append(format_table(["Field", "Value"], header,
                                 title=f"Exploration - {space.name}"))

    columns = ["", "#", "Design", "Seed", "Accuracy (%)", "Loss (%)",
               "Energy (nJ)", "E/MAC (fJ)", "Area (um2)", "Latency (us)"]
    sections.append(format_table(
        columns, _candidate_rows(report, list(range(len(report.records)))),
        title="Candidates (* = Pareto-optimal)"))
    sections.append(format_table(
        columns, _candidate_rows(report, list(report.frontier)),
        title="Pareto frontier"))

    best_rows = []
    for objective in space.objectives:
        best = report.best(objective)
        value = best["metrics"][objective]
        shown = f"{value * 100:.2f}%" if objective.startswith("accuracy") \
            else f"{value:.2f}"
        best_rows.append([objective, best["design"],
                          str(best["config"]["seed"]), shown])
    sections.append(format_table(
        ["Objective", "Best design", "Seed", "Value"], best_rows,
        title="Per-objective optima"))
    return "\n\n".join(sections)
