"""Resumable, order-independent exploration journals.

A journal is a directory::

    <journal>/
      space.json              # the SearchSpace + its digest (written once)
      records/<digest>.json   # one file per evaluated candidate
      report.json             # the final ExplorationReport (overwritten)

Records are keyed by the candidate's *config digest* and contain nothing
order- or timing-dependent, so the journal a parallel exploration leaves
behind is byte-identical to a serial one (same set of files, same
contents) — the property the tier-1 tests pin down.  Resuming is just
"skip every candidate whose record file already exists", which also
means a finished exploration re-runs with 100% journal hits.

All writes are atomic (temp + rename) via the same helper the pipeline
stage cache uses, so concurrent explorers sharing a journal directory
cannot corrupt it.
"""

from __future__ import annotations

import json
import os
import sys

from repro import obs
from repro.explore.space import SearchSpace, SearchSpaceError
from repro.utils.serialization import atomic_write_json

__all__ = ["JournalError", "ExplorationJournal", "load_space",
           "list_journals", "RECORD_FORMAT", "FAILED_STATUS"]

_JOURNAL_FORMAT = 1

#: Candidate-record schema version; bump when the metric axes change so
#: resumes re-evaluate instead of surfacing stale records.
RECORD_FORMAT = 1

#: ``record["status"]`` of a quarantined candidate: the executor
#: exhausted its retries and journaled a typed failure record instead
#: of metrics.  Resumed runs skip these; reports count them separately.
FAILED_STATUS = "failed"


class JournalError(RuntimeError):
    """A journal directory cannot be used (foreign space or bad files)."""


class ExplorationJournal:
    """Per-candidate record store for one :class:`SearchSpace`."""

    def __init__(self, root: str, space: SearchSpace) -> None:
        self.root = root
        self.space = space
        self.records_dir = os.path.join(root, "records")

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, root: str, space: SearchSpace) -> "ExplorationJournal":
        """Create (or re-open) the journal of *space* at *root*.

        Re-opening with a different search space is an error — a journal
        belongs to exactly one space; pick a new directory (or delete the
        old one) to explore something else.
        """
        space_path = os.path.join(root, "space.json")
        if os.path.exists(space_path):
            try:
                with open(space_path) as handle:
                    header = json.load(handle)
            except (OSError, json.JSONDecodeError) as error:
                raise JournalError(
                    f"unreadable journal header {space_path}: {error}")
            if header.get("space_digest") != space.digest():
                raise JournalError(
                    f"journal {root} belongs to a different search space "
                    f"(digest {header.get('space_digest', '?')[:12]} != "
                    f"{space.digest()[:12]}); use a fresh --journal "
                    f"directory")
        else:
            os.makedirs(root, exist_ok=True)
            atomic_write_json(space_path, {
                "format": _JOURNAL_FORMAT,
                "space": space.to_dict(),
                "space_digest": space.digest(),
            })
        journal = cls(root, space)
        os.makedirs(journal.records_dir, exist_ok=True)
        return journal

    # ------------------------------------------------------------------
    def _record_path(self, digest: str) -> str:
        return os.path.join(self.records_dir, f"{digest}.json")

    def has(self, digest: str) -> bool:
        return os.path.exists(self._record_path(digest))

    def load_record(self, digest: str) -> dict | None:
        """The stored record of candidate *digest*, or ``None``.

        A record from an older :data:`RECORD_FORMAT` is a miss — the
        candidate re-evaluates rather than resuming with stale axes.
        A *corrupt or truncated* record file (crashed writer, torn
        disk) is also a miss, but a logged one: the candidate silently
        re-evaluates and the rewrite heals the journal, instead of one
        bad file killing the whole resume.
        """
        path = self._record_path(digest)
        try:
            with open(path) as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
            print(f"warning: skipping corrupt journal record {path} "
                  f"({type(error).__name__}: {error}); re-evaluating",
                  file=sys.stderr)
            if obs.enabled():
                obs.registry().counter("explore.corrupt_records").inc()
            return None
        if not isinstance(record, dict) \
                or record.get("config_digest") != digest \
                or record.get("format") != RECORD_FORMAT:
            return None
        return record

    def write_record(self, record: dict) -> str:
        """Persist one candidate record (atomic; keyed by config digest)."""
        return atomic_write_json(
            self._record_path(record["config_digest"]), record)

    def record_digests(self) -> set[str]:
        try:
            names = os.listdir(self.records_dir)
        except OSError:
            return set()
        return {name[:-len(".json")] for name in names
                if name.endswith(".json")}

    # ------------------------------------------------------------------
    def write_report(self, report_dict: dict) -> str:
        return atomic_write_json(
            os.path.join(self.root, "report.json"), report_dict)

    def load_report(self) -> dict | None:
        try:
            with open(os.path.join(self.root, "report.json")) as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None


def load_space(journal_root: str) -> SearchSpace:
    """The :class:`SearchSpace` a journal directory was opened for."""
    space_path = os.path.join(journal_root, "space.json")
    try:
        with open(space_path) as handle:
            header = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise JournalError(
            f"not an exploration journal ({space_path}: {error})")
    try:
        return SearchSpace.from_dict(header["space"])
    except (KeyError, SearchSpaceError) as error:
        raise JournalError(f"corrupt journal header {space_path}: {error}")


def list_journals(explore_dir: str) -> list[dict]:
    """Summaries of the journals under *explore_dir*, sorted by name.

    Each summary has the journal path, space name/app/strategy, how many
    records exist and whether a report has been reduced yet.
    """
    summaries = []
    try:
        names = sorted(os.listdir(explore_dir))
    except OSError:
        return []
    for name in names:
        root = os.path.join(explore_dir, name)
        space_path = os.path.join(root, "space.json")
        if not os.path.isfile(space_path):
            continue
        try:
            with open(space_path) as handle:
                header = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        space = header.get("space", {})
        try:
            records = len([n for n in os.listdir(
                os.path.join(root, "records")) if n.endswith(".json")])
        except OSError:
            records = 0
        summaries.append({
            "path": root,
            "name": space.get("name", name),
            "app": space.get("app", "?"),
            "strategy": space.get("strategy", "?"),
            "records": records,
            "has_report": os.path.isfile(os.path.join(root, "report.json")),
        })
    return summaries
