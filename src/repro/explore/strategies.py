"""Exploration strategies: grid, random sampling, sensitivity-guided.

``grid`` and ``random`` are pure *enumeration* strategies — they emit a
candidate list up front and the executor evaluates it (in parallel if
asked).  ``sensitivity`` is a *search*: it generalises the paper's
Algorithm 2 from "escalate the alphabet count uniformly" to "degrade
layers one at a time, least output-sensitive first", using
:func:`repro.analysis.sensitivity.layer_sensitivity` on the trained
network to decide the degradation order and the quality bound
``K >= J * quality`` to decide when to stop.  Its steps are inherently
sequential, but each step is an ordinary journaled candidate, so resumes
replay instantly.

:func:`run_exploration` is the single entry point the CLI and tests use:
strategy -> candidate records -> Pareto reduction -> journaled report.
"""

from __future__ import annotations

import os

import numpy as np

from repro.analysis.sensitivity import layer_sensitivity
from repro.asm.alphabet import standard_set
from repro.explore.executor import DEFAULT_MAX_RETRIES, run_candidates
from repro.explore.journal import FAILED_STATUS, ExplorationJournal
from repro.explore.pareto import pareto_frontier, resolve_objectives
from repro.explore.report import ExplorationReport
from repro.explore.space import SearchSpace
from repro.pipeline.config import PipelineConfig
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.stages import PipelineContext

__all__ = ["grid_candidates", "random_candidates", "sensitivity_order",
           "run_exploration"]


def grid_candidates(space: SearchSpace,
                    cache_dir: str | None = None
                    ) -> tuple[PipelineConfig, ...]:
    """The exhaustive (deduplicated) grid — see :meth:`SearchSpace.grid`."""
    return space.grid(cache_dir)


def random_candidates(space: SearchSpace,
                      cache_dir: str | None = None
                      ) -> tuple[PipelineConfig, ...]:
    """``space.samples`` grid points, drawn without replacement.

    Seeded by ``space.strategy_seed`` and re-ordered ascending, so the
    sample — and therefore the journal — is deterministic.
    """
    grid = space.grid(cache_dir)
    if space.samples >= len(grid):
        return grid
    rng = np.random.default_rng(space.strategy_seed)
    chosen = sorted(rng.choice(len(grid), size=space.samples,
                               replace=False).tolist())
    return tuple(grid[index] for index in chosen)


# ----------------------------------------------------------------------
# sensitivity-guided greedy per-layer search
# ----------------------------------------------------------------------
def sensitivity_order(space: SearchSpace, base: PipelineConfig,
                      resume: bool = True) -> list[int]:
    """Layer indices ordered least-sensitive-first.

    Trains (or resumes) the base network, then approximates each
    parameterised layer alone with the most aggressive configured
    alphabet set and ranks layers by the resulting accuracy drop — the
    measured version of the paper's "initial layers tolerate more error"
    claim that §VI.E borrows from AxNN.
    """
    ctx = PipelineContext(base)
    Pipeline(base).run(stages=("train",), resume=resume, context=ctx)
    ctx.model.load_state(ctx.train_state)
    _, x_test = ctx.arrays()
    probe_set = standard_set(min(space.sensitivity_counts))
    drops = layer_sensitivity(ctx.model, x_test, ctx.dataset.y_test,
                              ctx.bits, probe_set, backend=base.backend,
                              eval_batch_size=base.eval_batch_size)
    return sorted(range(len(drops)),
                  key=lambda i: (drops[i].drop, i))


def _plan_token(n_layers: int, degraded: list[int], count: int) -> str:
    counts = [0] * n_layers
    for index in degraded:
        counts[index] = count
    return "mixed:" + "-".join(str(c) for c in counts)


def _sensitivity_search(space: SearchSpace, cache_dir: str | None,
                        journal: ExplorationJournal | None, jobs: int,
                        resume: bool, verbose: bool,
                        max_retries: int = DEFAULT_MAX_RETRIES,
                        timeout_s: float | None = None,
                        ) -> tuple[list[dict], dict]:
    """Greedy search; returns (records, stats) like ``run_candidates``."""
    bits, budget = space.bits[0], space.budgets[0]
    seed, quality = space.seeds[0], space.qualities[0]
    mode = space.constraint_modes[0]
    base = space.candidate("conventional", bits, budget, seed, quality,
                           mode, cache_dir)
    records, stats = run_candidates([base], journal=journal, jobs=jobs,
                                    resume=resume, verbose=verbose,
                                    max_retries=max_retries,
                                    timeout_s=timeout_s)
    if records[0].get("status") == FAILED_STATUS:
        raise RuntimeError(
            "sensitivity search cannot start: the conventional baseline "
            f"candidate was quarantined ({records[0]['error_type']}: "
            f"{records[0]['error']})")
    baseline = records[0]["metrics"]["accuracy"]           # Algorithm 2's J
    bound = baseline * quality
    order = sensitivity_order(space, base, resume=resume)
    if verbose:
        print(f"[sensitivity] degradation order (least sensitive first): "
              f"{order}; quality bound {bound * 100:.2f}%")

    def accumulate(configs: list[PipelineConfig]) -> list[dict]:
        new_records, new_stats = run_candidates(
            configs, journal=journal, jobs=jobs, resume=resume,
            verbose=verbose, max_retries=max_retries, timeout_s=timeout_s)
        for key in ("candidates", "journal_hits", "evaluated", "failed",
                    "retries", "elapsed_s"):
            stats[key] += new_stats[key]
        records.extend(new_records)
        return new_records

    budget_left = (space.max_candidates - 1
                   if space.max_candidates is not None else None)
    for count in space.sensitivity_counts:
        for depth in range(1, len(order) + 1):
            if budget_left is not None and budget_left <= 0:
                return records, stats
            token = _plan_token(len(order), order[:depth], count)
            config = space.candidate(token, bits, budget, seed, quality,
                                     mode, cache_dir)
            (record,) = accumulate([config])
            if budget_left is not None:
                budget_left -= 1
            if record.get("status") == FAILED_STATUS:
                # an unevaluable plan says nothing about deeper ones;
                # treat it like a quality miss and move to the next count
                break
            if record["metrics"]["accuracy"] < bound:
                # this layer was one too many; deeper plans with the same
                # count only degrade further, so move to the next count
                break
    return records, stats


# ----------------------------------------------------------------------
def run_exploration(space: SearchSpace, journal_dir: str,
                    cache_dir: str | None = None, jobs: int = 1,
                    resume: bool = True, verbose: bool = False,
                    max_retries: int = DEFAULT_MAX_RETRIES,
                    timeout_s: float | None = None) -> ExplorationReport:
    """Explore *space*, journaling under *journal_dir*; returns the report.

    The pipeline stage cache defaults to ``<journal_dir>/cache`` so
    parallel workers (and later resumes) share every stage they agree
    on.  ``resume=False`` ignores both the journal and the stage cache.

    Quarantined candidates (see :func:`~repro.explore.executor
    .run_candidates`) stay in the journal as typed failure records but
    are excluded from the report's record list and frontier; the report
    counts them in ``failed``.
    """
    journal = ExplorationJournal.open(journal_dir, space)
    if cache_dir is None:
        cache_dir = os.path.join(journal_dir, "cache")
    if space.strategy == "grid":
        configs = grid_candidates(space, cache_dir)
        records, stats = run_candidates(configs, journal=journal, jobs=jobs,
                                        resume=resume, verbose=verbose,
                                        max_retries=max_retries,
                                        timeout_s=timeout_s)
    elif space.strategy == "random":
        configs = random_candidates(space, cache_dir)
        records, stats = run_candidates(configs, journal=journal, jobs=jobs,
                                        resume=resume, verbose=verbose,
                                        max_retries=max_retries,
                                        timeout_s=timeout_s)
    else:
        records, stats = _sensitivity_search(space, cache_dir, journal,
                                             jobs, resume, verbose,
                                             max_retries=max_retries,
                                             timeout_s=timeout_s)
    ok_records = [r for r in records if r.get("status") != FAILED_STATUS]
    failed = len(records) - len(ok_records)
    objectives = resolve_objectives(space.objectives)
    frontier = pareto_frontier([r["metrics"] for r in ok_records],
                               objectives)
    report = ExplorationReport(
        space=space, records=tuple(ok_records), frontier=frontier,
        journal_hits=stats["journal_hits"], evaluated=stats["evaluated"],
        failed=failed, cache_dir=cache_dir)
    journal.write_report(report.to_dict())
    return report
