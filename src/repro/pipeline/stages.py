"""Named pipeline stages and their typed results.

Each stage is a function ``(PipelineContext) -> StageResult`` operating on
the shared context (dataset, model, stashed weight states).  Stages are
individually runnable and cacheable: results are plain frozen dataclasses
reconstructible from their JSON form (:func:`result_from_payload`), and
weight states round-trip through ``.npz`` files bit-exactly — a resumed
pipeline produces the same numbers as a cold one.

The stage bodies reproduce the exact operation sequences of the legacy
``repro.experiments`` drivers (same trainer construction, same projector,
same quantisation calls), which is what makes the re-expressed drivers'
tables bit-identical to their pre-pipeline output.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.asm.alphabet import AlphabetSet, standard_set
from repro.datasets.registry import BENCHMARKS, build_model, load_dataset, \
    training_arrays
from repro.hardware.engine import ProcessingEngine
from repro.nn.optim import SGD
from repro.nn.quantized import QuantizationSpec, QuantizedNetwork
from repro.nn.trainer import Trainer
from repro.pipeline.config import PipelineConfig, is_plan_design, \
    parse_design
from repro.training.constrained import ConstraintProjector, constrained_trainer
from repro.training.methodology import DesignMethodology
from repro.training.mixed import paper_mixed_plan

__all__ = [
    "PipelineContext", "StageError",
    "TrainResult", "QuantizeResult", "DesignOutcome", "ConstrainResult",
    "EvaluationRow", "EvaluateResult", "FaultRow", "FaultsResult",
    "EnergyDesignRow", "EnergyResult",
    "ExportResult", "ServeCheckResult",
    "STAGE_FUNCTIONS", "result_from_payload",
    "save_state", "load_state",
]


class StageError(RuntimeError):
    """A stage cannot run (missing prerequisite state or bad design)."""


# ----------------------------------------------------------------------
# typed stage results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrainResult:
    """Unconstrained training to saturation (Algorithm 2 step 1)."""

    app: str
    bits: int
    budget: str
    seed: int
    epochs: int
    float_accuracy: float


@dataclass(frozen=True)
class QuantizeResult:
    """Baseline accuracy J through the quantised conventional engine."""

    bits: int
    baseline_accuracy: float


@dataclass(frozen=True)
class DesignOutcome:
    """One design's constrained retraining record."""

    design: str
    epochs: int
    chosen_alphabets: int | None = None      # ladder designs only
    ladder_accuracies: tuple[float, ...] = ()


@dataclass(frozen=True)
class ConstrainResult:
    """Constrained retraining of every non-conventional design."""

    outcomes: tuple[DesignOutcome, ...]

    def outcome_for(self, design: str) -> DesignOutcome:
        for outcome in self.outcomes:
            if outcome.design == design:
                return outcome
        raise KeyError(f"no constrain outcome for design {design!r}")


@dataclass(frozen=True)
class EvaluationRow:
    """Bit-accurate engine accuracy of one deployed design."""

    design: str
    label: str
    accuracy: float
    loss: float | None          # vs the conventional baseline, if known


@dataclass(frozen=True)
class EvaluateResult:
    rows: tuple[EvaluationRow, ...]

    def row_for(self, design: str) -> EvaluationRow:
        for row in self.rows:
            if row.design == design:
                return row
        raise KeyError(f"no evaluation row for design {design!r}")


@dataclass(frozen=True)
class FaultRow:
    """Accuracy of one design under one fault rate."""

    design: str
    rate: float
    accuracy: float
    #: clean accuracy minus faulted accuracy (positive = worse).
    degradation: float
    #: fault sites hit while evaluating the test set.
    injected: int


@dataclass(frozen=True)
class FaultsResult:
    """The ``faults`` stage: a seeded accuracy-vs-fault-rate sweep."""

    kind: str
    seed: int
    rows: tuple[FaultRow, ...]

    def rows_for(self, design: str) -> tuple[FaultRow, ...]:
        return tuple(row for row in self.rows if row.design == design)


@dataclass(frozen=True)
class EnergyDesignRow:
    """CSHM-engine cost of one inference under one design."""

    design: str
    label: str
    energy_nj: float
    cycles: int
    normalized: float           # vs the conventional design
    energy_per_mac_fj: float = 0.0
    area_um2: float = 0.0       # CSHM cluster area (iso-speed sized)
    latency_us: float = 0.0     # one inference pass at the design clock
    # cycle-accurate toggle simulation over real test activations
    # (``config.sim_samples`` > 0; dense layers only — zeros otherwise)
    sim_energy_nj: float = 0.0  # mean per-inference toggle energy
    sim_toggles: float = 0.0    # mean bit toggles per inference
    sim_cycles: int = 0         # simulated engine cycles (data-blind)
    sim_macs: int = 0           # MACs covered by the simulated layers


@dataclass(frozen=True)
class EnergyResult:
    rows: tuple[EnergyDesignRow, ...]

    def row_for(self, design: str) -> EnergyDesignRow:
        for row in self.rows:
            if row.design == design:
                return row
        raise KeyError(f"no energy row for design {design!r}")


@dataclass(frozen=True)
class ExportResult:
    """A constrained design exported as a serving artifact bundle."""

    design: str
    path: str
    spec_label: str
    artifact_bytes: int


@dataclass(frozen=True)
class ServeCheckResult:
    """Registry reload + bit-identity verification of the export."""

    design: str
    registry_key: str
    num_params: int
    compiled_accuracy: float
    bit_identical: bool
    energy_nj_per_inference: float | None


# ----------------------------------------------------------------------
# context
# ----------------------------------------------------------------------
class PipelineContext:
    """Mutable runtime state shared by the stages of one pipeline run."""

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config
        self.bench = BENCHMARKS[config.app]
        self.tier = config.tier()
        self.settings = config.train_settings()
        self.bits = config.word_bits()
        self._dataset = None
        self._model = None
        #: restore point after unconstrained training (Algorithm 2 step 2)
        self.train_state: list | None = None
        #: per-design retrained weight states
        self.design_states: dict[str, list] = {}
        #: ladder designs resolve to a concrete set during ``constrain``
        self.chosen_sets: dict[str, AlphabetSet] = {}
        #: completed stage results, keyed by stage name
        self.results: dict[str, object] = {}
        #: lowered networks per design (states are fixed once constrained,
        #: so evaluate/export/serve-check share one QuantizedNetwork)
        self._quantized: dict[str, QuantizedNetwork] = {}

    # ------------------------------------------------------------------
    @property
    def dataset(self):
        if self._dataset is None:
            self._dataset = load_dataset(
                self.config.app, n_train=self.tier.n_train,
                n_test=self.tier.n_test, seed=self.config.seed)
        return self._dataset

    @property
    def model(self):
        if self._model is None:
            self._model = build_model(self.config.app,
                                      seed=self.config.seed + 1)
            # training-kernel backend: bit-identical speed knob, so it
            # stays out of every stage cache key (like backend/sim_backend)
            self._model.set_train_backend(self.config.train_backend)
        return self._model

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return training_arrays(self.dataset, self.bench)

    # ------------------------------------------------------------------
    def design_set(self, design: str) -> AlphabetSet | None:
        """The uniform alphabet set of *design* (``None`` = conventional).

        ``mixed`` has no uniform set (use :meth:`design_plan`); ``ladder``
        resolves to the set chosen during the ``constrain`` stage.
        """
        kind = parse_design(design)
        if kind is None:
            return None
        if is_plan_design(kind):
            raise StageError(
                f"{design!r} has a per-layer plan, not one set")
        if kind == "ladder":
            if design not in self.chosen_sets:
                raise StageError(
                    "ladder design not resolved yet - run 'constrain'")
            return self.chosen_sets[design]
        return standard_set(kind)

    def design_plan(self, design: str) -> list[AlphabetSet | None]:
        """Per-parameterised-layer alphabet plan of *design*."""
        n_layers = len(self.model.trainable_layers)
        kind = parse_design(design)
        if kind == "mixed":
            return list(paper_mixed_plan(self.config.app, self.model))
        if isinstance(kind, tuple):            # custom mixed:C1-C2-... plan
            if len(kind) != n_layers:
                raise StageError(
                    f"design {design!r} gives {len(kind)} layer counts but "
                    f"{self.config.app!r} has {n_layers} parameterised "
                    f"layers")
            return [None if count == 0 else standard_set(count)
                    for count in kind]
        return [self.design_set(design)] * n_layers

    def require_design_state(self, design: str) -> list:
        try:
            return self.design_states[design]
        except KeyError:
            raise StageError(
                f"no retrained weights for design {design!r} - "
                f"run 'constrain' first") from None

    def conventional_quantized(self) -> QuantizedNetwork:
        """The conventional-engine lowering of the trained weights
        (memoized; shared by ``quantize`` and the simulated energy
        traces — weights are folded at construction, so later model
        state changes cannot stale it)."""
        if "conventional" not in self._quantized:
            if self.train_state is None:
                raise StageError(
                    "the conventional deployment needs 'train' to have run")
            model = self.model
            model.load_state(self.train_state)
            self._quantized["conventional"] = QuantizedNetwork.from_float(
                model, QuantizationSpec(self.bits),
                backend=self.config.backend)
        return self._quantized["conventional"]

    def design_quantized(self, design: str) -> QuantizedNetwork:
        """The deployable quantised network of *design* (memoized).

        Runs on the config's kernel ``backend`` — bit-identical across
        backends, so only evaluation speed changes.
        """
        if design in self._quantized:
            return self._quantized[design]
        model = self.model
        model.load_state(self.require_design_state(design))
        bits = self.bits
        mode = self.config.constraint_mode
        backend = self.config.backend
        if is_plan_design(parse_design(design)):
            layer_specs = [
                QuantizationSpec(bits) if aset is None else
                QuantizationSpec.constrained(bits, aset, mode=mode)
                for aset in self.design_plan(design)]
            quantized = QuantizedNetwork.from_float(
                model, QuantizationSpec(bits), layer_specs=layer_specs,
                backend=backend)
        else:
            quantized = QuantizedNetwork.from_float(
                model, QuantizationSpec.constrained(
                    bits, self.design_set(design), mode=mode),
                backend=backend)
        self._quantized[design] = quantized
        return quantized


# ----------------------------------------------------------------------
# stages
# ----------------------------------------------------------------------
def stage_train(ctx: PipelineContext) -> TrainResult:
    """Unconstrained training to saturation; stores the restore point."""
    model = ctx.model
    settings = ctx.settings
    x_train, x_test = ctx.arrays()
    trainer = Trainer(model, SGD(model, settings.learning_rate),
                      batch_size=settings.batch_size,
                      patience=settings.patience)
    history = trainer.fit(x_train, ctx.dataset.y_train_onehot, x_test,
                          ctx.dataset.y_test,
                          max_epochs=ctx.tier.max_epochs)
    ctx.train_state = model.state()
    return TrainResult(
        app=ctx.config.app, bits=ctx.bits, budget=ctx.tier.name,
        seed=ctx.config.seed, epochs=history.epochs_run,
        float_accuracy=model.accuracy(x_test, ctx.dataset.y_test))


def stage_quantize(ctx: PipelineContext) -> QuantizeResult:
    """Baseline accuracy J through the conventional quantised engine."""
    if ctx.train_state is None:
        raise StageError("'quantize' needs 'train' to have run")
    _, x_test = ctx.arrays()
    baseline = ctx.conventional_quantized().accuracy(
        x_test, ctx.dataset.y_test,
        batch_size=ctx.config.eval_batch_size)
    return QuantizeResult(bits=ctx.bits, baseline_accuracy=baseline)


def stage_constrain(ctx: PipelineContext) -> ConstrainResult:
    """Constrained retraining (Algorithm 2 step 3) per design."""
    if ctx.train_state is None:
        raise StageError("'constrain' needs 'train' to have run")
    model = ctx.model
    settings = ctx.settings
    x_train, x_test = ctx.arrays()
    outcomes: list[DesignOutcome] = []
    for design in ctx.config.designs:
        kind = parse_design(design)
        if kind is None:
            continue
        model.load_state(ctx.train_state)
        with obs.span("constrain.design", design=design) as design_span:
            if kind == "ladder":
                outcomes.append(_constrain_ladder(ctx, design))
                design_span.set(epochs=outcomes[-1].epochs)
                continue
            if is_plan_design(kind):
                plan = ctx.design_plan(design)
                projector = ConstraintProjector(
                    model, ctx.bits, layer_plan=plan,
                    mode=ctx.config.constraint_mode,
                    backend=ctx.config.backend)
            else:
                projector = ConstraintProjector(
                    model, ctx.bits, standard_set(kind),
                    mode=ctx.config.constraint_mode,
                    backend=ctx.config.backend)
            optimizer = SGD(model, settings.learning_rate
                            * settings.retrain_lr_scale)
            retrainer = constrained_trainer(
                model, optimizer, projector,
                batch_size=settings.batch_size, patience=settings.patience)
            history = retrainer.fit(x_train, ctx.dataset.y_train_onehot,
                                    x_test, ctx.dataset.y_test,
                                    max_epochs=ctx.tier.retrain_epochs)
            ctx.design_states[design] = model.state()
            design_span.set(epochs=history.epochs_run)
            outcomes.append(DesignOutcome(design=design,
                                          epochs=history.epochs_run))
    return ConstrainResult(outcomes=tuple(outcomes))


def _constrain_ladder(ctx: PipelineContext, design: str) -> DesignOutcome:
    """Algorithm 2's quality ladder for one ``ladder`` design."""
    quantize = ctx.results.get("quantize")
    if quantize is None:
        raise StageError(
            "'ladder' designs need the 'quantize' stage for the baseline "
            "accuracy J")
    settings = ctx.settings
    train = ctx.results.get("train")
    method = DesignMethodology(
        ctx.bits, quality=ctx.config.quality, ladder=ctx.config.ladder,
        base_learning_rate=settings.learning_rate,
        retrain_lr_scale=settings.retrain_lr_scale,
        batch_size=settings.batch_size, patience=settings.patience,
        constraint_mode=ctx.config.constraint_mode, seed=ctx.config.seed,
        backend=ctx.config.backend,
        eval_batch_size=ctx.config.eval_batch_size)
    result = method.escalate(
        ctx.model, ctx.dataset, ctx.train_state,
        quantize.baseline_accuracy,
        float_accuracy=train.float_accuracy if train else None,
        retrain_epochs=ctx.tier.retrain_epochs,
        use_images=ctx.bench.needs_images)
    final = result.final_stage
    ctx.design_states[design] = ctx.model.state()
    ctx.chosen_sets[design] = final.alphabet_set
    return DesignOutcome(
        design=design, epochs=final.epochs,
        chosen_alphabets=final.num_alphabets,
        ladder_accuracies=tuple(stage.accuracy for stage in result.stages))


def stage_evaluate(ctx: PipelineContext) -> EvaluateResult:
    """Bit-accurate ASM-engine accuracy per design."""
    _, x_test = ctx.arrays()
    y_test = ctx.dataset.y_test
    quantize: QuantizeResult | None = ctx.results.get("quantize")
    baseline = quantize.baseline_accuracy if quantize else None
    rows: list[EvaluationRow] = []
    for design in ctx.config.designs:
        kind = parse_design(design)
        if kind is None:
            if baseline is None:
                raise StageError(
                    "evaluating 'conventional' needs the 'quantize' stage")
            rows.append(EvaluationRow(design=design, label="conventional",
                                      accuracy=baseline, loss=0.0))
            continue
        quantized = ctx.design_quantized(design)
        if is_plan_design(kind):
            label = "mixed(" + ",".join(
                "exact" if a is None else str(a)
                for a in ctx.design_plan(design)) + ")"
        else:
            aset = ctx.design_set(design)
            label = f"{len(aset)} {aset}"
            if kind == "ladder":
                label = f"ladder {len(aset)} {aset}"
        accuracy = quantized.accuracy(
            x_test, y_test, batch_size=ctx.config.eval_batch_size)
        rows.append(EvaluationRow(
            design=design, label=label, accuracy=accuracy,
            loss=None if baseline is None else baseline - accuracy))
    return EvaluateResult(rows=tuple(rows))


def stage_faults(ctx: PipelineContext) -> FaultsResult:
    """Seeded fault-rate sweep over the deployed designs.

    Reuses the same memoized :class:`QuantizedNetwork` per design as
    ``evaluate`` and perturbs it through :mod:`repro.faults` — fault
    decisions hash ``(seed, layer, position, code)``, so the sweep is
    bit-identical across kernel backends and batch sizes (which is why
    neither enters this stage's cache key).
    """
    from repro.faults.inject import faulted_accuracy
    from repro.faults.models import FaultSpec

    rates = ctx.config.fault_rates
    if not rates:
        raise StageError(
            "the 'faults' stage needs fault_rates in the config")
    _, x_test = ctx.arrays()
    y_test = ctx.dataset.y_test
    evaluate: EvaluateResult = ctx.results.get("evaluate")
    if evaluate is None:
        raise StageError("the 'faults' stage needs 'evaluate' to have run")
    rows: list[FaultRow] = []
    for design in ctx.config.designs:
        clean = evaluate.row_for(design).accuracy
        quantized = (ctx.conventional_quantized()
                     if parse_design(design) is None
                     else ctx.design_quantized(design))
        for rate in rates:
            spec = FaultSpec(kind=ctx.config.fault_kind, rate=rate,
                             seed=ctx.config.fault_seed)
            accuracy, injected = faulted_accuracy(
                quantized, spec, x_test, y_test,
                batch_size=ctx.config.eval_batch_size)
            rows.append(FaultRow(
                design=design, rate=rate, accuracy=accuracy,
                degradation=clean - accuracy, injected=injected))
    return FaultsResult(kind=ctx.config.fault_kind,
                        seed=ctx.config.fault_seed, rows=tuple(rows))


def stage_energy(ctx: PipelineContext) -> EnergyResult:
    """CSHM-engine per-inference energy per design.

    Always reports the analytic (architecture-only) model; when
    ``config.sim_samples`` > 0 each design's dense layers are also traced
    through the cycle-accurate toggle simulator on that many real test
    activations (``config.sim_backend`` picks the bit-identical fast or
    reference counting kernel), exposing the data-dependent energy the
    analytic model averages away.
    """
    topology = ctx.model.topology()
    n_layers = len(ctx.model.trainable_layers)
    engine = ProcessingEngine(ctx.bits, sim_backend=ctx.config.sim_backend)
    conventional = engine.run(topology, layer_alphabets=[None] * n_layers)
    rows: list[EnergyDesignRow] = []
    for design in ctx.config.designs:
        if design == "conventional":
            report = conventional
        else:
            report = engine.run(topology,
                                layer_alphabets=ctx.design_plan(design))
        sim = _simulate_design_energy(ctx, engine, design) \
            if ctx.config.sim_samples else {}
        rows.append(EnergyDesignRow(
            design=design, label=report.design_label,
            energy_nj=report.energy_nj, cycles=report.cycles,
            normalized=report.energy_nj / conventional.energy_nj,
            energy_per_mac_fj=report.energy_per_mac_fj,
            area_um2=report.area_um2, latency_us=report.latency_us,
            **sim))
    return EnergyResult(rows=tuple(rows))


def _simulate_design_energy(ctx: PipelineContext, engine: ProcessingEngine,
                            design: str) -> dict:
    """Toggle-level energy of *design* over ``sim_samples`` test inputs."""
    quantized = ctx.conventional_quantized() if design == "conventional" \
        else ctx.design_quantized(design)
    _, x_test = ctx.arrays()
    batch = x_test[:ctx.config.sim_samples]
    n_samples = len(batch)
    if not n_samples:
        return {}
    energy_nj = 0.0
    toggles = 0
    cycles = 0
    macs = 0
    with obs.span("energy.simulate", design=design, samples=n_samples):
        for layer, codes in quantized.dense_layer_inputs(batch):
            aset = AlphabetSet(layer.alphabets) \
                if layer.alphabets is not None else None
            simulator = engine.simulator(aset)
            effective = simulator.remap_weights(layer.w_int)
            for sample in codes:
                trace = simulator.run_layer(effective, sample,
                                            name=layer.name or "dense",
                                            remapped=True)
                energy_nj += trace.energy_nj
                toggles += trace.toggles.total
            cycles += trace.cycles          # data-independent per layer
            macs += trace.macs
    return {
        "sim_energy_nj": energy_nj / n_samples,
        "sim_toggles": toggles / n_samples,
        "sim_cycles": cycles,
        "sim_macs": macs,
    }


def stage_export(ctx: PipelineContext) -> ExportResult:
    """Persist the export design as a serving artifact bundle."""
    design = ctx.config.resolved_export_design()
    quantized = ctx.design_quantized(design)
    # ':' in custom plan tokens is not a portable path character
    path = os.path.join(ctx.config.export_dir,
                        f"{ctx.config.app}-{design.replace(':', '_')}")
    quantized.export(path)
    artifact_bytes = sum(
        os.path.getsize(os.path.join(path, item))
        for item in os.listdir(path))
    return ExportResult(design=design, path=path,
                        spec_label=quantized.deployment_label,
                        artifact_bytes=artifact_bytes)


def stage_serve_check(ctx: PipelineContext) -> ServeCheckResult:
    """Reload the export through the registry; verify bit-identity."""
    from repro.serving.registry import ModelRegistry

    export: ExportResult | None = ctx.results.get("export")
    if export is None:
        raise StageError("'serve-check' needs the 'export' stage")
    registry = ModelRegistry()
    entry = registry.register(
        export.path, name=ctx.config.serve_name or ctx.config.app)
    compiled = entry.model
    quantized = ctx.design_quantized(export.design)
    _, x_test = ctx.arrays()
    reference = quantized.forward(x_test)
    reloaded = compiled.forward(x_test)
    return ServeCheckResult(
        design=export.design, registry_key=entry.key,
        num_params=compiled.num_params,
        compiled_accuracy=compiled.accuracy(
            x_test, ctx.dataset.y_test,
            batch_size=ctx.config.eval_batch_size),
        bit_identical=bool(np.array_equal(reference, reloaded)),
        energy_nj_per_inference=compiled.energy_per_inference_nj())


STAGE_FUNCTIONS = {
    "train": stage_train,
    "quantize": stage_quantize,
    "constrain": stage_constrain,
    "evaluate": stage_evaluate,
    "faults": stage_faults,
    "energy": stage_energy,
    "export": stage_export,
    "serve-check": stage_serve_check,
}


# ----------------------------------------------------------------------
# cache round-trips
# ----------------------------------------------------------------------
def result_from_payload(stage: str, payload: dict):
    """Rebuild a stage result from its :func:`to_jsonable` form."""
    if stage == "train":
        return TrainResult(**payload)
    if stage == "quantize":
        return QuantizeResult(**payload)
    if stage == "constrain":
        return ConstrainResult(outcomes=tuple(
            DesignOutcome(
                design=o["design"], epochs=o["epochs"],
                chosen_alphabets=o.get("chosen_alphabets"),
                ladder_accuracies=tuple(o.get("ladder_accuracies", ())))
            for o in payload["outcomes"]))
    if stage == "evaluate":
        return EvaluateResult(rows=tuple(
            EvaluationRow(**row) for row in payload["rows"]))
    if stage == "faults":
        return FaultsResult(kind=payload["kind"], seed=payload["seed"],
                            rows=tuple(FaultRow(**row)
                                       for row in payload["rows"]))
    if stage == "energy":
        return EnergyResult(rows=tuple(
            EnergyDesignRow(**row) for row in payload["rows"]))
    if stage == "export":
        return ExportResult(**payload)
    if stage == "serve-check":
        return ServeCheckResult(**payload)
    raise ValueError(f"unknown stage {stage!r}")


def save_state(path: str, state: list) -> None:
    """Persist a ``Sequential.state()`` weight snapshot as ``.npz``.

    Atomic (temp file + rename): concurrent pipeline workers may race to
    produce the same cache entry, and since the stages are deterministic
    both writers produce identical bytes — last rename wins, readers
    never see a partial file.
    """
    tmp = f"{path}.{os.getpid()}.tmp.npz"
    arrays = {}
    for index, layer_state in enumerate(state):
        for key, value in layer_state.items():
            arrays[f"{index}:{key}"] = value
    np.savez(tmp, **arrays)
    os.replace(tmp, path)


def load_state(path: str, model) -> list:
    """Load a snapshot written by :func:`save_state` (bit-exact)."""
    template = model.state()
    with np.load(path) as data:
        return [{key: data[f"{index}:{key}"]
                 for key in layer_state}
                for index, layer_state in enumerate(template)]
