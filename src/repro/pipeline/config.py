"""Declarative pipeline configuration.

A :class:`PipelineConfig` is the single description of one end-to-end run
of the paper's flow — dataset/benchmark, word width, ASM *designs* to
deploy, training budget tier, seed, and which named stages to execute.
It is frozen, validated on construction, loadable from a dict / JSON /
TOML file and round-trippable (``from_dict(cfg.to_dict()) == cfg``), so
new scenarios are a config file, not a new driver module.

Design tokens
-------------
``"conventional"``
    Exact multiplier, no constraining (the baseline row of Tables II/III).
``"asm1" / "asm2" / "asm4" / "asm8"``
    Uniform N-alphabet MAN: constrained retraining under the standard
    alphabet set, deployed on the ASM engine.
``"mixed"``
    The paper's §VI.E per-layer plan ({1} early, {1,3}/{1,3,5,7} in the
    concluding layers) — available for the benchmarks Fig. 11 covers.
``"mixed:C1-C2-..."``
    A *custom* per-layer plan: one alphabet count per parameterised layer
    (``0`` keeps that layer on the exact conventional multiplier, any
    other count must have a standard set).  ``mixed:1-0`` deploys a MAN
    in the first layer and leaves the second exact.  The count list
    length is checked against the model at stage time; this is the
    vocabulary the design-space explorer's sensitivity-guided search
    emits.
``"ladder"``
    Algorithm 2's quality ladder: escalate through ``ladder`` counts until
    accuracy ``K >= J * quality``.

This module is also the canonical home of the training *budget tiers*
(``quick`` / ``full``) and the per-benchmark optimiser settings; the
legacy :mod:`repro.experiments.config` re-exports them.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, fields, replace

from repro.datasets.registry import BENCHMARKS
from repro.kernels.evaluate import DEFAULT_EVAL_BATCH
from repro.kernels.registry import BACKEND_NAMES

__all__ = [
    "Budget", "QUICK", "FULL", "budget",
    "TrainSettings", "TRAIN_SETTINGS",
    "PipelineConfigError", "PipelineConfig",
    "STAGE_NAMES", "DESIGN_COUNTS", "parse_design", "is_plan_design",
]


@dataclass(frozen=True)
class Budget:
    """Sample counts and epoch limits for one tier."""

    name: str
    n_train: int
    n_test: int
    max_epochs: int
    retrain_epochs: int


QUICK = Budget("quick", n_train=700, n_test=300, max_epochs=8,
               retrain_epochs=5)
FULL = Budget("full", n_train=4000, n_test=1500, max_epochs=40,
              retrain_epochs=20)

_TIERS = {"quick": QUICK, "full": FULL}


def budget(full: bool) -> Budget:
    return FULL if full else QUICK


@dataclass(frozen=True)
class TrainSettings:
    """Per-benchmark optimiser settings."""

    learning_rate: float
    retrain_lr_scale: float = 0.25
    batch_size: int = 32
    patience: int = 3


TRAIN_SETTINGS: dict[str, TrainSettings] = {
    "mnist_mlp": TrainSettings(learning_rate=0.3),
    "mnist_cnn": TrainSettings(learning_rate=0.1, batch_size=16),
    "face": TrainSettings(learning_rate=0.3),
    "svhn": TrainSettings(learning_rate=0.05),
    "tich": TrainSettings(learning_rate=0.05),
}


#: Canonical stage order; ``PipelineConfig.stages`` is any subset.
STAGE_NAMES = ("train", "quantize", "constrain", "evaluate", "faults",
               "energy", "export", "serve-check")

#: Alphabet counts with a standard set (see ``repro.asm.alphabet``).
DESIGN_COUNTS = (1, 2, 4, 8)

_ASM_RE = re.compile(r"^asm([0-9]+)$")
_PLAN_RE = re.compile(r"^mixed:([0-9]+(?:-[0-9]+)*)$")


class PipelineConfigError(ValueError):
    """Invalid pipeline configuration (bad value or unknown key)."""


def parse_design(design: str) -> int | str | tuple[int, ...] | None:
    """Classify a design token.

    Returns ``None`` for ``"conventional"``, the alphabet count for
    ``"asmN"``, the token itself for ``"mixed"`` / ``"ladder"``, or the
    per-layer count tuple for a custom ``"mixed:C1-C2-..."`` plan
    (``0`` entries mean "leave this layer conventional").
    """
    if design == "conventional":
        return None
    if design in ("mixed", "ladder"):
        return design
    match = _ASM_RE.match(design)
    if match and int(match.group(1)) in DESIGN_COUNTS:
        return int(match.group(1))
    match = _PLAN_RE.match(design)
    if match:
        counts = tuple(int(c) for c in match.group(1).split("-"))
        for count in counts:
            if count != 0 and count not in DESIGN_COUNTS:
                raise PipelineConfigError(
                    f"design {design!r}: layer count {count} has no "
                    f"standard alphabet set (choose from {DESIGN_COUNTS}, "
                    f"or 0 for a conventional layer)")
        if not any(counts):
            raise PipelineConfigError(
                f"design {design!r} constrains no layer; use "
                f"'conventional' instead")
        return counts
    raise PipelineConfigError(
        f"unknown design {design!r}; expected 'conventional', "
        f"'asmN' (N in {DESIGN_COUNTS}), 'mixed', 'mixed:C1-C2-...' "
        f"or 'ladder'")


def is_plan_design(kind) -> bool:
    """True when :func:`parse_design` returned a per-layer plan kind."""
    return kind == "mixed" or isinstance(kind, tuple)


@dataclass(frozen=True)
class PipelineConfig:
    """Everything one pipeline run needs, declaratively."""

    app: str
    bits: int | None = None            # None -> the benchmark's Table IV width
    designs: tuple[str, ...] = ("conventional", "asm4", "asm2", "asm1")
    stages: tuple[str, ...] = ("train", "quantize", "constrain",
                               "evaluate", "energy")
    budget: str | Budget = "quick"
    seed: int = 0
    constraint_mode: str = "greedy"
    quality: float = 0.99              # Algorithm 2's Q (ladder designs)
    ladder: tuple[int, ...] = (1, 2, 4, 8)
    export_design: str | None = None   # default: first non-conventional
    export_dir: str = os.path.join("results", "artifacts")
    serve_name: str | None = None      # registry name; default: app
    cache_dir: str | None = None       # stage cache root; None -> no cache
    #: compute-kernel backend for every evaluate-style forward pass
    #: (``repro.kernels``: "reference" | "fast" | "auto").  All backends
    #: are bit-identical, so this is a speed knob, not a results knob —
    #: which is also why it is excluded from the stage cache keys.
    backend: str = "auto"
    #: evaluation batch size (memory knob; results are independent of it)
    eval_batch_size: int = DEFAULT_EVAL_BATCH
    #: simulation-kernel backend for the cycle-accurate toggle simulator
    #: (same registry and the same bit-identity guarantee as ``backend``,
    #: so it too is excluded from the stage cache keys)
    sim_backend: str = "auto"
    #: training-kernel backend for every float training loop (train /
    #: constrain stages and explore candidates).  Same registry and the
    #: same bit-identity guarantee as ``backend``/``sim_backend``, so it
    #: too is excluded from the stage cache keys.
    train_backend: str = "auto"
    #: test samples the energy stage traces through the cycle-accurate
    #: simulator for data-dependent toggle energy (0 = analytic model
    #: only).  Unlike the backends this **changes the energy result**,
    #: so it is part of the energy stage's cache key.
    sim_samples: int = 0
    #: fault rates the ``faults`` stage sweeps (empty = stage refuses to
    #: run).  Rates, kind and seed all change the resiliency result, so
    #: all three are part of the faults stage's cache key.
    fault_rates: tuple[float, ...] = ()
    #: fault model swept by the ``faults`` stage (``repro.faults``).
    fault_kind: str = "activation_upset"
    #: seed of the deterministic fault-site hash.
    fault_seed: int = 0

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        for name in ("designs", "stages", "ladder", "fault_rates"):
            value = getattr(self, name)
            if isinstance(value, list):
                object.__setattr__(self, name, tuple(value))
        if isinstance(self.budget, dict):
            object.__setattr__(self, "budget", _budget_from_dict(self.budget))
        self._validate()

    def _validate(self) -> None:
        if self.app not in BENCHMARKS:
            raise PipelineConfigError(
                f"unknown app {self.app!r}; choose from {sorted(BENCHMARKS)}")
        if self.bits is not None and self.bits < 2:
            raise PipelineConfigError(f"bits must be >= 2, got {self.bits}")
        if not self.designs:
            raise PipelineConfigError("designs must not be empty")
        if len(set(self.designs)) != len(self.designs):
            raise PipelineConfigError(f"duplicate designs in {self.designs}")
        for design in self.designs:
            parse_design(design)
        if "mixed" in self.designs:
            from repro.training.mixed import MIXED_PLAN_APPS
            if self.app not in MIXED_PLAN_APPS:
                raise PipelineConfigError(
                    f"app {self.app!r} has no §VI.E 'mixed' plan; "
                    f"choose from {MIXED_PLAN_APPS}")
        if not self.stages:
            raise PipelineConfigError("stages must not be empty")
        for stage in self.stages:
            if stage not in STAGE_NAMES:
                raise PipelineConfigError(
                    f"unknown stage {stage!r}; choose from {STAGE_NAMES}")
        if len(set(self.stages)) != len(self.stages):
            raise PipelineConfigError(f"duplicate stages in {self.stages}")
        if isinstance(self.budget, str):
            if self.budget not in _TIERS:
                raise PipelineConfigError(
                    f"unknown budget tier {self.budget!r}; choose from "
                    f"{sorted(_TIERS)} or give an inline budget table")
        elif not isinstance(self.budget, Budget):
            raise PipelineConfigError(
                f"budget must be a tier name or a budget table, "
                f"got {type(self.budget).__name__}")
        if self.constraint_mode not in ("greedy", "nearest"):
            raise PipelineConfigError(
                f"constraint_mode must be 'greedy' or 'nearest', "
                f"got {self.constraint_mode!r}")
        if not 0 < self.quality <= 1:
            raise PipelineConfigError(
                f"quality must be in (0, 1], got {self.quality}")
        if not self.ladder:
            raise PipelineConfigError("ladder must not be empty")
        for count in self.ladder:
            if count not in DESIGN_COUNTS:
                raise PipelineConfigError(
                    f"ladder count {count} has no standard alphabet set "
                    f"(choose from {DESIGN_COUNTS})")
        if self.backend not in BACKEND_NAMES:
            raise PipelineConfigError(
                f"unknown backend {self.backend!r}; choose from "
                f"{BACKEND_NAMES}")
        if self.sim_backend not in BACKEND_NAMES:
            raise PipelineConfigError(
                f"unknown sim_backend {self.sim_backend!r}; choose from "
                f"{BACKEND_NAMES}")
        if self.train_backend not in BACKEND_NAMES:
            raise PipelineConfigError(
                f"unknown train_backend {self.train_backend!r}; choose "
                f"from {BACKEND_NAMES}")
        if self.eval_batch_size < 1:
            raise PipelineConfigError(
                f"eval_batch_size must be >= 1, got {self.eval_batch_size}")
        if self.sim_samples < 0:
            raise PipelineConfigError(
                f"sim_samples must be >= 0, got {self.sim_samples}")
        from repro.faults.models import FAULT_KINDS
        if self.fault_kind not in FAULT_KINDS:
            raise PipelineConfigError(
                f"unknown fault_kind {self.fault_kind!r}; choose from "
                f"{FAULT_KINDS}")
        for rate in self.fault_rates:
            if not 0.0 <= rate <= 1.0:
                raise PipelineConfigError(
                    f"fault rates must be in [0, 1], got {rate}")
        if len(set(self.fault_rates)) != len(self.fault_rates):
            raise PipelineConfigError(
                f"duplicate fault rates in {self.fault_rates}")
        if "faults" in self.stages and not self.fault_rates:
            raise PipelineConfigError(
                "the 'faults' stage needs a non-empty fault_rates sweep")
        if self.export_design is not None:
            if self.export_design not in self.designs:
                raise PipelineConfigError(
                    f"export_design {self.export_design!r} is not one of "
                    f"the configured designs {self.designs}")
            if self.export_design == "conventional":
                raise PipelineConfigError(
                    "export_design must name an ASM design, not "
                    "'conventional'")
        if "export" in self.stages or "serve-check" in self.stages:
            # fail at config time, not after a full training run
            self.resolved_export_design()

    # ------------------------------------------------------------------
    # resolved views
    # ------------------------------------------------------------------
    def word_bits(self) -> int:
        """The word width: explicit ``bits`` or the Table IV default."""
        return self.bits if self.bits is not None else \
            BENCHMARKS[self.app].bits

    def tier(self) -> Budget:
        """The resolved training budget."""
        return _TIERS[self.budget] if isinstance(self.budget, str) \
            else self.budget

    def train_settings(self) -> TrainSettings:
        return TRAIN_SETTINGS[self.app]

    def resolved_export_design(self) -> str:
        """The design :mod:`~repro.pipeline.stages` exports."""
        if self.export_design is not None:
            return self.export_design
        for design in self.designs:
            if design != "conventional":
                return design
        raise PipelineConfigError(
            "no exportable design: every configured design is "
            "'conventional'")

    # ------------------------------------------------------------------
    # round-trips
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "PipelineConfig":
        """Build a config from a plain mapping; unknown keys are errors."""
        if not isinstance(data, dict):
            raise PipelineConfigError(
                f"config must be a mapping, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise PipelineConfigError(
                f"unknown config key(s): {', '.join(unknown)}; "
                f"known keys: {', '.join(sorted(known))}")
        return cls(**data)

    def to_dict(self) -> dict:
        """Plain-builtin mapping; ``from_dict`` inverts it exactly."""
        data: dict = {
            "app": self.app,
            "bits": self.bits,
            "designs": list(self.designs),
            "stages": list(self.stages),
            "budget": self.budget if isinstance(self.budget, str) else {
                "name": self.budget.name,
                "n_train": self.budget.n_train,
                "n_test": self.budget.n_test,
                "max_epochs": self.budget.max_epochs,
                "retrain_epochs": self.budget.retrain_epochs,
            },
            "seed": self.seed,
            "constraint_mode": self.constraint_mode,
            "quality": self.quality,
            "ladder": list(self.ladder),
            "export_design": self.export_design,
            "export_dir": self.export_dir,
            "serve_name": self.serve_name,
            "cache_dir": self.cache_dir,
            "backend": self.backend,
            "eval_batch_size": self.eval_batch_size,
            "sim_backend": self.sim_backend,
            "train_backend": self.train_backend,
            "sim_samples": self.sim_samples,
            "fault_rates": list(self.fault_rates),
            "fault_kind": self.fault_kind,
            "fault_seed": self.fault_seed,
        }
        return data

    @classmethod
    def from_json(cls, text: str) -> "PipelineConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise PipelineConfigError(f"config is not valid JSON: {error}")
        return cls.from_dict(data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def load(cls, path: str) -> "PipelineConfig":
        """Load a ``.json`` or ``.toml`` config file."""
        from repro.utils.serialization import load_mapping

        return cls.from_dict(
            load_mapping(path, PipelineConfigError, noun="config"))

    def save(self, path: str) -> str:
        """Write the config as JSON; :meth:`load` inverts it."""
        ext = os.path.splitext(path)[1].lower()
        if ext != ".json":
            raise PipelineConfigError(
                f"save() writes JSON; use a .json path, not {ext!r}")
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")
        return path

    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Content hash keying the stage cache.

        ``cache_dir`` is excluded — where results are cached does not
        change what is computed.
        """
        data = self.to_dict()
        data.pop("cache_dir")
        canon = json.dumps(data, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode()).hexdigest()

    def with_overrides(self, **changes) -> "PipelineConfig":
        """A copy with *changes* applied (same validation)."""
        return replace(self, **changes)


def _budget_from_dict(data: dict) -> Budget:
    known = {f.name for f in fields(Budget)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise PipelineConfigError(
            f"unknown budget key(s): {', '.join(unknown)}; "
            f"known keys: {', '.join(sorted(known))}")
    missing = sorted(known - {"name"} - set(data))
    if missing:
        raise PipelineConfigError(
            f"budget table is missing key(s): {', '.join(missing)}")
    return Budget(name=str(data.get("name", "custom")),
                  n_train=int(data["n_train"]), n_test=int(data["n_test"]),
                  max_epochs=int(data["max_epochs"]),
                  retrain_epochs=int(data["retrain_epochs"]))
