"""The :class:`Pipeline`: ordered, cacheable execution of named stages.

``Pipeline(config).run()`` resolves the configured stages (pulling in
prerequisites transitively), runs them in canonical order against one
shared :class:`~repro.pipeline.stages.PipelineContext`, and returns a
:class:`~repro.pipeline.report.PipelineReport`.

Stage cache
-----------
When the config names a ``cache_dir`` (or one is passed explicitly),
every completed stage persists its result JSON plus any weight states
under ``<cache_dir>/<stage>-<depkey>/``, where ``depkey`` hashes *only
the config fields that stage depends on* (plus, for ``evaluate``,
whether ``quantize`` is in the plan — its losses depend on that).  Two
consequences:

* a re-run with the same config resumes from the cache and is
  bit-identical to a cold run (weights round-trip through ``.npz``
  exactly, floats round-trip through JSON exactly);
* *different* configs share entries for the stages on which they agree —
  a design-space exploration sweeping ``designs`` trains once per
  (app, bits, budget, seed) and only re-runs constrain/evaluate/energy.

All cache writes go through a temp file plus an atomic ``os.replace``,
and a concurrent worker having already produced an entry is harmless
(the deterministic stages produce identical bytes), so many processes —
the :mod:`repro.explore` worker pool in particular — can share one
``cache_dir`` without corruption.

Each completed cached run also drops a small marker under
``<cache_dir>/runs/`` so ``repro list`` can enumerate what has been run.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro import obs
from repro.asm.alphabet import standard_set
from repro.pipeline.config import STAGE_NAMES, PipelineConfig
from repro.pipeline.report import STAGE_ATTRS, PipelineReport
from repro.pipeline.stages import (
    STAGE_FUNCTIONS,
    ConstrainResult,
    PipelineContext,
    StageError,
    load_state,
    result_from_payload,
    save_state,
)
from repro.utils.serialization import atomic_write_json, to_jsonable

__all__ = ["Pipeline", "run_pipeline", "list_cached_runs"]

_CACHE_FORMAT = 2


class Pipeline:
    """Declarative, stage-based execution of one :class:`PipelineConfig`."""

    def __init__(self, config: PipelineConfig,
                 cache_dir: str | None = None) -> None:
        self.config = config
        #: cache root (``None`` disables caching)
        self.cache_root = (cache_dir if cache_dir is not None
                           else config.cache_dir)

    # ------------------------------------------------------------------
    # stage planning
    # ------------------------------------------------------------------
    def _requires(self, stage: str) -> tuple[str, ...]:
        """Prerequisite stages of *stage* under this config."""
        designs = self.config.designs
        has_asm = any(d != "conventional" for d in designs)
        has_ladder = "ladder" in designs
        if stage == "train":
            return ()
        if stage == "quantize":
            return ("train",)
        if stage == "constrain":
            return ("train", "quantize") if has_ladder else ("train",)
        if stage == "evaluate":
            needs: list[str] = []
            if "conventional" in designs:
                needs.append("quantize")
            if has_asm:
                needs.append("constrain")
            return tuple(needs)
        if stage == "faults":
            # faulted accuracy is measured against the clean evaluation
            # and perturbs the same deployed networks; evaluate's own
            # prerequisites pull the trained/constrained weights in
            return ("evaluate",)
        if stage == "energy":
            if self.config.sim_samples:
                # toggle simulation traces real activations through the
                # deployed designs, so it needs the trained weights
                return ("train", "constrain") if has_asm else ("train",)
            # ladder designs resolve their alphabet set while constraining
            return ("constrain",) if has_ladder else ()
        if stage == "export":
            return ("constrain",)
        if stage == "serve-check":
            return ("export",)
        raise ValueError(f"unknown stage {stage!r}")

    def plan(self, stages: tuple[str, ...] | None = None) -> tuple[str, ...]:
        """Requested stages plus prerequisites, in canonical order."""
        requested = tuple(stages) if stages is not None else \
            self.config.stages
        for stage in requested:
            if stage not in STAGE_NAMES:
                raise ValueError(
                    f"unknown stage {stage!r}; choose from {STAGE_NAMES}")
        needed: set[str] = set()

        def add(stage: str) -> None:
            if stage in needed:
                return
            needed.add(stage)
            for dep in self._requires(stage):
                add(dep)

        for stage in requested:
            add(stage)
        if "export" in needed:
            # fail before any stage runs, not after a full training run
            # (config construction validates this only for configured
            # stage lists; runtime overrides land here)
            self.config.resolved_export_design()
        return tuple(s for s in STAGE_NAMES if s in needed)

    # ------------------------------------------------------------------
    # cache keys: hash only what each stage's result depends on
    # ------------------------------------------------------------------
    def _stage_deps(self, stage: str, plan: tuple[str, ...]) -> dict:
        """The config slice that determines *stage*'s result.

        ``backend``, ``sim_backend``, ``train_backend`` and
        ``eval_batch_size`` are deliberately absent from every slice:
        kernel backends (forward, simulation, projection and training
        alike) are bit-identical and accuracy is independent of the
        evaluation batch size, so runs differing only in those fields
        share every cache entry (asserted in ``tests/test_kernels.py``
        and ``tests/test_train_backends.py``).  ``sim_samples`` *does* enter the
        energy slice — simulated toggle energy is part of that stage's
        result.  ``cache_dir`` is location, not content.
        """
        cfg = self.config
        tier = cfg.tier()
        deps: dict = {
            "app": cfg.app,
            "bits": cfg.word_bits(),
            "seed": cfg.seed,
            "budget": {
                "name": tier.name, "n_train": tier.n_train,
                "n_test": tier.n_test, "max_epochs": tier.max_epochs,
                "retrain_epochs": tier.retrain_epochs,
            },
        }
        if stage in ("train", "quantize"):
            return deps
        # every later stage sees the constrained deployments
        deps["constraint_mode"] = cfg.constraint_mode
        deps["quality"] = cfg.quality
        deps["ladder"] = list(cfg.ladder)
        if stage == "constrain":
            # conventional has no constrain outcome; its presence in the
            # design list must not split the cache
            deps["designs"] = [d for d in cfg.designs
                               if d != "conventional"]
            return deps
        if stage == "faults":
            deps["designs"] = list(cfg.designs)
            deps["fault_rates"] = list(cfg.fault_rates)
            deps["fault_kind"] = cfg.fault_kind
            deps["fault_seed"] = cfg.fault_seed
            # like evaluate: losses depend on whether quantize ran
            deps["with_quantize"] = "quantize" in plan
            return deps
        if stage in ("evaluate", "energy"):
            deps["designs"] = list(cfg.designs)
            if stage == "evaluate":
                # losses are reported only when quantize ran (see
                # stage_evaluate), so the plan subset is part of the key
                deps["with_quantize"] = "quantize" in plan
            if stage == "energy" and cfg.sim_samples:
                # added only when nonzero so analytic-only runs keep
                # their pre-existing cache entries
                deps["sim_samples"] = cfg.sim_samples
            return deps
        if stage in ("export", "serve-check"):
            deps["export_design"] = cfg.resolved_export_design()
            deps["export_dir"] = cfg.export_dir
            if stage == "serve-check":
                deps["serve_name"] = cfg.serve_name or cfg.app
            return deps
        raise ValueError(f"unknown stage {stage!r}")

    def stage_key(self, stage: str, plan: tuple[str, ...]) -> str:
        """Content hash of everything *stage*'s result depends on."""
        canon = json.dumps(
            {"format": _CACHE_FORMAT, "stage": stage,
             "deps": self._stage_deps(stage, plan)},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode()).hexdigest()

    def stage_cache_dir(self, stage: str,
                        plan: tuple[str, ...]) -> str | None:
        """Cache directory of *stage* (``None`` when caching is off)."""
        if self.cache_root is None:
            return None
        return os.path.join(
            self.cache_root,
            f"{stage.replace('-', '_')}-{self.stage_key(stage, plan)[:16]}")

    # ------------------------------------------------------------------
    # cache plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _stage_json(stage_dir: str, stage: str) -> str:
        return os.path.join(stage_dir, f"{stage}.json")

    def _state_files(self, stage: str, stage_dir: str, ctx: PipelineContext,
                     payload: dict | None = None) -> dict[str, str]:
        """``label -> npz path`` of the weight states *stage* persists."""
        if stage == "train":
            return {"train": os.path.join(stage_dir, "train-state.npz")}
        if stage == "constrain":
            if payload is not None:
                designs = [o["design"] for o in payload["outcomes"]]
            else:
                designs = [d for d in ctx.config.designs
                           if d != "conventional"]
            return {design: os.path.join(
                        stage_dir, f"state-{_design_tag(design)}.npz")
                    for design in designs}
        return {}

    def _try_load_cached(self, stage: str, stage_dir: str | None, key: str,
                         ctx: PipelineContext):
        """Load *stage* from the cache, or return ``None`` on any miss."""
        if stage_dir is None:
            return None
        path = self._stage_json(stage_dir, stage)
        try:
            with open(path) as handle:
                envelope = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if (envelope.get("format") != _CACHE_FORMAT
                or envelope.get("key") != key
                or envelope.get("stage") != stage):
            return None
        states = self._state_files(stage, stage_dir, ctx,
                                   payload=envelope["result"])
        if not all(os.path.exists(p) for p in states.values()):
            return None
        result = result_from_payload(stage, envelope["result"])
        if stage == "export" and not os.path.isdir(result.path):
            return None  # artifact bundle was deleted; re-export
        # rebuild the context exactly as a live run would have left it
        if stage == "train":
            ctx.train_state = load_state(states["train"], ctx.model)
        elif stage == "constrain":
            assert isinstance(result, ConstrainResult)
            for outcome in result.outcomes:
                ctx.design_states[outcome.design] = load_state(
                    states[outcome.design], ctx.model)
                if outcome.chosen_alphabets is not None:
                    ctx.chosen_sets[outcome.design] = standard_set(
                        outcome.chosen_alphabets)
        return result

    def _write_cache(self, stage: str, stage_dir: str | None, key: str,
                     ctx: PipelineContext, result) -> None:
        if stage_dir is None:
            return
        os.makedirs(stage_dir, exist_ok=True)
        # states first, envelope last: a reader that sees the envelope may
        # still double-check the states, never the other way around
        for label, path in self._state_files(stage, stage_dir, ctx).items():
            state = (ctx.train_state if label == "train"
                     else ctx.design_states.get(label))
            if state is None:  # design not retrained (shouldn't happen)
                continue
            save_state(path, state)
        envelope = {
            "format": _CACHE_FORMAT,
            "stage": stage,
            "key": key,
            "result": to_jsonable(result),
        }
        atomic_write_json(self._stage_json(stage_dir, stage), envelope)

    def _write_run_marker(self, plan: tuple[str, ...]) -> None:
        """Record this (config, plan) under ``<cache>/runs/`` for listing."""
        runs_dir = os.path.join(self.cache_root, "runs")
        os.makedirs(runs_dir, exist_ok=True)
        cfg = self.config
        plan_tag = hashlib.sha256("+".join(plan).encode()).hexdigest()[:8]
        marker = {
            "config_digest": cfg.digest(),
            "app": cfg.app,
            "bits": cfg.word_bits(),
            "designs": list(cfg.designs),
            "stages": list(plan),
            "budget": cfg.tier().name,
            "seed": cfg.seed,
        }
        atomic_write_json(
            os.path.join(runs_dir,
                         f"{cfg.digest()[:16]}-{plan_tag}.json"), marker)

    # ------------------------------------------------------------------
    def run(self, stages: tuple[str, ...] | None = None,
            resume: bool = True, verbose: bool = False,
            context: PipelineContext | None = None) -> PipelineReport:
        """Execute the (resolved) stages; returns the report.

        ``resume=False`` ignores existing cache entries (they are still
        rewritten afterwards when caching is enabled).  Passing a
        *context* exposes the run's mutable state (trained model, weight
        states) to the caller — the sensitivity-guided explorer uses this
        to probe the trained network.
        """
        ctx = context if context is not None \
            else PipelineContext(self.config)
        plan = self.plan(stages)
        cached: list[str] = []
        with obs.span("pipeline.run", app=self.config.app,
                      digest=self.config.digest()[:12],
                      stages=",".join(plan)):
            for stage in plan:
                with obs.span(f"stage.{stage}") as stage_span:
                    self._run_stage(stage, plan, ctx, cached,
                                    resume=resume, verbose=verbose,
                                    stage_span=stage_span)
        if self.cache_root is not None:
            self._write_run_marker(plan)
        report_kwargs = {STAGE_ATTRS[name]: result
                         for name, result in ctx.results.items()}
        return PipelineReport(config=self.config, stages_run=plan,
                              cached_stages=tuple(cached), **report_kwargs)

    def _run_stage(self, stage: str, plan: tuple[str, ...],
                   ctx: PipelineContext, cached: list[str], *,
                   resume: bool, verbose: bool, stage_span) -> None:
        """Run (or load) one stage inside its tracing span."""
        key = self.stage_key(stage, plan)
        stage_dir = self.stage_cache_dir(stage, plan)
        result = self._try_load_cached(stage, stage_dir, key, ctx) \
            if resume else None
        if result is not None:
            cached.append(stage)
            stage_span.set(cached=True)
            if obs.enabled():
                obs.registry().counter("pipeline.cache.hits",
                                       stage=stage).inc()
            if verbose:
                print(f"[{stage}] cached "
                      f"({os.path.relpath(self._stage_json(stage_dir, stage))})")
        else:
            stage_span.set(cached=False)
            if obs.enabled():
                obs.registry().counter("pipeline.cache.misses",
                                       stage=stage).inc()
            if verbose:
                print(f"[{stage}] running ...")
            try:
                result = STAGE_FUNCTIONS[stage](ctx)
            except StageError as error:
                raise StageError(
                    f"stage {stage!r} failed: {error}") from error
            self._write_cache(stage, stage_dir, key, ctx, result)
        ctx.results[stage] = result


def _design_tag(design: str) -> str:
    """Filesystem-safe tag for a design token (``mixed:1-0`` -> hash)."""
    if ":" not in design:
        return design
    return "plan-" + hashlib.sha256(design.encode()).hexdigest()[:12]


def list_cached_runs(cache_dir: str) -> list[dict]:
    """Markers of completed cached runs under *cache_dir*, sorted.

    Each entry is the marker dict written by :meth:`Pipeline.run`
    (app, designs, stages, budget, seed, config_digest).  Unreadable
    markers are skipped.
    """
    runs_dir = os.path.join(cache_dir, "runs")
    markers = []
    try:
        names = sorted(os.listdir(runs_dir))
    except OSError:
        return []
    for name in names:
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(runs_dir, name)) as handle:
                markers.append(json.load(handle))
        except (OSError, json.JSONDecodeError):
            continue
    markers.sort(key=lambda m: (m.get("app", ""), m.get("seed", 0),
                                m.get("config_digest", "")))
    return markers


def run_pipeline(config: PipelineConfig | dict | str | os.PathLike,
                 stages: tuple[str, ...] | None = None,
                 cache_dir: str | None = None,
                 resume: bool = True,
                 verbose: bool = False) -> PipelineReport:
    """One-call convenience: accept a config object, mapping or file path."""
    if isinstance(config, (str, os.PathLike)):
        config = PipelineConfig.load(os.fspath(config))
    elif isinstance(config, dict):
        config = PipelineConfig.from_dict(config)
    return Pipeline(config, cache_dir=cache_dir).run(
        stages=stages, resume=resume, verbose=verbose)
