"""The :class:`Pipeline`: ordered, cacheable execution of named stages.

``Pipeline(config).run()`` resolves the configured stages (pulling in
prerequisites transitively), runs them in canonical order against one
shared :class:`~repro.pipeline.stages.PipelineContext`, and returns a
:class:`~repro.pipeline.report.PipelineReport`.

When the config names a ``cache_dir`` (or one is passed explicitly),
every completed stage persists its result JSON plus any weight states
under ``<cache_dir>/<config-digest>-<plan-hash>/``; a re-run with the
same config and stage plan resumes from the cache and is bit-identical
to a cold run (weights round-trip through ``.npz`` exactly, floats
round-trip through JSON exactly).  Editing the config — or overriding
the stage list, which can change what a stage reports — invalidates the
cache via the key.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.asm.alphabet import standard_set
from repro.pipeline.config import STAGE_NAMES, PipelineConfig
from repro.pipeline.report import STAGE_ATTRS, PipelineReport
from repro.pipeline.stages import (
    STAGE_FUNCTIONS,
    ConstrainResult,
    PipelineContext,
    StageError,
    load_state,
    result_from_payload,
    save_state,
)
from repro.utils.serialization import to_jsonable

__all__ = ["Pipeline", "run_pipeline"]

_CACHE_FORMAT = 1


class Pipeline:
    """Declarative, stage-based execution of one :class:`PipelineConfig`."""

    def __init__(self, config: PipelineConfig,
                 cache_dir: str | None = None) -> None:
        self.config = config
        #: cache root (``None`` disables caching)
        self.cache_root = (cache_dir if cache_dir is not None
                           else config.cache_dir)
        #: per-run cache directory, set by :meth:`run` once the stage
        #: plan is resolved (stage results can depend on which other
        #: stages run — e.g. ``evaluate`` reports losses only when
        #: ``quantize`` is in the plan — so the plan is part of the key)
        self.cache_path: str | None = None

    def _resolve_cache_path(self, plan: tuple[str, ...]) -> None:
        if self.cache_root is None:
            self.cache_path = None
            return
        plan_tag = hashlib.sha256("+".join(plan).encode()).hexdigest()[:8]
        self.cache_path = os.path.join(
            self.cache_root, f"{self.config.digest()[:16]}-{plan_tag}")

    # ------------------------------------------------------------------
    # stage planning
    # ------------------------------------------------------------------
    def _requires(self, stage: str) -> tuple[str, ...]:
        """Prerequisite stages of *stage* under this config."""
        designs = self.config.designs
        has_asm = any(d != "conventional" for d in designs)
        has_ladder = "ladder" in designs
        if stage == "train":
            return ()
        if stage == "quantize":
            return ("train",)
        if stage == "constrain":
            return ("train", "quantize") if has_ladder else ("train",)
        if stage == "evaluate":
            needs: list[str] = []
            if "conventional" in designs:
                needs.append("quantize")
            if has_asm:
                needs.append("constrain")
            return tuple(needs)
        if stage == "energy":
            # ladder designs resolve their alphabet set while constraining
            return ("constrain",) if has_ladder else ()
        if stage == "export":
            return ("constrain",)
        if stage == "serve-check":
            return ("export",)
        raise ValueError(f"unknown stage {stage!r}")

    def plan(self, stages: tuple[str, ...] | None = None) -> tuple[str, ...]:
        """Requested stages plus prerequisites, in canonical order."""
        requested = tuple(stages) if stages is not None else \
            self.config.stages
        for stage in requested:
            if stage not in STAGE_NAMES:
                raise ValueError(
                    f"unknown stage {stage!r}; choose from {STAGE_NAMES}")
        needed: set[str] = set()

        def add(stage: str) -> None:
            if stage in needed:
                return
            needed.add(stage)
            for dep in self._requires(stage):
                add(dep)

        for stage in requested:
            add(stage)
        if "export" in needed:
            # fail before any stage runs, not after a full training run
            # (config construction validates this only for configured
            # stage lists; runtime overrides land here)
            self.config.resolved_export_design()
        return tuple(s for s in STAGE_NAMES if s in needed)

    # ------------------------------------------------------------------
    # cache plumbing
    # ------------------------------------------------------------------
    def _stage_json(self, stage: str) -> str:
        return os.path.join(self.cache_path, f"{stage}.json")

    def _state_files(self, stage: str, ctx: PipelineContext,
                     payload: dict | None = None) -> dict[str, str]:
        """``label -> npz path`` of the weight states *stage* persists."""
        if self.cache_path is None:
            return {}
        if stage == "train":
            return {"train": os.path.join(self.cache_path, "train-state.npz")}
        if stage == "constrain":
            if payload is not None:
                designs = [o["design"] for o in payload["outcomes"]]
            else:
                designs = [d for d in ctx.config.designs
                           if d != "conventional"]
            return {design: os.path.join(self.cache_path,
                                         f"constrain-{design}.npz")
                    for design in designs}
        return {}

    def _try_load_cached(self, stage: str, ctx: PipelineContext):
        """Load *stage* from the cache, or return ``None`` on any miss."""
        if self.cache_path is None:
            return None
        path = self._stage_json(stage)
        try:
            with open(path) as handle:
                envelope = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if (envelope.get("format") != _CACHE_FORMAT
                or envelope.get("config_digest") != self.config.digest()
                or envelope.get("stage") != stage):
            return None
        states = self._state_files(stage, ctx, payload=envelope["result"])
        if not all(os.path.exists(p) for p in states.values()):
            return None
        result = result_from_payload(stage, envelope["result"])
        if stage == "export" and not os.path.isdir(result.path):
            return None  # artifact bundle was deleted; re-export
        # rebuild the context exactly as a live run would have left it
        if stage == "train":
            ctx.train_state = load_state(states["train"], ctx.model)
        elif stage == "constrain":
            assert isinstance(result, ConstrainResult)
            for outcome in result.outcomes:
                ctx.design_states[outcome.design] = load_state(
                    states[outcome.design], ctx.model)
                if outcome.chosen_alphabets is not None:
                    ctx.chosen_sets[outcome.design] = standard_set(
                        outcome.chosen_alphabets)
        return result

    def _write_cache(self, stage: str, ctx: PipelineContext,
                     result) -> None:
        if self.cache_path is None:
            return
        os.makedirs(self.cache_path, exist_ok=True)
        for label, path in self._state_files(stage, ctx).items():
            state = (ctx.train_state if label == "train"
                     else ctx.design_states.get(label))
            if state is None:  # design not retrained (shouldn't happen)
                continue
            save_state(path, state)
        envelope = {
            "format": _CACHE_FORMAT,
            "stage": stage,
            "config_digest": self.config.digest(),
            "result": to_jsonable(result),
        }
        with open(self._stage_json(stage), "w") as handle:
            json.dump(envelope, handle, indent=2, default=str)

    # ------------------------------------------------------------------
    def run(self, stages: tuple[str, ...] | None = None,
            resume: bool = True, verbose: bool = False) -> PipelineReport:
        """Execute the (resolved) stages; returns the report.

        ``resume=False`` ignores existing cache entries (they are still
        rewritten afterwards when caching is enabled).
        """
        ctx = PipelineContext(self.config)
        plan = self.plan(stages)
        self._resolve_cache_path(plan)
        cached: list[str] = []
        for stage in plan:
            result = self._try_load_cached(stage, ctx) if resume else None
            if result is not None:
                cached.append(stage)
                if verbose:
                    print(f"[{stage}] cached "
                          f"({os.path.relpath(self._stage_json(stage))})")
            else:
                if verbose:
                    print(f"[{stage}] running ...")
                try:
                    result = STAGE_FUNCTIONS[stage](ctx)
                except StageError as error:
                    raise StageError(
                        f"stage {stage!r} failed: {error}") from error
                self._write_cache(stage, ctx, result)
            ctx.results[stage] = result
        report_kwargs = {STAGE_ATTRS[name]: result
                         for name, result in ctx.results.items()}
        return PipelineReport(config=self.config, stages_run=plan,
                              cached_stages=tuple(cached), **report_kwargs)


def run_pipeline(config: PipelineConfig | dict | str | os.PathLike,
                 stages: tuple[str, ...] | None = None,
                 cache_dir: str | None = None,
                 resume: bool = True,
                 verbose: bool = False) -> PipelineReport:
    """One-call convenience: accept a config object, mapping or file path."""
    if isinstance(config, (str, os.PathLike)):
        config = PipelineConfig.load(os.fspath(config))
    elif isinstance(config, dict):
        config = PipelineConfig.from_dict(config)
    return Pipeline(config, cache_dir=cache_dir).run(
        stages=stages, resume=resume, verbose=verbose)
