"""repro.pipeline — the declarative train → constrain → evaluate →
export → serve flow.

One :class:`PipelineConfig` (dict / JSON / TOML, round-trippable)
describes a whole run of the paper's methodology; :class:`Pipeline`
executes it as named, individually-runnable, cacheable stages
(``train``, ``quantize``, ``constrain``, ``evaluate``, ``energy``,
``export``, ``serve-check``) and returns a :class:`PipelineReport`.
The legacy experiment drivers in :mod:`repro.experiments` are thin
table-formatters over these reports; new scenarios are config files
(see ``docs/pipeline.md``), not new driver modules.

>>> from repro.pipeline import PipelineConfig
>>> PipelineConfig(app="mnist_mlp", designs=("asm2",)).word_bits()
8
"""

from repro.pipeline.config import (
    FULL,
    QUICK,
    STAGE_NAMES,
    TRAIN_SETTINGS,
    Budget,
    PipelineConfig,
    PipelineConfigError,
    TrainSettings,
    budget,
    is_plan_design,
    parse_design,
)
from repro.pipeline.pipeline import Pipeline, run_pipeline
from repro.pipeline.report import PipelineReport, format_report
from repro.pipeline.stages import (
    ConstrainResult,
    DesignOutcome,
    EnergyDesignRow,
    EnergyResult,
    EvaluateResult,
    EvaluationRow,
    ExportResult,
    PipelineContext,
    QuantizeResult,
    ServeCheckResult,
    StageError,
    TrainResult,
)

__all__ = [
    "PipelineConfig", "PipelineConfigError", "STAGE_NAMES", "parse_design",
    "is_plan_design",
    "Budget", "QUICK", "FULL", "budget", "TrainSettings", "TRAIN_SETTINGS",
    "Pipeline", "run_pipeline",
    "PipelineReport", "format_report",
    "PipelineContext", "StageError",
    "TrainResult", "QuantizeResult", "ConstrainResult", "DesignOutcome",
    "EvaluateResult", "EvaluationRow", "EnergyResult", "EnergyDesignRow",
    "ExportResult", "ServeCheckResult",
]
