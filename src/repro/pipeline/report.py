"""The :class:`PipelineReport` — one serialisable record per pipeline run.

Collects every stage's typed result plus the config that produced them.
Serialisation goes through :func:`repro.utils.serialization.to_jsonable`
(shared with the experiment runner), so a report is one ``json.dump`` away
from disk and the legacy drivers can format tables straight off it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.hardware.report import format_table
from repro.pipeline.config import PipelineConfig
from repro.pipeline.stages import (
    ConstrainResult,
    EnergyResult,
    EvaluateResult,
    ExportResult,
    FaultsResult,
    QuantizeResult,
    ServeCheckResult,
    TrainResult,
)
from repro.utils.serialization import to_jsonable, write_json

__all__ = ["PipelineReport", "STAGE_ATTRS", "format_report"]

#: Stage name -> report attribute.
STAGE_ATTRS = {
    "train": "train",
    "quantize": "quantize",
    "constrain": "constrain",
    "evaluate": "evaluate",
    "faults": "faults",
    "energy": "energy",
    "export": "export",
    "serve-check": "serve_check",
}


@dataclass(frozen=True)
class PipelineReport:
    """Everything one :class:`~repro.pipeline.pipeline.Pipeline` run knows."""

    config: PipelineConfig
    stages_run: tuple[str, ...] = ()
    cached_stages: tuple[str, ...] = ()
    train: TrainResult | None = None
    quantize: QuantizeResult | None = None
    constrain: ConstrainResult | None = None
    evaluate: EvaluateResult | None = None
    faults: FaultsResult | None = None
    energy: EnergyResult | None = None
    export: ExportResult | None = None
    serve_check: ServeCheckResult | None = None

    # ------------------------------------------------------------------
    def result(self, stage: str):
        """The typed result of *stage* (``None`` if it did not run)."""
        try:
            return getattr(self, STAGE_ATTRS[stage])
        except KeyError:
            raise KeyError(f"unknown stage {stage!r}") from None

    def require(self, stage: str):
        """Like :meth:`result` but raises when the stage did not run."""
        value = self.result(stage)
        if value is None:
            raise ValueError(
                f"stage {stage!r} did not run in this pipeline "
                f"(ran: {self.stages_run})")
        return value

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        stages = {name: to_jsonable(self.result(name))
                  for name in self.stages_run}
        return {
            "config": self.config.to_dict(),
            "config_digest": self.config.digest(),
            "stages_run": list(self.stages_run),
            "cached_stages": list(self.cached_stages),
            "stages": stages,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def save(self, path: str) -> str:
        return write_json(path, self.to_dict())


# ----------------------------------------------------------------------
def format_report(report: PipelineReport) -> str:
    """Human-readable summary of a pipeline run."""
    config = report.config
    sections: list[str] = []
    header = [
        ["application", config.app],
        ["word width", f"{config.word_bits()} bits"],
        ["budget", config.tier().name],
        ["seed", str(config.seed)],
        ["designs", ", ".join(config.designs)],
        ["stages", ", ".join(
            f"{name} (cached)" if name in report.cached_stages else name
            for name in report.stages_run)],
    ]
    sections.append(format_table(["Field", "Value"], header,
                                 title=f"Pipeline - {config.app}"))

    if report.train is not None:
        sections.append(format_table(
            ["Field", "Value"],
            [["epochs to saturation", str(report.train.epochs)],
             ["float accuracy (%)",
              f"{report.train.float_accuracy * 100:.2f}"]],
            title="Stage: train"))
    if report.quantize is not None:
        sections.append(format_table(
            ["Field", "Value"],
            [["baseline accuracy J (%)",
              f"{report.quantize.baseline_accuracy * 100:.2f}"]],
            title=f"Stage: quantize ({report.quantize.bits} bit, "
                  f"conventional engine)"))
    if report.constrain is not None:
        rows = []
        for outcome in report.constrain.outcomes:
            chosen = ("--" if outcome.chosen_alphabets is None
                      else str(outcome.chosen_alphabets))
            rows.append([outcome.design, str(outcome.epochs), chosen])
        sections.append(format_table(
            ["Design", "Retrain epochs", "Ladder choice"], rows,
            title="Stage: constrain"))
    if report.evaluate is not None:
        rows = []
        for row in report.evaluate.rows:
            rows.append([
                row.design, row.label, f"{row.accuracy * 100:.2f}",
                "--" if row.loss is None else f"{row.loss * 100:.2f}"])
        sections.append(format_table(
            ["Design", "Deployment", "Accuracy (%)", "Loss (%)"], rows,
            title="Stage: evaluate (bit-accurate engine)"))
    if report.faults is not None:
        rows = []
        for row in report.faults.rows:
            rows.append([row.design, f"{row.rate:g}",
                         f"{row.accuracy * 100:.2f}",
                         f"{row.degradation * 100:+.2f}",
                         str(row.injected)])
        sections.append(format_table(
            ["Design", "Fault rate", "Accuracy (%)", "Degradation (pp)",
             "Injected"], rows,
            title=f"Stage: faults ({report.faults.kind}, "
                  f"seed {report.faults.seed})"))
    if report.energy is not None:
        rows = []
        for row in report.energy.rows:
            rows.append([row.design, row.label,
                         f"{row.energy_nj:.1f}", f"{row.normalized:.3f}",
                         f"{row.energy_per_mac_fj:.1f}",
                         f"{row.area_um2:.0f}", f"{row.latency_us:.1f}"])
        sections.append(format_table(
            ["Design", "Deployment", "Energy (nJ)", "normalized",
             "E/MAC (fJ)", "Area (um2)", "Latency (us)"], rows,
            title="Stage: energy (CSHM engine, per inference)"))
    if report.export is not None:
        sections.append(format_table(
            ["Field", "Value"],
            [["design", report.export.design],
             ["deployed spec", report.export.spec_label],
             ["artifact path", report.export.path],
             ["artifact size",
              f"{report.export.artifact_bytes / 1024:.1f} KiB"]],
            title="Stage: export"))
    if report.serve_check is not None:
        check = report.serve_check
        energy = check.energy_nj_per_inference
        sections.append(format_table(
            ["Field", "Value"],
            [["registry key", check.registry_key],
             ["deployed params", str(check.num_params)],
             ["reloaded accuracy (%)",
              f"{check.compiled_accuracy * 100:.2f}"],
             ["reload bit-identical",
              "yes" if check.bit_identical else "NO"],
             ["energy / inference",
              f"{energy:.1f} nJ" if energy is not None else "n/a"]],
            title="Stage: serve-check"))
    return "\n\n".join(sections)
