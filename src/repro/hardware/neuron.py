"""Neuron datapath designs: conventional, ASM and MAN variants.

A digital neuron (paper §II) is a multiply-accumulate datapath plus an
activation unit.  The three designs modelled here differ only in the
multiplier:

* :class:`ConventionalNeuron` — signed array multiplier (the baseline);
* :class:`ASMNeuron` — alphabet select / shift / add datapath fed by a
  pre-computer bank shared across a CSHM cluster (paper Fig. 3);
* the MAN is :class:`ASMNeuron` with alphabet set ``{1}``: the bank, bus and
  select network vanish and only shifters and adders remain.

Iso-speed comparison (paper §V, Table V): every design must run at the same
clock (3 GHz for 8-bit, 2.5 GHz for 12-bit).  Designs are split into
pipeline stages; within a stage, adder flavours are chosen the way a
synthesis tool's resource selection would (smallest meeting timing), and a
stage that still misses the clock is gate-sized up, multiplying its area and
energy by ``(delay / period) ** sizing_exponent``.  The CSHM alphabet bank
feeds the select units combinationally, so multi-alphabet ASMs carry the
bank delay in their multiply stage — the structural reason the single-
alphabet MAN enjoys a far larger iso-speed advantage, especially at 12 bits
(paper Figs. 8 and 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.alphabet import ALPHA_1, AlphabetSet
from repro.fixedpoint.binary import clog2
from repro.fixedpoint.quartet import QuartetLayout
from repro.hardware.components import (
    ActivationLUT,
    ArrayMultiplier,
    BarrelShifter,
    Component,
    ControlLogic,
    GateBank,
    MuxTree,
    Register,
    best_adder,
)
from repro.hardware.precompute import PrecomputeBank
from repro.hardware.technology import IBM45, TechnologyModel

__all__ = [
    "NeuronConfig",
    "NeuronCost",
    "Stage",
    "NeuronDesign",
    "ConventionalNeuron",
    "ASMNeuron",
    "make_neuron",
    "CLOCK_GHZ",
    "clock_for_bits",
]

#: Paper Table V: clock frequency under iso-speed comparison, per bit width.
CLOCK_GHZ = {8: 3.0, 12: 2.5}


def clock_for_bits(bits: int) -> float:
    """Iso-speed clock for *bits*-wide neurons.

    The paper pins 8-bit designs at 3 GHz and 12-bit at 2.5 GHz; other
    widths (the design-space explorer sweeps them) borrow the clock of
    the nearest published width, ties resolving to the narrower one.
    """
    if bits in CLOCK_GHZ:
        return CLOCK_GHZ[bits]
    nearest = min(CLOCK_GHZ, key=lambda known: (abs(known - bits), known))
    return CLOCK_GHZ[nearest]


@dataclass(frozen=True)
class NeuronConfig:
    """Shared design parameters (defaults reproduce the paper's setup).

    ``sizing_exponent`` controls how steeply a stage's area/energy grow when
    it must be gate-sized to meet the clock; ``accumulator_guard_bits`` is
    the accumulation headroom above the product width; ``lut_input_bits``
    sets the sigmoid LUT resolution (MSBs of the accumulator);
    ``activation_rate`` is how often the activation fires per MAC (once per
    fan-in); ``share_units`` is the CSHM cluster size.
    """

    sizing_exponent: float = 2.05
    #: energy grows more slowly than area under gate sizing (the wire load
    #: the sized gates drive is unchanged)
    energy_sizing_exponent: float = 0.5
    accumulator_guard_bits: int = 8
    lut_input_bits: int = 8
    activation_rate: float = 1.0 / 60.0
    share_units: int = 4
    #: physical pitch of one MAC unit; the CSHM bus spans share_units of
    #: these, so routing cost grows with both cluster and word size
    unit_pitch_um: float = 30.0


@dataclass
class Stage:
    """One pipeline stage: components plus an explicit critical path."""

    name: str
    parts: list[tuple[Component, float]] = field(default_factory=list)
    path_ps: float = 0.0

    def add(self, component: Component, multiplicity: float = 1.0) -> Component:
        self.parts.append((component, multiplicity))
        return component

    @property
    def area_um2(self) -> float:
        return sum(c.area_um2 * m for c, m in self.parts)

    @property
    def energy_fj(self) -> float:
        return sum(c.energy_fj * m for c, m in self.parts)


@dataclass(frozen=True)
class NeuronCost:
    """Iso-speed cost summary of one neuron design."""

    area_um2: float
    energy_per_mac_fj: float
    power_uw: float
    critical_path_ps: float
    max_sizing_factor: float

    def normalized_to(self, baseline: "NeuronCost") -> dict[str, float]:
        """Area/power/energy of this design relative to *baseline*."""
        return {
            "area": self.area_um2 / baseline.area_um2,
            "power": self.power_uw / baseline.power_uw,
            "energy": self.energy_per_mac_fj / baseline.energy_per_mac_fj,
        }


class NeuronDesign:
    """Base class: builds pipeline stages and applies iso-speed sizing."""

    def __init__(self, tech: TechnologyModel, bits: int,
                 clock_ghz: float | None = None,
                 config: NeuronConfig | None = None) -> None:
        self.tech = tech
        self.bits = bits
        self.clock_ghz = clock_ghz if clock_ghz is not None \
            else clock_for_bits(bits)
        self.config = config or NeuronConfig()
        self.period_ps = 1000.0 / self.clock_ghz
        self.stages: list[Stage] = []
        self._build()

    # -- subclasses populate self.stages -------------------------------
    def _build(self) -> None:
        raise NotImplementedError

    @property
    def name(self) -> str:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _new_stage(self, name: str) -> Stage:
        stage = Stage(name)
        self.stages.append(stage)
        return stage

    def _shared_backend(self) -> None:
        """Accumulate and activate stages, identical across designs."""
        acc_width = 2 * self.bits + self.config.accumulator_guard_bits
        accumulate = self._new_stage("accumulate")
        acc_adder = accumulate.add(
            best_adder(self.tech, acc_width, self.period_ps))
        accumulate.add(Register(self.tech, acc_width))
        accumulate.path_ps = acc_adder.delay_ps

        activate = self._new_stage("activate")
        lut = ActivationLUT(self.tech, self.config.lut_input_bits, self.bits)
        # the LUT is read once per neuron, i.e. activation_rate per MAC:
        # full area, scaled switching
        lut.activity *= self.config.activation_rate
        activate.add(lut)
        activate.path_ps = lut.delay_ps

        operands = self._new_stage("operands")
        operands.add(Register(self.tech, self.bits))  # input word
        operands.add(Register(self.tech, self.bits))  # weight word
        operands.path_ps = 0.0  # edge-triggered; clk->q inside the margin

    # -- cost aggregation ----------------------------------------------
    def stage_sizing(self, stage: Stage) -> tuple[float, float]:
        """(area factor, energy factor) for iso-speed gate sizing."""
        ratio = stage.path_ps / self.period_ps
        if ratio <= 1.0:
            return 1.0, 1.0
        return (ratio ** self.config.sizing_exponent,
                ratio ** self.config.energy_sizing_exponent)

    @property
    def critical_path_ps(self) -> float:
        return max(stage.path_ps for stage in self.stages)

    def cost(self) -> NeuronCost:
        area = 0.0
        energy = 0.0
        worst = 1.0
        for stage in self.stages:
            area_factor, energy_factor = self.stage_sizing(stage)
            worst = max(worst, area_factor)
            area += stage.area_um2 * area_factor
            energy += stage.energy_fj * energy_factor
        return NeuronCost(
            area_um2=area,
            energy_per_mac_fj=energy,
            power_uw=energy * self.clock_ghz,  # fJ * GHz = uW
            critical_path_ps=self.critical_path_ps,
            max_sizing_factor=worst,
        )

    def report(self) -> str:
        """Stage-by-stage cost table."""
        lines = [f"{self.name} @ {self.clock_ghz:g} GHz "
                 f"(period {self.period_ps:.0f} ps)"]
        for stage in self.stages:
            area_factor, _ = self.stage_sizing(stage)
            lines.append(
                f"  [{stage.name}] area={stage.area_um2:8.1f} um2  "
                f"energy={stage.energy_fj:7.2f} fJ  "
                f"path={stage.path_ps:5.0f} ps  sizing x{area_factor:.2f}"
            )
            for component, mult in stage.parts:
                suffix = f" x{mult:g}" if mult != 1.0 else ""
                lines.append(f"    - {component.name}{suffix}")
        return "\n".join(lines)


class ConventionalNeuron(NeuronDesign):
    """Baseline: signed array multiplier + accumulator + activation."""

    @property
    def name(self) -> str:
        return f"conventional-{self.bits}b"

    def _build(self) -> None:
        multiply = self._new_stage("multiply")
        multiplier = multiply.add(ArrayMultiplier(self.tech, self.bits))
        multiply.add(Register(self.tech, 2 * self.bits))
        multiply.path_ps = multiplier.delay_ps
        self._shared_backend()


class ASMNeuron(NeuronDesign):
    """ASM-based neuron; with ``ALPHA_1`` this is the MAN.

    The pre-computer bank and its distribution bus are shared by
    ``config.share_units`` MAC units (CSHM, paper Fig. 3): their area and
    energy enter with multiplicity ``1/share_units``, but their
    *combinational delay* sits fully on the multiply stage's path.
    """

    def __init__(self, tech: TechnologyModel, bits: int,
                 alphabet_set: AlphabetSet,
                 clock_ghz: float | None = None,
                 config: NeuronConfig | None = None) -> None:
        self.alphabet_set = alphabet_set
        self.layout = QuartetLayout(bits)
        super().__init__(tech, bits, clock_ghz, config)

    @property
    def name(self) -> str:
        label = "man" if self.alphabet_set.is_multiplierless else "asm"
        return f"{label}-{self.bits}b-{len(self.alphabet_set)}a"

    @property
    def is_man(self) -> bool:
        return self.alphabet_set.is_multiplierless

    def _build(self) -> None:
        bits, aset = self.bits, self.alphabet_set
        num_alphabets = len(aset)
        quartets = self.layout.num_quartets
        lane_width = bits + 4  # alphabet multiples reach 15x the input

        # pre-computer bank in its own pipeline stage, shared across the
        # CSHM cluster; the distribution bus spans the whole cluster
        bank = PrecomputeBank(
            self.tech, bits, aset, self.config.share_units, self.period_ps,
            bus_length_um=self.config.share_units * self.config.unit_pitch_um)
        if not bank.is_empty:
            bank_stage = self._new_stage("bank")
            bank_stage.add(bank, multiplicity=1.0 / self.config.share_units)
            bank_stage.path_ps = bank.path_ps

        multiply = self._new_stage("multiply")
        path_ps = 0.0
        control = multiply.add(
            ControlLogic(self.tech, quartets, num_alphabets))
        path_ps += control.delay_ps

        select_delay = 0.0
        for _ in range(quartets):
            if num_alphabets > 1:
                mux = multiply.add(
                    MuxTree(self.tech, lane_width, num_alphabets,
                            activity=0.5))
                select_delay = mux.delay_ps
            shifter = multiply.add(
                BarrelShifter(self.tech, lane_width, max_shift=3,
                              activity=0.6))
        path_ps += select_delay + shifter.delay_ps

        # combine the quartet lanes: carry-save rows then one fast adder
        product_width = 2 * bits - 2
        csa_rows = max(0, quartets - 2)
        if csa_rows:
            csa = multiply.add(GateBank(
                self.tech, f"csarow{product_width}",
                counts={"FA": float(product_width * csa_rows)},
                path=["FA"] * csa_rows))
            path_ps += csa.delay_ps
        if quartets > 1:
            final = multiply.add(best_adder(
                self.tech, product_width,
                self.period_ps - path_ps))
            path_ps += final.delay_ps
        multiply.add(Register(self.tech, 2 * bits))
        multiply.path_ps = path_ps

        self._shared_backend()


def make_neuron(bits: int, alphabet_set: AlphabetSet | None = None,
                tech: TechnologyModel = IBM45,
                clock_ghz: float | None = None,
                config: NeuronConfig | None = None) -> NeuronDesign:
    """Factory: ``alphabet_set=None`` builds the conventional baseline.

    >>> make_neuron(8).name
    'conventional-8b'
    >>> from repro.asm.alphabet import ALPHA_1
    >>> make_neuron(8, ALPHA_1).name
    'man-8b-1a'
    """
    if alphabet_set is None:
        return ConventionalNeuron(tech, bits, clock_ghz, config)
    return ASMNeuron(tech, bits, alphabet_set, clock_ghz, config)
