"""CSHM processing engine: cycle counts and per-inference energy.

The paper's processing engine evaluates four neurons at a time (§III): one
input word is broadcast per cycle, the shared pre-computer bank produces its
alphabet multiples, and four MAC units consume it against four different
weights.  For a layer with ``n`` neurons of fan-in ``f`` the engine therefore
spends ``ceil(n / units) * f`` cycles.

Per-inference energy combines the engine's per-MAC datapath energy (from
:mod:`repro.hardware.neuron`, which already amortises the bank and bus over
the cluster) with per-neuron activation accesses.  Mixed per-layer alphabet
plans (paper §VI.E) assign a different neuron design to each layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.asm.alphabet import AlphabetSet
from repro.hardware.neuron import NeuronConfig, clock_for_bits, make_neuron
from repro.hardware.technology import IBM45, TechnologyModel

__all__ = ["LayerWork", "NetworkTopology", "ProcessingEngine",
           "EngineReport", "LayerEnergy"]


@dataclass(frozen=True)
class LayerWork:
    """Compute demand of one network layer during inference."""

    name: str
    neurons: int
    macs_per_neuron: int

    def __post_init__(self) -> None:
        if self.neurons < 1:
            raise ValueError(f"layer {self.name}: neurons must be positive")
        if self.macs_per_neuron < 0:
            raise ValueError(f"layer {self.name}: negative MAC count")

    @property
    def total_macs(self) -> int:
        return self.neurons * self.macs_per_neuron


@dataclass(frozen=True)
class NetworkTopology:
    """Ordered layers of a network, as seen by the processing engine."""

    name: str
    layers: tuple[LayerWork, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("a topology needs at least one layer")

    @property
    def total_macs(self) -> int:
        return sum(layer.total_macs for layer in self.layers)

    @property
    def total_neurons(self) -> int:
        return sum(layer.neurons for layer in self.layers)

    @classmethod
    def from_layer_sizes(cls, name: str, input_size: int,
                         sizes: list[int]) -> "NetworkTopology":
        """Build an MLP topology: each layer is fully connected.

        >>> t = NetworkTopology.from_layer_sizes("mnist", 1024, [100, 10])
        >>> t.total_macs
        103400
        """
        layers = []
        fan_in = input_size
        for index, size in enumerate(sizes):
            layers.append(LayerWork(f"fc{index + 1}", size, fan_in))
            fan_in = size
        return cls(name, tuple(layers))


@dataclass(frozen=True)
class LayerEnergy:
    """Per-layer slice of an :class:`EngineReport`."""

    name: str
    cycles: int
    macs: int
    energy_nj: float
    alphabet_label: str


@dataclass(frozen=True)
class EngineReport:
    """Cycle and energy totals for one inference pass."""

    topology_name: str
    design_label: str
    cycles: int
    total_macs: int
    energy_nj: float
    latency_us: float
    layers: tuple[LayerEnergy, ...]
    #: silicon area of one CSHM cluster sized for the costliest layer
    #: design (a mixed deployment reconfigures one engine, so its area is
    #: the largest per-layer datapath, not the sum)
    area_um2: float = 0.0

    @property
    def energy_per_mac_fj(self) -> float:
        """Average datapath energy per MAC operation."""
        if not self.total_macs:
            return 0.0
        return self.energy_nj * 1e6 / self.total_macs

    def layer_cycle_fraction(self, last_n: int) -> float:
        """Fraction of cycles spent in the last *last_n* layers.

        Reproduces the paper's §VI.E observation that the concluding layers
        of the SVHN network use only ~3.84% of total processing cycles.
        """
        if not 0 <= last_n <= len(self.layers):
            raise ValueError(f"last_n must be in [0, {len(self.layers)}]")
        tail = sum(layer.cycles for layer in self.layers[-last_n:]) \
            if last_n else 0
        return tail / self.cycles if self.cycles else 0.0


class ProcessingEngine:
    """A cluster of ``units`` MAC datapaths sharing one pre-computer bank.

    Parameters
    ----------
    bits:
        Neuron word width; picks the paper clock unless ``clock_ghz`` given.
    alphabet_set:
        ``None`` for the conventional-multiplier engine; an
        :class:`AlphabetSet` for an ASM/MAN engine.  Per-layer overrides are
        given to :meth:`run` for mixed plans.
    """

    def __init__(self, bits: int, alphabet_set: AlphabetSet | None = None,
                 tech: TechnologyModel = IBM45,
                 clock_ghz: float | None = None,
                 config: NeuronConfig | None = None,
                 sim_backend: str = "auto") -> None:
        self.bits = bits
        self.tech = tech
        self.config = config or NeuronConfig()
        self.clock_ghz = clock_ghz if clock_ghz is not None \
            else clock_for_bits(bits)
        self.alphabet_set = alphabet_set
        self.units = self.config.share_units
        #: simulation-kernel backend handed to :meth:`simulator` engines
        #: (bit-identical traces across backends; a speed knob only)
        self.sim_backend = sim_backend
        self._design_cache: dict[object, object] = {}
        self._simulator_cache: dict[object, object] = {}

    # ------------------------------------------------------------------
    def _design(self, alphabet_set: AlphabetSet | None):
        key = alphabet_set.alphabets if alphabet_set is not None else None
        if key not in self._design_cache:
            self._design_cache[key] = make_neuron(
                self.bits, alphabet_set, tech=self.tech,
                clock_ghz=self.clock_ghz, config=self.config)
        return self._design_cache[key]

    @staticmethod
    def _label(alphabet_set: AlphabetSet | None) -> str:
        return "conventional" if alphabet_set is None else str(alphabet_set)

    def layer_cycles(self, layer: LayerWork) -> int:
        """Cycles to evaluate *layer*: groups of ``units`` neurons, one MAC
        per unit per cycle."""
        return ceil(layer.neurons / self.units) * layer.macs_per_neuron

    #: sentinel: "use the engine's own alphabet set" (``None`` is a real
    #: value — the conventional-multiplier design)
    _OWN_SET = object()

    def simulator(self, alphabet_set: AlphabetSet | None = _OWN_SET):
        """A cycle-accurate twin of this engine (memoized per design).

        Shares the engine's word width, lane count, technology model and
        ``sim_backend``; *alphabet_set* defaults to the engine's own
        (pass ``None`` explicitly for the conventional design).  The
        toggle-level simulator exposes the data dependence the analytic
        :meth:`run` averages away — the pipeline's energy stage uses it
        when ``sim_samples`` is configured.
        """
        from repro.hardware.simulator import CycleAccurateEngine

        if alphabet_set is ProcessingEngine._OWN_SET:
            alphabet_set = self.alphabet_set
        key = alphabet_set.alphabets if alphabet_set is not None else None
        if key not in self._simulator_cache:
            self._simulator_cache[key] = CycleAccurateEngine(
                self.bits, alphabet_set, units=self.units, tech=self.tech,
                backend=self.sim_backend)
        return self._simulator_cache[key]

    # ------------------------------------------------------------------
    def run(self, topology: NetworkTopology,
            layer_alphabets: list[AlphabetSet | None] | None = None,
            ) -> EngineReport:
        """Cost one inference pass of *topology*.

        ``layer_alphabets`` optionally assigns an alphabet set per layer
        (``None`` entries = conventional); by default every layer uses the
        engine's own ``alphabet_set``.
        """
        if layer_alphabets is None:
            layer_alphabets = [self.alphabet_set] * len(topology.layers)
        if len(layer_alphabets) != len(topology.layers):
            raise ValueError(
                f"{len(layer_alphabets)} alphabet entries for "
                f"{len(topology.layers)} layers"
            )
        layers = []
        total_cycles = 0
        total_energy_fj = 0.0
        cluster_area_um2 = 0.0
        for layer, aset in zip(topology.layers, layer_alphabets):
            design = self._design(aset)
            cost = design.cost()
            # per-unit cost already amortises the shared bank/bus over the
            # cluster, so the cluster occupies units * per-unit area
            cluster_area_um2 = max(cluster_area_um2,
                                   cost.area_um2 * self.units)
            cycles = self.layer_cycles(layer)
            # every MAC costs the datapath energy; the idle lanes of a
            # ragged final group still clock their registers, which the
            # ceil() in the cycle count already over-approximates
            energy_fj = layer.total_macs * cost.energy_per_mac_fj
            layers.append(LayerEnergy(
                name=layer.name,
                cycles=cycles,
                macs=layer.total_macs,
                energy_nj=energy_fj * 1e-6,
                alphabet_label=self._label(aset),
            ))
            total_cycles += cycles
            total_energy_fj += energy_fj
        if len({self._label(a) for a in layer_alphabets}) == 1:
            design_label = self._label(layer_alphabets[0])
        else:
            design_label = "mixed(" + ",".join(
                self._label(a) for a in layer_alphabets) + ")"
        return EngineReport(
            topology_name=topology.name,
            design_label=design_label,
            cycles=total_cycles,
            total_macs=topology.total_macs,
            energy_nj=total_energy_fj * 1e-6,
            latency_us=total_cycles / (self.clock_ghz * 1e3),
            layers=tuple(layers),
            area_um2=cluster_area_um2,
        )
