"""Gate-level hardware cost model (45 nm-class) for neuron datapaths.

Provides the structural area/energy/delay model standing in for the paper's
RTL + Synopsys DC @ IBM 45 nm flow: component library, conventional/ASM/MAN
neuron designs with iso-speed gate sizing, the shared pre-computer bank, and
the 4-unit CSHM processing engine used for per-inference energy.
"""

from repro.hardware.components import (
    ActivationLUT,
    ArrayMultiplier,
    BarrelShifter,
    CarrySkipAdder,
    Component,
    Composite,
    CostBreakdown,
    ControlLogic,
    GateBank,
    KoggeStoneAdder,
    MuxTree,
    Register,
    RippleCarryAdder,
    WireBus,
    best_adder,
)
from repro.hardware.engine import (
    EngineReport,
    LayerEnergy,
    LayerWork,
    NetworkTopology,
    ProcessingEngine,
)
from repro.hardware.neuron import (
    CLOCK_GHZ,
    ASMNeuron,
    ConventionalNeuron,
    NeuronConfig,
    NeuronCost,
    NeuronDesign,
    Stage,
    clock_for_bits,
    make_neuron,
)
from repro.hardware.precompute import PrecomputeBank, csd_adder_count, csd_digits
from repro.hardware.report import format_table, normalized_series
from repro.hardware.simulator import (
    CycleAccurateEngine,
    LayerTrace,
    ToggleCounts,
)
from repro.hardware.technology import (
    IBM45,
    GateSpec,
    TechnologyModel,
    scaled_technology,
)

__all__ = [
    "ActivationLUT", "ArrayMultiplier", "BarrelShifter", "CarrySkipAdder",
    "Component", "Composite", "CostBreakdown", "ControlLogic", "GateBank",
    "KoggeStoneAdder", "MuxTree", "Register", "RippleCarryAdder", "WireBus",
    "best_adder",
    "EngineReport", "LayerEnergy", "LayerWork", "NetworkTopology",
    "ProcessingEngine",
    "CLOCK_GHZ", "clock_for_bits", "ASMNeuron", "ConventionalNeuron",
    "NeuronConfig",
    "NeuronCost", "NeuronDesign", "Stage", "make_neuron",
    "PrecomputeBank", "csd_adder_count", "csd_digits",
    "format_table", "normalized_series",
    "CycleAccurateEngine", "LayerTrace", "ToggleCounts",
    "IBM45", "GateSpec", "TechnologyModel", "scaled_technology",
]
