"""Cycle-accurate CSHM engine simulator with data-dependent energy.

The analytic :class:`~repro.hardware.engine.ProcessingEngine` costs every
MAC at the datapath's average energy.  This simulator actually *schedules*
the computation the way the paper's RTL engine does and charges energy per
observed bit toggle:

* one input activation is broadcast per cycle,
* the shared pre-computer bank recomputes its alphabet multiples,
* each of the ``units`` MAC lanes multiplies the broadcast input by its
  neuron's weight (already remapped to the ASM's effective value) and
  accumulates.

Energy is the Hamming distance between consecutive values on each tracked
net class (input bus, bank outputs, product registers, accumulators) times
a per-bit-toggle energy derived from the technology model.  Because toggles
depend on the operand stream, the simulator exposes the *data dependence*
of energy that the analytic model averages away — sparse activations make
shift-add datapaths cheaper still.

The toggle counting itself is a compute kernel of :mod:`repro.kernels`
(module :mod:`~repro.kernels.simulate`): ``backend="reference"`` walks
the schedule cycle by cycle, ``backend="fast"`` (the ``"auto"`` default)
lays the whole evaluation out over the time axis and counts all four
toggle categories in one batched XOR + popcount pass — bit-identical
traces, an order of magnitude less wall-clock (see
``BENCH_simulator.json``).  This class owns validation, the effective-
weight remap and the energy model; the kernels own the counting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.asm.alphabet import AlphabetSet
from repro.asm.multiplier import AlphabetSetMultiplier
from repro.kernels import get_backend
from repro.kernels.registry import KernelBackend
from repro.hardware.technology import IBM45, TechnologyModel

__all__ = ["ToggleCounts", "LayerTrace", "CycleAccurateEngine"]


@dataclass(frozen=True)
class ToggleCounts:
    """Bit toggles observed per net class over a layer evaluation."""

    input_bus: int
    bank_outputs: int
    products: int
    accumulators: int

    @property
    def total(self) -> int:
        return (self.input_bus + self.bank_outputs + self.products
                + self.accumulators)


@dataclass(frozen=True)
class LayerTrace:
    """Result of simulating one layer on the CSHM cluster."""

    name: str
    cycles: int
    macs: int
    toggles: ToggleCounts
    energy_nj: float
    utilization: float          # busy lane-cycles / (cycles * units)


class CycleAccurateEngine:
    """Bit-toggle-level simulation of the 4-unit CSHM processing engine.

    Parameters
    ----------
    bits:
        Word width of inputs and weights.
    alphabet_set:
        ``None`` simulates the conventional-multiplier engine (products are
        exact); otherwise weights must be on the ASM's supported grid (use
        a :class:`~repro.asm.constraints.WeightConstrainer` first) — the
        simulator remaps through the effective-weight table and will raise
        on unsupported weights, exactly like the hardware.
    units:
        Lanes sharing the broadcast input and the bank.
    backend:
        Simulation-kernel backend (``"reference"`` / ``"fast"`` /
        ``"auto"``, or a :class:`~repro.kernels.registry.KernelBackend`).
        All backends produce bit-identical traces; the choice is a speed
        knob only.
    """

    #: energy per bit toggle per net class, in fJ (from the technology
    #: model: register toggles cost a DFF switch, bus toggles a wire run,
    #: combinational products an FA-dominated cone)
    def __init__(self, bits: int, alphabet_set: AlphabetSet | None = None,
                 units: int = 4, tech: TechnologyModel = IBM45,
                 backend: str | KernelBackend = "auto") -> None:
        if bits < 2:
            raise ValueError("word width must be at least 2 bits")
        if units < 1:
            raise ValueError("need at least one MAC lane")
        self.bits = bits
        self.units = units
        self.tech = tech
        self.alphabet_set = alphabet_set
        self._kernel = get_backend(backend)
        if alphabet_set is not None:
            self._multiplier = AlphabetSetMultiplier(bits, alphabet_set,
                                                     fallback="error")
        else:
            self._multiplier = None
        if alphabet_set is None or alphabet_set.is_multiplierless:
            #: alphabet multiples the shared bank recomputes every cycle
            self.bank_multiples: tuple[int, ...] = ()
        else:
            self.bank_multiples = tuple(a for a in alphabet_set if a > 1)
        self.energy_per_toggle_fj = {
            "input_bus": tech.energy("WIRE_TRACK") * 30.0,  # ~30um of wire
            "bank_outputs": tech.energy("FA") * 1.5,
            "products": tech.energy("FA") * 2.5,
            "accumulators": tech.energy("DFF"),
        }

    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """Name of the selected simulation-kernel backend."""
        return self._kernel.name

    def _effective_weights(self, weights: np.ndarray) -> np.ndarray:
        weights = np.asarray(weights, dtype=np.int64)
        if self._multiplier is None:
            return weights
        table = self._multiplier.effective_weight_table()
        offset = 1 << (self.bits - 1)
        index = weights + offset
        if index.size and (index.min() < 0 or index.max() >= len(table)):
            raise OverflowError("weights outside the signed word range")
        effective = table[index]
        if (effective == AlphabetSetMultiplier._UNSUPPORTED).any():
            raise ValueError(
                "weights off the supported grid; constrain them first"
            )
        return effective

    def remap_weights(self, weights: np.ndarray) -> np.ndarray:
        """Validate *weights* and remap them to effective values once.

        ``run_layer`` does this on every call; callers replaying many
        activation vectors against the same layer (the pipeline's
        ``sim_samples`` energy traces) remap once and pass
        ``remapped=True`` instead.
        """
        return self._effective_weights(weights)

    # ------------------------------------------------------------------
    def run_layer(self, weights: np.ndarray, inputs: np.ndarray,
                  name: str = "layer", remapped: bool = False) -> LayerTrace:
        """Simulate one dense layer: ``weights`` is ``(fan_in, neurons)``
        integers, ``inputs`` a length-``fan_in`` integer vector.
        ``remapped=True`` skips the effective-weight remap for weights
        already returned by :meth:`remap_weights`."""
        weights = np.asarray(weights, dtype=np.int64) if remapped \
            else self._effective_weights(weights)
        inputs = np.asarray(inputs, dtype=np.int64)
        if weights.ndim != 2 or inputs.ndim != 1 \
                or weights.shape[0] != inputs.shape[0]:
            raise ValueError(
                f"shape mismatch: weights {weights.shape}, "
                f"inputs {inputs.shape}"
            )
        fan_in, neurons = weights.shape

        if obs.enabled():
            started = time.perf_counter()
            counts = self._kernel.simulate_layer(
                weights, inputs, self.units, self.bank_multiples)
            obs.record_kernel(self._kernel.name, "simulate_layer",
                              time.perf_counter() - started)
        else:
            counts = self._kernel.simulate_layer(
                weights, inputs, self.units, self.bank_multiples)
        toggles = counts.toggles
        energy_fj = sum(toggles[key] * self.energy_per_toggle_fj[key]
                        for key in toggles)
        return LayerTrace(
            name=name,
            cycles=counts.cycles,
            macs=fan_in * neurons,
            toggles=ToggleCounts(
                input_bus=toggles["input_bus"],
                bank_outputs=toggles["bank_outputs"],
                products=toggles["products"],
                accumulators=toggles["accumulators"],
            ),
            energy_nj=energy_fj * 1e-6,
            utilization=counts.busy_lane_cycles
            / (counts.cycles * self.units) if counts.cycles else 0.0,
        )
