"""Plain-text report tables for hardware comparisons.

Every experiment driver renders through these helpers so that benchmark
output, example scripts and EXPERIMENTS.md all show the same table shapes
the paper uses (values normalised to the conventional design).
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "normalized_series"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned monospace table (floats shown to 3 decimals).

    >>> out = format_table(["a", "b"], [[1, 2.5]], title="t")
    >>> print("\\n".join(line.rstrip() for line in out.splitlines()))
    t
    a  b
    -  -----
    1  2.500
    """
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
        widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def normalized_series(values: Sequence[float],
                      baseline: float | None = None) -> list[float]:
    """Normalise *values* to *baseline* (default: the first entry).

    >>> normalized_series([4.0, 2.0, 1.0])
    [1.0, 0.5, 0.25]
    """
    if baseline is None:
        if not values:
            raise ValueError("cannot normalise an empty series")
        baseline = values[0]
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return [value / baseline for value in values]
