"""Gate-level component library for the neuron datapath models.

Every component exposes a :class:`CostBreakdown` (area, energy per
operation, critical-path delay) computed from gate counts and the
:class:`~repro.hardware.technology.TechnologyModel`.  Composites aggregate
children; each child carries a *multiplicity* (fractional multiplicities
express CSHM sharing — a pre-computer bank amortised over four MAC units
contributes a quarter of its area and energy to each).

Activity factors model how often a component's nodes actually switch per
operation: array multipliers glitch (activity > 1), select muxes switch
rarely (activity < 1).  Delay is *not* scaled by activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fixedpoint.binary import clog2
from repro.hardware.technology import TechnologyModel

__all__ = [
    "CostBreakdown",
    "Component",
    "GateBank",
    "Composite",
    "RippleCarryAdder",
    "CarrySkipAdder",
    "KoggeStoneAdder",
    "best_adder",
    "ArrayMultiplier",
    "BarrelShifter",
    "MuxTree",
    "Register",
    "ActivationLUT",
    "ControlLogic",
    "WireBus",
]


@dataclass(frozen=True)
class CostBreakdown:
    """Aggregate cost of a component (per instance, per operation)."""

    area_um2: float
    energy_fj: float
    delay_ps: float

    def scaled(self, area: float = 1.0, energy: float = 1.0,
               delay: float = 1.0) -> "CostBreakdown":
        return CostBreakdown(self.area_um2 * area, self.energy_fj * energy,
                             self.delay_ps * delay)


class Component:
    """Base class; subclasses fill ``gate_counts``/``path`` or ``children``."""

    def __init__(self, tech: TechnologyModel, name: str,
                 activity: float = 1.0) -> None:
        if activity < 0:
            raise ValueError(f"activity must be non-negative, got {activity}")
        self.tech = tech
        self.name = name
        self.activity = activity
        #: gate kind -> count for this component's own gates
        self.gate_counts: dict[str, float] = {}
        #: sequence of gate kinds along the critical path
        self.path: list[str] = []
        #: (child, multiplicity, on_critical_path)
        self.children: list[tuple[Component, float, bool]] = []

    # ------------------------------------------------------------------
    @property
    def area_um2(self) -> float:
        area = sum(self.tech.area(kind) * count
                   for kind, count in self.gate_counts.items())
        area += sum(child.area_um2 * mult for child, mult, _ in self.children)
        return area

    @property
    def energy_fj(self) -> float:
        own = sum(self.tech.energy(kind) * count
                  for kind, count in self.gate_counts.items()) * self.activity
        return own + sum(child.energy_fj * mult
                         for child, mult, _ in self.children)

    @property
    def delay_ps(self) -> float:
        own = sum(self.tech.delay(kind) for kind in self.path)
        child_delay = max(
            (child.delay_ps for child, _, on_path in self.children if on_path),
            default=0.0,
        )
        return own + child_delay

    def cost(self) -> CostBreakdown:
        return CostBreakdown(self.area_um2, self.energy_fj, self.delay_ps)

    # ------------------------------------------------------------------
    def add_child(self, child: "Component", multiplicity: float = 1.0,
                  on_critical_path: bool = True) -> "Component":
        if multiplicity < 0:
            raise ValueError("multiplicity must be non-negative")
        self.children.append((child, multiplicity, on_critical_path))
        return child

    def report(self, indent: int = 0) -> str:
        """Human-readable hierarchical cost report."""
        pad = "  " * indent
        cost = self.cost()
        lines = [
            f"{pad}{self.name}: area={cost.area_um2:.1f}um2 "
            f"energy={cost.energy_fj:.1f}fJ delay={cost.delay_ps:.0f}ps"
        ]
        for child, mult, _ in self.children:
            suffix = f" x{mult:g}" if mult != 1.0 else ""
            lines.append(child.report(indent + 1) + suffix)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class GateBank(Component):
    """A flat bag of gates with an explicit critical path."""

    def __init__(self, tech: TechnologyModel, name: str,
                 counts: dict[str, float], path: list[str] | None = None,
                 activity: float = 1.0) -> None:
        super().__init__(tech, name, activity)
        for kind, count in counts.items():
            tech.spec(kind)  # validate
            if count < 0:
                raise ValueError(f"negative count for {kind}")
        self.gate_counts = dict(counts)
        self.path = list(path or [])


class Composite(Component):
    """A named grouping of child components."""

    def __init__(self, tech: TechnologyModel, name: str) -> None:
        super().__init__(tech, name)


# ----------------------------------------------------------------------
# adders
# ----------------------------------------------------------------------
class RippleCarryAdder(Component):
    """Smallest adder: *width* full adders in a carry chain."""

    def __init__(self, tech: TechnologyModel, width: int,
                 activity: float = 1.0) -> None:
        if width < 1:
            raise ValueError("adder width must be positive")
        super().__init__(tech, f"rca{width}", activity)
        self.width = width
        self.gate_counts = {"FA": float(width)}
        self.path = ["FA"] * width


class CarrySkipAdder(Component):
    """Ripple adder with 4-bit skip groups — mid-range area/delay."""

    GROUP = 4

    def __init__(self, tech: TechnologyModel, width: int,
                 activity: float = 1.0) -> None:
        if width < 1:
            raise ValueError("adder width must be positive")
        super().__init__(tech, f"csa{width}", activity)
        self.width = width
        groups = -(-width // self.GROUP)
        self.gate_counts = {
            "FA": float(width),
            "AND2": float(width),        # propagate detection
            "MUX2": float(groups),       # skip muxes
        }
        # first group ripples, then one skip mux per group, last group ripples
        self.path = (["FA"] * min(width, self.GROUP)
                     + ["MUX2"] * max(0, groups - 2)
                     + ["FA"] * min(width, self.GROUP))


class KoggeStoneAdder(Component):
    """Parallel-prefix adder — fastest, largest."""

    def __init__(self, tech: TechnologyModel, width: int,
                 activity: float = 1.0) -> None:
        if width < 1:
            raise ValueError("adder width must be positive")
        super().__init__(tech, f"ksa{width}", activity)
        self.width = width
        levels = max(1, clog2(width))
        self.gate_counts = {
            "XOR2": float(2 * width),            # pre/post processing
            "AND2": float(width * levels),       # prefix cells
            "OR2": float(width * levels),
        }
        self.path = ["XOR2"] + ["AND2", "OR2"] * levels + ["XOR2"]


def best_adder(tech: TechnologyModel, width: int, budget_ps: float,
               activity: float = 1.0) -> Component:
    """Smallest adder flavour meeting *budget_ps*, else the fastest.

    Mirrors what a synthesis tool's resource selection does under a timing
    constraint.
    """
    candidates = [
        RippleCarryAdder(tech, width, activity),
        CarrySkipAdder(tech, width, activity),
        KoggeStoneAdder(tech, width, activity),
    ]
    meeting = [c for c in candidates if c.delay_ps <= budget_ps]
    if meeting:
        return min(meeting, key=lambda c: c.area_um2)
    return min(candidates, key=lambda c: c.delay_ps)


# ----------------------------------------------------------------------
# multiplier and datapath pieces
# ----------------------------------------------------------------------
class ArrayMultiplier(Component):
    """Conventional signed array multiplier (Baugh-Wooley style).

    ``width**2`` partial-product AND gates feeding ``width*(width-1)`` full
    adders.  The default activity models partial-product glitching, the main
    reason multipliers dominate neuron power (paper §II).
    """

    GLITCH_ACTIVITY = 1.50

    def __init__(self, tech: TechnologyModel, width: int,
                 activity: float | None = None) -> None:
        if width < 2:
            raise ValueError("multiplier width must be at least 2")
        super().__init__(tech, f"mult{width}x{width}",
                         self.GLITCH_ACTIVITY if activity is None else activity)
        self.width = width
        self.gate_counts = {
            "AND2": float(width * width),
            "FA": float(width * (width - 1)),
        }
        # array critical path: one AND then a diagonal of 2*(width-1) FAs
        self.path = ["AND2"] + ["FA"] * (2 * (width - 1))


class BarrelShifter(Component):
    """Logarithmic shifter for shifts 0..max_shift on *width*-bit data."""

    def __init__(self, tech: TechnologyModel, width: int, max_shift: int,
                 activity: float = 1.0) -> None:
        if width < 1 or max_shift < 0:
            raise ValueError("invalid barrel shifter geometry")
        super().__init__(tech, f"bshift{width}s{max_shift}", activity)
        self.width = width
        self.max_shift = max_shift
        stages = clog2(max_shift + 1) if max_shift > 0 else 0
        self.gate_counts = {"MUX2": float(width * stages)}
        self.path = ["MUX2"] * stages


class MuxTree(Component):
    """*ways*-to-1 selector on *width*-bit data (the alphabet select unit)."""

    def __init__(self, tech: TechnologyModel, width: int, ways: int,
                 activity: float = 1.0) -> None:
        if width < 1 or ways < 1:
            raise ValueError("invalid mux geometry")
        super().__init__(tech, f"mux{ways}to1w{width}", activity)
        self.width = width
        self.ways = ways
        self.gate_counts = {"MUX2": float(width * max(0, ways - 1))}
        self.path = ["MUX2"] * clog2(max(ways, 1)) if ways > 1 else []


class Register(Component):
    """Pipeline/accumulator register of *width* flip-flops."""

    def __init__(self, tech: TechnologyModel, width: int,
                 activity: float = 0.5) -> None:
        if width < 1:
            raise ValueError("register width must be positive")
        super().__init__(tech, f"reg{width}", activity)
        self.width = width
        self.gate_counts = {"DFF": float(width)}
        self.path = ["DFF"]


class ActivationLUT(Component):
    """Sigmoid lookup table: ``2**in_bits`` words of *out_bits* bits.

    Per-access energy touches one word line; the per-bit constants already
    amortise the decoder.
    """

    def __init__(self, tech: TechnologyModel, in_bits: int,
                 out_bits: int) -> None:
        if in_bits < 1 or out_bits < 1:
            raise ValueError("invalid LUT geometry")
        super().__init__(tech, f"lut{in_bits}to{out_bits}")
        self.in_bits = in_bits
        self.out_bits = out_bits
        words = 1 << in_bits
        self.gate_counts = {"ROM_BIT": float(words * out_bits)}
        # reading touches out_bits cells, not the whole array
        self.activity = out_bits / (words * out_bits)
        self.path = ["ROM_BIT"] * 2 + ["NAND2"] * clog2(words)


class ControlLogic(Component):
    """Quartet decoder: maps each weight quartet to select/shift controls."""

    def __init__(self, tech: TechnologyModel, num_quartets: int,
                 num_alphabets: int) -> None:
        if num_quartets < 1 or num_alphabets < 1:
            raise ValueError("invalid control logic geometry")
        super().__init__(tech, f"ctl{num_quartets}q{num_alphabets}a",
                         activity=0.4)
        select_terms = clog2(num_alphabets) if num_alphabets > 1 else 0
        # per quartet: decode 4 bits into shift (2 bits) + select lines
        per_quartet = 6.0 + 3.0 * select_terms
        self.gate_counts = {"NAND2": per_quartet * num_quartets}
        self.path = ["NAND2", "NAND2"]


class WireBus(Component):
    """Shared routing from the pre-computer bank to the MAC units.

    The paper notes the number of communication buses out of the
    pre-computer is proportional to the number of alphabets; each bus is
    ``width`` bit-tracks of ``length_um`` micrometres.  The ``WIRE_TRACK``
    gate spec is interpreted *per micrometre* of track (area = routing pitch,
    energy = wire-capacitance switching energy).
    """

    def __init__(self, tech: TechnologyModel, width: int, n_buses: int,
                 length_um: float, activity: float = 0.5) -> None:
        if width < 1 or n_buses < 0 or length_um < 0:
            raise ValueError("invalid bus geometry")
        super().__init__(tech, f"bus{n_buses}x{width}", activity)
        self.gate_counts = {
            "WIRE_TRACK": float(width * n_buses) * length_um}
        self.path = ["WIRE_TRACK"]
