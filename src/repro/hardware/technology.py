"""Technology model: per-gate area / energy / delay constants.

The paper synthesises its processing engine to the IBM 45 nm library with
Synopsys Design Compiler.  We cannot run a synthesis flow offline, so the
hardware package instead *counts structure*: every datapath is decomposed
into standard cells (full adders, muxes, flip-flops, ROM bits, wire tracks)
and costed with 45 nm-class per-gate constants.

The absolute numbers below are representative of a commercial 45 nm standard
cell library at nominal voltage (NAND2 ~1 µm², FO4 ~15-20 ps, ~0.5 fJ per
switching event) — close enough for the *relative* comparisons the paper
reports, which is all we claim to reproduce (see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Mapping

__all__ = ["GateSpec", "TechnologyModel", "IBM45", "scaled_technology"]


@dataclass(frozen=True)
class GateSpec:
    """Cost of one standard cell instance."""

    area_um2: float
    energy_fj: float   # dynamic energy per output transition
    delay_ps: float    # propagation delay at nominal load

    def scaled(self, area: float = 1.0, energy: float = 1.0,
               delay: float = 1.0) -> "GateSpec":
        """Return a copy with each field multiplied by the given factor."""
        return GateSpec(self.area_um2 * area, self.energy_fj * energy,
                        self.delay_ps * delay)


# Gate kinds used by the component library.  Strings rather than an Enum so
# user-defined components can introduce new kinds without touching this file.
GATE_KINDS = (
    "INV", "NAND2", "AND2", "OR2", "XOR2", "MUX2", "HA", "FA", "DFF",
    "ROM_BIT", "WIRE_TRACK",
)


@dataclass(frozen=True)
class TechnologyModel:
    """A named set of :class:`GateSpec` entries plus global properties."""

    name: str
    feature_nm: int
    gates: Mapping[str, GateSpec]
    #: Nominal supply voltage; energy scales with the square of voltage in
    #: :func:`scaled_technology`.
    vdd: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "gates", MappingProxyType(dict(self.gates)))
        missing = [k for k in GATE_KINDS if k not in self.gates]
        if missing:
            raise ValueError(f"technology {self.name} missing gates: {missing}")

    def spec(self, kind: str) -> GateSpec:
        """Look up the spec for a gate *kind*; raises KeyError if unknown."""
        try:
            return self.gates[kind]
        except KeyError:
            raise KeyError(
                f"technology {self.name} has no gate kind {kind!r}"
            ) from None

    def area(self, kind: str) -> float:
        return self.spec(kind).area_um2

    def energy(self, kind: str) -> float:
        return self.spec(kind).energy_fj

    def delay(self, kind: str) -> float:
        return self.spec(kind).delay_ps


#: 45 nm-class constants.  Delay figures are for the timing-relevant arc
#: (e.g. FA carry-in → carry-out, the arc that forms ripple chains).
IBM45 = TechnologyModel(
    name="ibm45-class",
    feature_nm=45,
    vdd=1.0,
    gates={
        "INV":        GateSpec(area_um2=0.53, energy_fj=0.25, delay_ps=9.0),
        "NAND2":      GateSpec(area_um2=0.80, energy_fj=0.45, delay_ps=14.0),
        "AND2":       GateSpec(area_um2=1.06, energy_fj=0.55, delay_ps=18.0),
        "OR2":        GateSpec(area_um2=1.06, energy_fj=0.55, delay_ps=18.0),
        "XOR2":       GateSpec(area_um2=1.60, energy_fj=1.00, delay_ps=24.0),
        "MUX2":       GateSpec(area_um2=1.33, energy_fj=0.70, delay_ps=20.0),
        "HA":         GateSpec(area_um2=2.70, energy_fj=1.40, delay_ps=26.0),
        # FA delay is the carry arc; the sum arc is similar.
        "FA":         GateSpec(area_um2=4.50, energy_fj=2.40, delay_ps=32.0),
        "DFF":        GateSpec(area_um2=4.80, energy_fj=1.80, delay_ps=45.0),
        # One ROM bit (decoder cost amortised into the per-bit figure).
        "ROM_BIT":    GateSpec(area_um2=0.09, energy_fj=0.012, delay_ps=0.4),
        # One micrometre of one routed bit-track (CSHM distribution bus):
        # area is the routing pitch footprint, energy the wire-capacitance
        # switching cost per transition per um.
        "WIRE_TRACK": GateSpec(area_um2=0.19, energy_fj=0.16, delay_ps=0.02),
    },
)


def scaled_technology(base: TechnologyModel, name: str,
                      vdd_ratio: float = 1.0,
                      delay_ratio: float = 1.0) -> TechnologyModel:
    """Derive a voltage/corner-scaled technology from *base*.

    Dynamic energy scales with ``vdd_ratio**2``; delays scale with
    *delay_ratio* (lower voltage → slower gates).  Useful for voltage-scaling
    what-if studies on top of the iso-speed comparisons.
    """
    gates = {
        kind: replace(
            spec,
            energy_fj=spec.energy_fj * vdd_ratio ** 2,
            delay_ps=spec.delay_ps * delay_ratio,
        )
        for kind, spec in base.gates.items()
    }
    return TechnologyModel(name=name, feature_nm=base.feature_nm,
                           gates=gates, vdd=base.vdd * vdd_ratio)
