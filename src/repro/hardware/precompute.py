"""Pre-computer bank model: generating alphabet multiples of the input.

Each alphabet ``a`` beyond 1 requires dedicated shift-add hardware: the
number of two-input adders equals the number of non-zero digits in the
canonical signed digit (CSD) form of ``a`` minus one (e.g. ``3I = I + 2I``
needs one adder, ``11I = 8I + 2I + I`` needs two, ``15I = 16I - I`` needs
one).  The bank also drives one output bus per alphabet across the CSHM
cluster — the paper's routing-complexity argument for reducing alphabets.
"""

from __future__ import annotations

from repro.asm.alphabet import AlphabetSet
from repro.fixedpoint.binary import clog2
from repro.hardware.components import (
    Component,
    Composite,
    Register,
    WireBus,
    best_adder,
)
from repro.hardware.technology import TechnologyModel

__all__ = ["csd_digits", "csd_adder_count", "PrecomputeBank"]


def csd_digits(value: int) -> int:
    """Number of non-zero digits in the canonical signed-digit form.

    >>> [csd_digits(a) for a in (1, 3, 5, 7, 9, 11, 13, 15)]
    [1, 2, 2, 2, 2, 3, 3, 2]
    """
    if value < 0:
        raise ValueError(f"csd_digits expects a non-negative value, got {value}")
    digits = 0
    while value:
        if value & 1:
            # choose +1 or -1 so the remaining value is even; taking the
            # residue in {-1, +1} that makes (value - r) divisible by 4
            # yields the canonical minimal-weight form
            residue = 2 - (value & 3) if (value & 3) == 3 else (value & 3)
            value -= residue if residue == 1 else -1
            digits += 1
        value >>= 1
    return digits


def csd_adder_count(alphabet: int) -> int:
    """Two-input adders needed to produce ``alphabet * I`` from ``I``.

    >>> csd_adder_count(1), csd_adder_count(3), csd_adder_count(11)
    (0, 1, 2)
    """
    return max(0, csd_digits(alphabet) - 1)


class PrecomputeBank(Composite):
    """The shared alphabet generator of a CSHM cluster.

    Parameters
    ----------
    tech, bits:
        Technology and input word width.
    alphabet_set:
        Alphabets to generate.  ``{1}`` yields an empty bank (the MAN case).
    share_units:
        MAC units sharing this bank.  The *caller* applies the 1/share
        amortisation when embedding the bank in a per-neuron cost.
    period_ps:
        Clock budget used to pick adder flavours.
    bus_length_um:
        Physical span of the distribution bus across the CSHM cluster
        (0 disables the bus model).
    """

    def __init__(self, tech: TechnologyModel, bits: int,
                 alphabet_set: AlphabetSet, share_units: int,
                 period_ps: float, bus_length_um: float = 0.0) -> None:
        super().__init__(tech, f"precompute{bits}b{len(alphabet_set)}a")
        self.bits = bits
        self.alphabet_set = alphabet_set
        self.share_units = share_units
        self.path_ps = 0.0
        nontrivial = [a for a in alphabet_set if a > 1]
        max_chain = max((csd_adder_count(a) for a in alphabet_set), default=0)
        for alphabet in nontrivial:
            width = bits + clog2(alphabet + 1)
            chain = csd_adder_count(alphabet)
            # adders in a chain share the cycle: budget each accordingly
            budget = period_ps / max(1, max_chain)
            chain_delay = 0.0
            for _ in range(chain):
                adder = self.add_child(best_adder(tech, width, budget))
                chain_delay += adder.delay_ps
            self.path_ps = max(self.path_ps, chain_delay)
            # each generated multiple is registered before distribution
            self.add_child(Register(tech, width), on_critical_path=False)
        if nontrivial and bus_length_um > 0:
            # one bus per alphabet (including the pass-through 1*I) spanning
            # the cluster
            self.add_child(
                WireBus(tech, width=bits + 4, n_buses=len(alphabet_set),
                        length_um=bus_length_um),
                on_critical_path=False,
            )

    @property
    def num_adders(self) -> int:
        """Total shift-add operators inside the bank."""
        return sum(csd_adder_count(a) for a in self.alphabet_set)

    @property
    def is_empty(self) -> bool:
        """True for the MAN bank (alphabet set {1})."""
        return not any(a > 1 for a in self.alphabet_set)
