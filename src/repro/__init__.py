"""repro — Multiplier-less Artificial Neurons (DATE 2016) reproduction.

A production-quality Python reproduction of "Multiplier-less Artificial
Neurons Exploiting Error Resiliency for Energy-Efficient Neural Computing"
(Sarwar, Venkataramani, Raghunathan, Roy — DATE 2016).

Subpackages
-----------
``repro.fixedpoint``
    Two's-complement words, Q-format quantisation, quartet layouts.
``repro.asm``
    Alphabet Set Multiplier: alphabet sets, decomposition, bit-accurate
    multiplier models, Algorithm-1 weight constraining, MAN programs.
``repro.hardware``
    45 nm-class gate-level cost model: components, neuron datapaths,
    CSHM processing engine, iso-speed sizing.
``repro.nn``
    numpy MLP/CNN substrate with backprop and quantised/ASM inference.
``repro.datasets``
    Seeded synthetic stand-ins for MNIST, YUV Faces, SVHN and TICH.
``repro.training``
    Constrained retraining (projected SGD), Algorithm-2 methodology,
    mixed per-layer alphabet plans (§VI.E).
``repro.experiments``
    Drivers reproducing every table and figure of the paper.
``repro.serving``
    Deployment stack: versioned compiled-model artifacts, a multi-model
    registry, dynamic micro-batching and an HTTP inference server that
    reports the paper's energy story live.
"""

__version__ = "1.1.0"

__all__ = ["__version__"]
