"""repro — Multiplier-less Artificial Neurons (DATE 2016) reproduction.

A production-quality Python reproduction of "Multiplier-less Artificial
Neurons Exploiting Error Resiliency for Energy-Efficient Neural Computing"
(Sarwar, Venkataramani, Raghunathan, Roy — DATE 2016).

The public API is the declarative pipeline::

    from repro import PipelineConfig, run_pipeline
    report = run_pipeline(PipelineConfig(app="mnist_mlp",
                                         designs=("conventional", "asm2")))

or, from a shell, the ``repro`` CLI (``repro run <config>``,
``repro experiment <name>``, ``repro serve``, ``repro list``).

Subpackages
-----------
``repro.pipeline``
    The declarative train → quantize → constrain → evaluate → energy →
    export → serve-check flow: ``PipelineConfig``, staged ``Pipeline``
    with caching/resume, ``PipelineReport``.
``repro.kernels``
    The compute-kernel layer under every forward path: dense / conv
    (im2col) / scaled-avg-pool / requantise kernels, each with a
    bit-exact ``reference`` implementation and a BLAS-lowered ``fast``
    one, behind ``get_backend("reference" | "fast" | "auto")``.
``repro.fixedpoint``
    Two's-complement words, Q-format quantisation, quartet layouts.
``repro.asm``
    Alphabet Set Multiplier: alphabet sets, decomposition, bit-accurate
    multiplier models, Algorithm-1 weight constraining, MAN programs.
``repro.hardware``
    45 nm-class gate-level cost model: components, neuron datapaths,
    CSHM processing engine, iso-speed sizing.
``repro.nn``
    numpy MLP/CNN substrate with backprop and quantised/ASM inference.
``repro.datasets``
    Seeded synthetic stand-ins for MNIST, YUV Faces, SVHN and TICH.
``repro.training``
    Constrained retraining (projected SGD), Algorithm-2 methodology,
    mixed per-layer alphabet plans (§VI.E).
``repro.explore``
    Parallel design-space exploration: declarative ``SearchSpace``,
    grid/random/sensitivity-guided strategies on a multiprocessing
    worker pool, resumable journals, Pareto frontiers over
    accuracy/energy/area/delay, frontier export into the serving
    registry.
``repro.experiments``
    Thin table-formatters over pipeline reports, reproducing every table
    and figure of the paper.
``repro.serving``
    Deployment stack: versioned compiled-model artifacts, a multi-model
    registry, dynamic micro-batching and an HTTP inference server that
    reports the paper's energy story live (JSON ``/stats`` +
    Prometheus ``/metrics``).
``repro.obs``
    Unified observability: thread-safe metrics registry (counters /
    gauges / histograms with interpolated quantiles, JSON + Prometheus
    exports), nestable tracing spans (wall/CPU/peak-RSS) streamed to
    Chrome-compatible JSONL (``repro run --trace``, ``repro stats``),
    and no-op-when-disabled profiling hooks at every hot boundary.
``repro.lint``
    Domain-aware static analysis (``repro lint``): AST rules that
    enforce the invariants above — seeded randomness, cache-key
    completeness, backend parity, exact-integer kernels, journal
    purity, metric hygiene (rules RPR001–RPR006, docs/invariants.md).
``repro.utils``
    Shared utilities (JSON serialization of result objects).
"""

__version__ = "1.9.0"

__all__ = ["__version__", "PipelineConfig", "Pipeline", "PipelineReport",
           "run_pipeline", "SearchSpace", "ExplorationReport",
           "run_exploration", "get_backend"]

_PIPELINE_EXPORTS = {"PipelineConfig", "Pipeline", "PipelineReport",
                     "run_pipeline"}
_EXPLORE_EXPORTS = {"SearchSpace", "ExplorationReport", "run_exploration"}
_KERNEL_EXPORTS = {"get_backend"}


def __getattr__(name: str):
    # lazy so `import repro` stays lightweight for fixed-point-only users
    if name in _PIPELINE_EXPORTS:
        from repro import pipeline
        return getattr(pipeline, name)
    if name in _EXPLORE_EXPORTS:
        from repro import explore
        return getattr(explore, name)
    if name in _KERNEL_EXPORTS:
        from repro import kernels
        return getattr(kernels, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
