"""Bit-accurate quantised inference with conventional or ASM multipliers.

This is the software twin of the paper's Verilog processing engine: synapse
weights live on an integer grid with a per-layer power-of-two scale,
activations are quantised between layers, accumulation is exact integer
arithmetic, and the multiplier is either exact (conventional) or an
:class:`~repro.asm.multiplier.AlphabetSetMultiplier` — whose effect reduces
to remapping each integer weight to the *effective weight* the select/shift/
add datapath realises.

Because constrain-then-multiply is exact (tested in
``tests/test_multiplier.py``), a network retrained under weight constraints
loses **nothing further** when deployed on the ASM engine; an unconstrained
network deployed with a reduced alphabet set degrades according to the
multiplier's fallback policy.  Both paths are exposed so the retraining
ablation can measure the difference.

The layer classes here hold the folded integer arrays and formats; the
arithmetic itself lives in :mod:`repro.kernels`, where each forward kernel
exists as a bit-exact ``reference`` implementation and a BLAS-lowered
``fast`` one.  A :class:`QuantizedNetwork` selects a backend (default
``reference``); the backends are bit-identical, so the choice only affects
speed.
"""

from __future__ import annotations

import copy
import time

import numpy as np

from repro import obs
from repro.asm.alphabet import AlphabetSet
from repro.asm.constraints import WeightConstrainer
from repro.asm.multiplier import (
    UNSUPPORTED_WEIGHT,
    FALLBACK_POLICIES,
    AlphabetSetMultiplier,
    effective_weight_table,
)
from repro.fixedpoint.qformat import QFormat, qformat_for_range
from repro.kernels import DEFAULT_EVAL_BATCH, batched_accuracy, get_backend
from repro.kernels.registry import KernelBackend
from repro.nn.activations import Activation, SigmoidLUT
from repro.nn.layers import Conv2D, Dense, Flatten, ScaledAvgPool2D
from repro.nn.network import Sequential

__all__ = ["QuantizedNetwork", "QuantizationSpec"]


class QuantizationSpec:
    """How to quantise a float network for the processing engine.

    Parameters
    ----------
    bits:
        Word width for weights and activations (8 or 12 in the paper).
    alphabet_set:
        ``None`` → conventional multiplier.  Otherwise the ASM's alphabet
        set; combine with ``constrainer`` for constrained-retrained weights
        or ``fallback`` for post-hoc deployment.
    constrainer:
        Optional :class:`WeightConstrainer` applied to the integer weights
        (Algorithm 1) before they reach the multiplier.
    fallback:
        ASM control-logic policy for unsupported quartets (see
        :mod:`repro.asm.multiplier`).
    """

    def __init__(self, bits: int, alphabet_set: AlphabetSet | None = None,
                 constrainer: WeightConstrainer | None = None,
                 fallback: str = "error") -> None:
        if fallback not in FALLBACK_POLICIES:
            raise ValueError(
                f"unknown fallback {fallback!r}; choose from "
                f"{FALLBACK_POLICIES}")
        self.bits = bits
        self.alphabet_set = alphabet_set
        self.constrainer = constrainer
        self.fallback = fallback
        if constrainer is not None and constrainer.bits != bits:
            raise ValueError(
                f"constrainer is {constrainer.bits}-bit, spec is {bits}-bit"
            )

    @property
    def multiplier(self) -> AlphabetSetMultiplier | None:
        """The spec's ASM model (``None`` for conventional specs).

        Constructed lazily: the weight-folding hot path only needs the
        process-wide memoized effective-weight table, not a multiplier
        object per spec — constrained sweeps build thousands of specs.
        """
        if self.alphabet_set is None:
            return None
        return AlphabetSetMultiplier(self.bits, self.alphabet_set,
                                     fallback=self.fallback)

    @classmethod
    def constrained(cls, bits: int, alphabet_set: AlphabetSet,
                    mode: str = "greedy",
                    fallback: str = "error") -> "QuantizationSpec":
        """The constrained-retraining deployment spec: *alphabet_set* with
        a matching Algorithm-1 :class:`WeightConstrainer` (the combination
        every driver builds by hand otherwise)."""
        return cls(bits, alphabet_set,
                   constrainer=WeightConstrainer(bits, alphabet_set,
                                                 mode=mode),
                   fallback=fallback)

    # ------------------------------------------------------------------
    def quantize_weights(self, weights: np.ndarray,
                         ) -> tuple[np.ndarray, QFormat]:
        """Float weights → (deployed integer weights, their Q-format).

        Pipeline: power-of-two scale → round to grid → optional Algorithm-1
        constraining → ASM effective-weight remap.  The remap goes through
        the process-wide memoized table
        (:func:`repro.asm.multiplier.effective_weight_table`), so repeated
        folds in constrained sweeps never rebuild it.
        """
        max_abs = float(np.max(np.abs(weights))) if weights.size else 1.0
        fmt = qformat_for_range(self.bits, max(max_abs, 1e-12))
        ints = fmt.quantize_array(weights)
        if self.constrainer is not None:
            ints = self.constrainer.constrain_array(ints)
        if self.alphabet_set is not None:
            table = effective_weight_table(self.bits, self.alphabet_set,
                                           self.fallback)
            deployed = table[ints + (1 << (self.bits - 1))]
            unsupported = deployed == UNSUPPORTED_WEIGHT
            if unsupported.any():
                from repro.asm.decompose import UnsupportedQuartetError

                bad = int(ints[unsupported].flat[0])
                raise UnsupportedQuartetError(abs(bad), self.alphabet_set)
            ints = deployed
        return ints, fmt

    @property
    def label(self) -> str:
        base = f"{self.bits}b"
        if self.alphabet_set is None:
            return f"{base}-conventional"
        suffix = "-constrained" if self.constrainer is not None else \
            f"-{self.fallback}"
        return f"{base}-asm{len(self.alphabet_set)}{suffix}"


class _QuantLayer:
    """Base for the quantised layer stack.

    Each parameterised subclass is constructible two ways: from a float
    layer (:meth:`from_layer`, the training → deployment path) or directly
    from the already-folded integer arrays (the
    :mod:`repro.serving.artifact` reload path).  Both construct the exact
    same object, so a reloaded network's forward pass is bit-identical.

    Layers carry data only; ``forward`` dispatches to a
    :class:`~repro.kernels.registry.KernelBackend` (the reference backend
    unless the caller selects another).
    """

    #: Serialisation tag used by :mod:`repro.serving.artifact`; also the
    #: kernel-dispatch key.
    kind = "base"

    name: str | None = None

    #: Alphabet set the layer's weights were folded for (``None`` =
    #: conventional multiplier).  Per-layer because mixed deployments
    #: (§VI.E) quantise each layer under its own spec; the serving stack
    #: costs energy from it.
    alphabets: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, x_fmt: QFormat,
                backend: KernelBackend | None = None,
                ) -> tuple[np.ndarray, QFormat]:
        raise NotImplementedError


class _QuantDense(_QuantLayer):
    kind = "dense"

    def __init__(self, w_int: np.ndarray, w_fmt: QFormat, bias: np.ndarray,
                 activation: Activation, act_fmt: QFormat,
                 lut: SigmoidLUT | None, is_output: bool = False,
                 name: str | None = None) -> None:
        self.w_int = np.ascontiguousarray(w_int, dtype=np.int64)
        self.w_fmt = w_fmt
        self.bias = np.asarray(bias, dtype=np.float64)
        self.activation = activation
        self.act_fmt = act_fmt
        self.lut = lut
        self.is_output = is_output  # set by QuantizedNetwork
        self.name = name

    @classmethod
    def from_layer(cls, layer: Dense, spec: QuantizationSpec,
                   act_fmt: QFormat, lut: SigmoidLUT | None) -> "_QuantDense":
        w_int, w_fmt = spec.quantize_weights(layer.params["W"])
        quant = cls(w_int, w_fmt, layer.params["b"].copy(), layer.activation,
                    act_fmt, lut if layer.activation.name == "sigmoid"
                    else None, name=layer.name)
        quant.alphabets = (tuple(spec.alphabet_set)
                           if spec.alphabet_set is not None else None)
        return quant

    def forward(self, x, x_fmt, backend=None):
        return _dispatch((backend or _REFERENCE), "dense", self, x, x_fmt)


class _QuantConv(_QuantLayer):
    kind = "conv"

    def __init__(self, w_int: np.ndarray, w_fmt: QFormat, bias: np.ndarray,
                 kernel: int, activation: Activation, act_fmt: QFormat,
                 lut: SigmoidLUT | None, name: str | None = None) -> None:
        self.w_int = np.ascontiguousarray(w_int, dtype=np.int64)
        self.w_fmt = w_fmt
        self.bias = np.asarray(bias, dtype=np.float64)
        self.kernel = kernel
        self.out_channels = self.w_int.shape[0]
        self.activation = activation
        self.act_fmt = act_fmt
        self.lut = lut
        self.name = name

    @classmethod
    def from_layer(cls, layer: Conv2D, spec: QuantizationSpec,
                   act_fmt: QFormat, lut: SigmoidLUT | None) -> "_QuantConv":
        w_int, w_fmt = spec.quantize_weights(layer.params["W"])
        quant = cls(w_int, w_fmt, layer.params["b"].copy(), layer.kernel,
                    layer.activation, act_fmt,
                    lut if layer.activation.name == "sigmoid" else None,
                    name=layer.name)
        quant.alphabets = (tuple(spec.alphabet_set)
                           if spec.alphabet_set is not None else None)
        return quant

    def forward(self, x, x_fmt, backend=None):
        return _dispatch((backend or _REFERENCE), "conv", self, x, x_fmt)


class _QuantPool(_QuantLayer):
    kind = "pool"

    def __init__(self, gain_int: np.ndarray, gain_fmt: QFormat,
                 bias: np.ndarray, size: int, activation: Activation,
                 act_fmt: QFormat, lut: SigmoidLUT | None,
                 name: str | None = None) -> None:
        self.gain_int = np.ascontiguousarray(gain_int, dtype=np.int64)
        self.gain_fmt = gain_fmt
        self.bias = np.asarray(bias, dtype=np.float64)
        self.size = size
        self.channels = self.gain_int.shape[0]
        self.activation = activation
        self.act_fmt = act_fmt
        self.lut = lut
        self.name = name

    @classmethod
    def from_layer(cls, layer: ScaledAvgPool2D, spec: QuantizationSpec,
                   act_fmt: QFormat, lut: SigmoidLUT | None) -> "_QuantPool":
        gain_int, gain_fmt = spec.quantize_weights(layer.params["gain"])
        quant = cls(gain_int, gain_fmt, layer.params["bias"].copy(),
                    layer.size, layer.activation, act_fmt,
                    lut if layer.activation.name == "sigmoid" else None,
                    name=layer.name)
        quant.alphabets = (tuple(spec.alphabet_set)
                           if spec.alphabet_set is not None else None)
        return quant

    def forward(self, x, x_fmt, backend=None):
        return _dispatch((backend or _REFERENCE), "pool", self, x, x_fmt)


class _QuantFlatten(_QuantLayer):
    kind = "flatten"

    def __init__(self, name: str | None = None) -> None:
        self.name = name

    def forward(self, x, x_fmt, backend=None):
        # pure reshape: backend-independent, dtype passes through
        return x.reshape(x.shape[0], -1), x_fmt


#: Default dispatch target when a layer is driven without a network.
_REFERENCE = get_backend("reference")

#: Kernels-layer fault-injection hook (``repro.faults.inject``): when
#: set, every dispatched kernel's output codes pass through it, so all
#: backends see *identical* faulted values.  ``None`` (the default)
#: costs one extra comparison per kernel call.
_FAULT_HOOK = None


def set_fault_hook(hook) -> None:
    """Install (or clear, with ``None``) the dispatch fault hook.

    The hook is ``hook(layer, codes, fmt) -> codes``; it sits *after*
    the backend kernel, which is what keeps reference and fast backends
    bit-identical under fault.  Owned by
    :func:`repro.faults.inject.fault_session` — use that, not this.
    """
    global _FAULT_HOOK
    _FAULT_HOOK = hook


def _dispatch(backend, kernel: str, layer, x, x_fmt):
    """Run one forward kernel, accounting the call when obs is enabled.

    The disabled path costs one boolean check (<1% on the kernels
    micro-bench, enforced by ``benchmarks/bench_obs_overhead.py``); the
    enabled path records per-(backend, kernel) call counts and
    cumulative seconds into ``kernels.calls`` / ``kernels.seconds``.
    """
    fn = getattr(backend, kernel)
    if not obs.enabled():
        out = fn(layer, x, x_fmt)
        if _FAULT_HOOK is not None:
            out = (_FAULT_HOOK(layer, out[0], out[1]), out[1])
        return out
    started = time.perf_counter()
    out = fn(layer, x, x_fmt)
    obs.record_kernel(backend.name, kernel,
                      time.perf_counter() - started)
    if _FAULT_HOOK is not None:
        out = (_FAULT_HOOK(layer, out[0], out[1]), out[1])
    return out


class QuantizedNetwork:
    """A float :class:`Sequential` lowered onto the integer engine.

    Use :meth:`from_float`; inputs to :meth:`predict`/:meth:`accuracy` are
    the *float* arrays — they are quantised to the activation format on
    entry, exactly as the engine's input interface would.

    ``backend`` selects the compute kernels (``"reference"`` / ``"fast"``
    / ``"auto"`` — see :mod:`repro.kernels`); all backends produce
    bit-identical outputs, so it is a speed knob, not a semantics knob.
    """

    def __init__(self, layers: list[_QuantLayer], act_fmt: QFormat,
                 spec: QuantizationSpec, name: str = "network",
                 input_spatial: tuple[int, int] | None = None,
                 use_lut: bool = False,
                 backend: str | KernelBackend = "reference") -> None:
        self.layers = layers
        self.act_fmt = act_fmt
        self.spec = spec
        self.name = name
        self.input_spatial = input_spatial
        self.use_lut = use_lut
        self._backend = get_backend(backend)

    @classmethod
    def from_float(cls, network: Sequential, spec: QuantizationSpec,
                   use_lut: bool = False,
                   layer_specs: list[QuantizationSpec] | None = None,
                   backend: str | KernelBackend = "reference",
                   ) -> "QuantizedNetwork":
        """Lower *network* under *spec*.

        ``use_lut=True`` routes sigmoid activations through the hardware
        :class:`SigmoidLUT` instead of the float sigmoid + rounding.

        ``layer_specs`` optionally overrides the spec per *parameterised*
        layer (Dense/Conv/Pool, in network order) — the mixed-alphabet
        deployment of the paper's §VI.E.  All specs must share ``bits``.
        """
        act_fmt = QFormat(spec.bits, spec.bits - 1)  # activations in [-1, 1)
        lut = SigmoidLUT(output_bits=spec.bits - 1) if use_lut else None
        param_layers = [layer for layer in network.layers
                        if isinstance(layer, (Dense, Conv2D, ScaledAvgPool2D))]
        if layer_specs is not None:
            if len(layer_specs) != len(param_layers):
                raise ValueError(
                    f"{len(layer_specs)} layer specs for "
                    f"{len(param_layers)} parameterised layers"
                )
            if any(s.bits != spec.bits for s in layer_specs):
                raise ValueError("all layer specs must share the word width")
        spec_iter = iter(layer_specs or [])

        def next_spec() -> QuantizationSpec:
            return next(spec_iter) if layer_specs is not None else spec

        layers: list[_QuantLayer] = []
        for layer in network.layers:
            if isinstance(layer, Dense):
                layers.append(_QuantDense.from_layer(
                    layer, next_spec(), act_fmt, lut))
            elif isinstance(layer, Conv2D):
                layers.append(_QuantConv.from_layer(
                    layer, next_spec(), act_fmt, lut))
            elif isinstance(layer, ScaledAvgPool2D):
                layers.append(_QuantPool.from_layer(
                    layer, next_spec(), act_fmt, lut))
            elif isinstance(layer, Flatten):
                layers.append(_QuantFlatten(name=layer.name))
            else:
                raise TypeError(
                    f"cannot quantise layer type {type(layer).__name__}"
                )
        dense_like = [q for q in layers
                      if isinstance(q, (_QuantDense,))]
        if dense_like:
            dense_like[-1].is_output = True
        return cls(layers, act_fmt, spec, name=network.name,
                   input_spatial=network.input_spatial, use_lut=use_lut,
                   backend=backend)

    # ------------------------------------------------------------------
    # backend selection
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """Name of the selected kernel backend."""
        return self._backend.name

    def with_backend(self, backend: str | KernelBackend,
                     ) -> "QuantizedNetwork":
        """A shallow copy (shared layers) running on *backend*."""
        clone = copy.copy(self)
        clone._backend = get_backend(backend)
        return clone

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Raw output scores for a float input batch."""
        backend = self._backend
        codes = backend.quantize_input(x, self.act_fmt)
        fmt = self.act_fmt
        for layer in self.layers:
            codes, fmt = layer.forward(codes, fmt, backend)
        return codes  # final dense returns real scores

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(x), axis=1)

    def dense_layer_inputs(self, x: np.ndarray,
                           ) -> list[tuple[_QuantDense, np.ndarray]]:
        """Per-dense-layer integer input codes for a float batch.

        Runs one forward pass and captures, for every dense layer, the
        int64 activation codes that the engine would broadcast on the
        input bus while evaluating it — the operand streams the
        cycle-accurate simulator
        (:class:`~repro.hardware.simulator.CycleAccurateEngine`) needs
        for data-dependent toggle energy.  Conv/pool layers are skipped
        (the simulator models the dense MAC schedule); codes are exact
        regardless of the selected kernel backend.
        """
        backend = self._backend
        codes = backend.quantize_input(x, self.act_fmt)
        fmt = self.act_fmt
        captured: list[tuple[_QuantDense, np.ndarray]] = []
        for layer in self.layers:
            if isinstance(layer, _QuantDense):
                captured.append((layer, codes.astype(np.int64)))
            codes, fmt = layer.forward(codes, fmt, backend)
        return captured

    def accuracy(self, x: np.ndarray, labels: np.ndarray,
                 batch_size: int = DEFAULT_EVAL_BATCH) -> float:
        return batched_accuracy(self.predict, x, labels,
                                batch_size=batch_size)

    @property
    def weight_layers(self) -> list[_QuantLayer]:
        """Quantised layers that carry a synapse matrix."""
        return [q for q in self.layers
                if isinstance(q, (_QuantDense, _QuantConv))]

    @property
    def deployment_label(self) -> str:
        """Spec label describing the *actual* deployment.

        Uniform networks report ``spec.label``; mixed (§VI.E) networks —
        where per-layer specs diverge from the base spec — report each
        layer's alphabet set, so reports and artifact manifests never
        describe a mixed ASM deployment as conventional.
        """
        param_layers = [q for q in self.layers if q.kind != "flatten"]
        if len({q.alphabets for q in param_layers}) <= 1:
            return self.spec.label

        def label(alphabets: tuple[int, ...] | None) -> str:
            if alphabets is None:
                return "conv"
            return "{" + ",".join(str(a) for a in alphabets) + "}"

        return (f"{self.spec.bits}b-mixed("
                + "|".join(label(q.alphabets) for q in param_layers)
                + ")-constrained")

    # ------------------------------------------------------------------
    def export(self, path: str, name: str | None = None) -> str:
        """Persist this network as a serving artifact bundle at *path*.

        Convenience hook into :func:`repro.serving.artifact.save_artifact`;
        the bundle reloads (via :func:`repro.serving.artifact.load_artifact`
        or :class:`repro.serving.compiled.CompiledModel`) to a network whose
        forward pass is bit-identical to this one.
        """
        from repro.serving.artifact import save_artifact

        return save_artifact(self, path, name=name)
