"""Mini-batch trainer with saturation detection.

Algorithm 2 trains "till the training reaches near saturation, i.e.
minuscule improvement in recognition accuracy can be achieved through more
training".  :class:`Trainer` implements that stopping rule: training ends
when the best validation accuracy has not improved by ``min_improvement``
for ``patience`` consecutive epochs (or when ``max_epochs`` runs out).

A ``post_step`` hook runs after every optimiser update; constrained
retraining plugs its weight projection in there (projected SGD).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.nn.losses import Loss, get_loss
from repro.nn.network import Sequential
from repro.nn.optim import SGD

__all__ = ["TrainHistory", "Trainer"]


@dataclass
class TrainHistory:
    """Per-epoch record of one training run."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        return len(self.losses)

    @property
    def best_accuracy(self) -> float:
        return max(self.accuracies) if self.accuracies else 0.0

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else 0.0


class Trainer:
    """Mini-batch SGD training loop with plateau-based early stopping."""

    def __init__(self, network: Sequential, optimizer: SGD,
                 loss: str | Loss = "cross_entropy",
                 batch_size: int = 32,
                 patience: int = 3,
                 min_improvement: float = 1e-3,
                 post_step: Callable[[], None] | None = None,
                 rng: np.random.Generator | None = None) -> None:
        if batch_size < 1:
            raise ValueError("batch size must be positive")
        if patience < 1:
            raise ValueError("patience must be positive")
        self.network = network
        self.optimizer = optimizer
        self.loss = get_loss(loss)
        self.batch_size = batch_size
        self.patience = patience
        self.min_improvement = min_improvement
        self.post_step = post_step
        self.rng = rng or np.random.default_rng(0)

    # ------------------------------------------------------------------
    def train_epoch(self, x: np.ndarray, y_onehot: np.ndarray) -> float:
        """One shuffled pass over the data; returns the mean batch loss."""
        if not obs.enabled():
            return self._train_epoch(x, y_onehot)[0]
        registry = obs.registry()
        started = time.perf_counter()
        mean_loss, batches = self._train_epoch(
            x, y_onehot,
            batch_counter=registry.counter("train.batches"),
            sample_counter=registry.counter("train.samples"))
        # one dispatch record per epoch: per-batch timing would dwarf
        # the work being measured
        obs.record_kernel(self.network.train_backend, "train_step",
                          time.perf_counter() - started, calls=batches)
        return mean_loss

    def _train_epoch(self, x, y_onehot, batch_counter=None,
                     sample_counter=None):
        order = self.rng.permutation(len(x))
        total = 0.0
        batches = 0
        for start in range(0, len(x), self.batch_size):
            index = order[start:start + self.batch_size]
            outputs = self.network.forward(x[index], training=True)
            loss_value, grad = self.loss(outputs, y_onehot[index])
            self.network.backward(grad)
            self.optimizer.step()
            if self.post_step is not None:
                self.post_step()
            total += loss_value
            batches += 1
            if batch_counter is not None:
                batch_counter.inc()
                sample_counter.inc(len(index))
        return total / max(1, batches), batches

    def fit(self, x: np.ndarray, y_onehot: np.ndarray,
            x_val: np.ndarray, y_val_labels: np.ndarray,
            max_epochs: int = 50, verbose: bool = False) -> TrainHistory:
        """Train until validation accuracy saturates (Algorithm 2 wording).

        Returns the epoch-by-epoch history; the network keeps its
        best-validation-accuracy parameters on exit.
        """
        if len(x) != len(y_onehot):
            raise ValueError("training inputs and targets differ in length")
        if len(x_val) != len(y_val_labels):
            raise ValueError(
                "validation inputs and labels differ in length")
        history = TrainHistory()
        best_accuracy = -1.0
        best_state = None
        stale_epochs = 0
        for epoch in range(max_epochs):
            with obs.span("train.epoch", epoch=epoch) as epoch_span:
                self.optimizer.set_epoch(epoch)
                loss_value = self.train_epoch(x, y_onehot)
                accuracy = self.network.accuracy(x_val, y_val_labels)
                epoch_span.set(loss=round(loss_value, 6),
                               accuracy=round(accuracy, 6))
            history.losses.append(loss_value)
            history.accuracies.append(accuracy)
            if verbose:  # pragma: no cover - console noise
                print(f"epoch {epoch:3d}: loss={loss_value:.4f} "
                      f"val_acc={accuracy:.4f}")
            if accuracy > best_accuracy + self.min_improvement:
                best_accuracy = accuracy
                best_state = self.network.state()
                stale_epochs = 0
            else:
                stale_epochs += 1
                if stale_epochs >= self.patience:
                    break  # near saturation
        if best_state is not None:
            self.network.load_state(best_state)
        return history
