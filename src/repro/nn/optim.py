"""Optimisers and learning-rate schedules for the trainer."""

from __future__ import annotations

import numpy as np

from repro.nn.network import Sequential

__all__ = ["SGD", "StepDecay", "ConstantRate"]


class ConstantRate:
    """Learning rate that never changes."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"learning rate must be positive, got {rate}")
        self.rate = rate

    def __call__(self, epoch: int) -> float:
        return self.rate


class StepDecay:
    """Multiply the rate by *factor* every *every* epochs."""

    def __init__(self, rate: float, factor: float = 0.5,
                 every: int = 10) -> None:
        if rate <= 0 or not 0 < factor <= 1 or every < 1:
            raise ValueError("invalid step-decay parameters")
        self.rate = rate
        self.factor = factor
        self.every = every

    def __call__(self, epoch: int) -> float:
        return self.rate * self.factor ** (epoch // self.every)


class SGD:
    """Stochastic gradient descent with classical momentum.

    ``step`` reads each trainable layer's ``grads`` (filled by the last
    backward pass) and updates its ``params`` in place.
    """

    def __init__(self, network: Sequential, learning_rate: float = 0.1,
                 momentum: float = 0.9,
                 schedule: ConstantRate | StepDecay | None = None) -> None:
        if not 0 <= momentum < 1:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.network = network
        self.schedule = schedule or ConstantRate(learning_rate)
        self.momentum = momentum
        self.epoch = 0
        self._velocity: dict[tuple[int, str], np.ndarray] = {}

    @property
    def learning_rate(self) -> float:
        return self.schedule(self.epoch)

    def set_epoch(self, epoch: int) -> None:
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        self.epoch = epoch

    def step(self) -> None:
        """Apply one update from the gradients of the last backward pass.

        Dispatches to the network's training-kernel backend
        (:mod:`repro.kernels.training`): the reference kernel is the
        classic per-slot loop, the fast kernel the in-place equivalent —
        bit-identical parameters and velocities either way.
        """
        self.network.train_kernel.sgd_update(
            self.network, self._velocity, self.learning_rate,
            self.momentum)

    def reset(self) -> None:
        """Clear momentum state (used when restarting from a restore point)."""
        self._velocity.clear()
        self.epoch = 0
