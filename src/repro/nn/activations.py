"""Activation functions for the numpy NN substrate.

The paper's networks use soft-limiting neurons (§II); we provide the classic
set.  Each activation is a small stateless object with ``forward`` and
``derivative`` (as a function of the *pre-activation* input), so layers can
run backprop without storing framework graphs.

:class:`SigmoidLUT` is the hardware view: the quantised inference engine
looks the sigmoid up in a ``2**input_bits``-entry ROM exactly like the
:class:`repro.hardware.components.ActivationLUT` it is costed as.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Activation", "Identity", "Sigmoid", "Tanh", "ReLU",
           "SigmoidLUT", "softmax", "get_activation"]


class Activation:
    """Base class: subclasses implement ``forward`` and ``derivative``."""

    name = "base"

    def forward(self, z: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def derivative(self, z: np.ndarray) -> np.ndarray:
        """d forward / d z evaluated elementwise at *z*."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__}>"


class Identity(Activation):
    """Linear pass-through (used before a fused softmax/cross-entropy)."""

    name = "identity"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return z

    def derivative(self, z: np.ndarray) -> np.ndarray:
        return np.ones_like(z)


class Sigmoid(Activation):
    """Logistic sigmoid, the paper's soft-limiting neuron."""

    name = "sigmoid"

    def forward(self, z: np.ndarray) -> np.ndarray:
        # numerically stable split for positive/negative inputs
        out = np.empty_like(z, dtype=np.float64)
        positive = z >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
        ez = np.exp(z[~positive])
        out[~positive] = ez / (1.0 + ez)
        return out

    def derivative(self, z: np.ndarray) -> np.ndarray:
        s = self.forward(z)
        return s * (1.0 - s)


class Tanh(Activation):
    """Hyperbolic tangent (classic LeNet nonlinearity)."""

    name = "tanh"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.tanh(z)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        t = np.tanh(z)
        return 1.0 - t * t


class ReLU(Activation):
    """Rectified linear unit."""

    name = "relu"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.maximum(z, 0.0)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        return (z > 0).astype(np.float64)


def softmax(z: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-subtraction for stability."""
    shifted = z - z.max(axis=-1, keepdims=True)
    ez = np.exp(shifted)
    return ez / ez.sum(axis=-1, keepdims=True)


class SigmoidLUT:
    """Fixed-point sigmoid lookup table (the hardware activation unit).

    The accumulator value is clamped to ``[-clip, +clip)``, quantised to
    ``input_bits`` and used to index a precomputed sigmoid table whose
    entries are quantised to ``output_bits`` unsigned fractional codes.
    """

    def __init__(self, input_bits: int = 8, output_bits: int = 8,
                 clip: float = 8.0) -> None:
        if input_bits < 2 or output_bits < 1:
            raise ValueError("invalid LUT geometry")
        if clip <= 0:
            raise ValueError("clip must be positive")
        self.input_bits = input_bits
        self.output_bits = output_bits
        self.clip = clip
        levels = 1 << input_bits
        grid = (np.arange(levels) - levels // 2) * (2 * clip / levels)
        out_scale = (1 << output_bits) - 1
        self._table = np.round(Sigmoid().forward(grid) * out_scale)
        self._out_scale = out_scale

    def __call__(self, values: np.ndarray) -> np.ndarray:
        """Map real accumulator *values* to quantised sigmoid outputs in
        [0, 1] (on the ``1/(2**output_bits - 1)`` grid)."""
        levels = 1 << self.input_bits
        step = 2 * self.clip / levels
        index = np.floor(np.asarray(values) / step) + levels // 2
        index = np.clip(index, 0, levels - 1).astype(np.int64)
        return self._table[index] / self._out_scale

    @property
    def table(self) -> np.ndarray:
        """The raw ROM contents (integer codes)."""
        return self._table.copy()


_REGISTRY = {
    "identity": Identity,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "relu": ReLU,
}


def get_activation(name: str | Activation) -> Activation:
    """Resolve an activation by name (or pass an instance through).

    >>> get_activation("sigmoid").name
    'sigmoid'
    """
    if isinstance(name, Activation):
        return name
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
