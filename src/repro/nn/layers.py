"""Trainable layers for the numpy NN substrate.

Each layer owns its parameters (``params`` dict) and the gradients from the
last backward pass (``grads`` dict).  ``forward(x, training=True)`` caches
whatever the backward pass needs; ``backward(grad_out)`` returns the
gradient with respect to the layer input.

The layer set covers everything Table IV requires:

* :class:`Dense` — fully connected with an activation,
* :class:`Conv2D` — valid stride-1 convolution with an optional LeNet-style
  connection table,
* :class:`ScaledAvgPool2D` — LeNet subsampling: average pooling with a
  trainable gain and bias per map,
* :class:`Flatten` — shape adapter between conv and dense stacks.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import Activation, get_activation
from repro.nn.conv_utils import col2im, conv_output_size, im2col

__all__ = ["Layer", "Dense", "Conv2D", "ScaledAvgPool2D", "Flatten"]


class Layer:
    """Base class for all layers."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self._cache: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------
    @property
    def num_params(self) -> int:
        """Trainable parameter count (Table IV's synapse numbers)."""
        return sum(p.size for p in self.params.values())

    @property
    def is_trainable(self) -> bool:
        return bool(self.params)

    def state(self) -> dict[str, np.ndarray]:
        """Copy of the parameters (for restore points, Algorithm 2 step 2)."""
        return {key: value.copy() for key, value in self.params.items()}

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        for key, value in state.items():
            if key not in self.params:
                raise KeyError(f"layer {self.name} has no parameter {key!r}")
            if self.params[key].shape != value.shape:
                raise ValueError(
                    f"layer {self.name} parameter {key!r}: shape "
                    f"{value.shape} != {self.params[key].shape}"
                )
            self.params[key] = value.copy()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class Dense(Layer):
    """Fully connected layer: ``y = act(x W + b)``.

    Weight init is the classic fan-in-scaled uniform (LeCun), matching the
    era of the paper's baselines.
    """

    def __init__(self, in_features: int, out_features: int,
                 activation: str | Activation = "sigmoid",
                 rng: np.random.Generator | None = None,
                 name: str | None = None) -> None:
        super().__init__(name or f"dense{in_features}x{out_features}")
        if in_features < 1 or out_features < 1:
            raise ValueError("dense layer needs positive dimensions")
        self.in_features = in_features
        self.out_features = out_features
        self.activation = get_activation(activation)
        rng = rng or np.random.default_rng(0)
        bound = 1.0 / np.sqrt(in_features)
        self.params = {
            "W": rng.uniform(-bound, bound, size=(in_features, out_features)),
            "b": np.zeros(out_features),
        }

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected (batch, {self.in_features}), "
                f"got {x.shape}"
            )
        z = x @ self.params["W"] + self.params["b"]
        if training:
            self._cache = {"x": x, "z": z}
        return self.activation.forward(z)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x, z = self._cache["x"], self._cache["z"]
        grad_z = grad_out * self.activation.derivative(z)
        self.grads = {
            "W": x.T @ grad_z,
            "b": grad_z.sum(axis=0),
        }
        return grad_z @ self.params["W"].T

    @property
    def weight_matrix(self) -> np.ndarray:
        """The synapse matrix (used by quantised inference)."""
        return self.params["W"]


class Conv2D(Layer):
    """Valid stride-1 convolution with optional connection table.

    ``connection_table`` is a boolean ``(out_channels, in_channels)`` mask;
    masked-out kernel slices are frozen at zero exactly like LeNet-5's C3
    partial connectivity.  (Table IV's LeNet uses full connectivity, but the
    table is supported for the classic variant and tested.)
    """

    def __init__(self, in_channels: int, out_channels: int, kernel: int,
                 activation: str | Activation = "tanh",
                 connection_table: np.ndarray | None = None,
                 rng: np.random.Generator | None = None,
                 name: str | None = None) -> None:
        super().__init__(name or f"conv{in_channels}to{out_channels}k{kernel}")
        if min(in_channels, out_channels, kernel) < 1:
            raise ValueError("conv layer needs positive dimensions")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.activation = get_activation(activation)
        if connection_table is not None:
            connection_table = np.asarray(connection_table, dtype=bool)
            if connection_table.shape != (out_channels, in_channels):
                raise ValueError(
                    f"connection table shape {connection_table.shape} != "
                    f"({out_channels}, {in_channels})"
                )
        self.connection_table = connection_table
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel * kernel
        bound = 1.0 / np.sqrt(fan_in)
        weights = rng.uniform(
            -bound, bound, size=(out_channels, in_channels, kernel, kernel))
        if connection_table is not None:
            weights *= connection_table[:, :, None, None]
        self.params = {"W": weights, "b": np.zeros(out_channels)}

    @property
    def num_params(self) -> int:
        """Connection-table-aware count: masked slices are not trainable."""
        if self.connection_table is None:
            return super().num_params
        k2 = self.kernel * self.kernel
        return int(self.connection_table.sum()) * k2 + self.out_channels

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected (batch, {self.in_channels}, h, w), "
                f"got {x.shape}"
            )
        batch, _, height, width = x.shape
        out_h = conv_output_size(height, self.kernel)
        out_w = conv_output_size(width, self.kernel)
        cols = im2col(x, self.kernel)                      # (b, p, ckk)
        kernels = self.params["W"].reshape(self.out_channels, -1)
        z = cols @ kernels.T + self.params["b"]            # (b, p, out_ch)
        z = z.transpose(0, 2, 1).reshape(batch, self.out_channels,
                                         out_h, out_w)
        if training:
            self._cache = {"x_shape": x.shape, "cols": cols, "z": z}
        return self.activation.forward(z)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        cols = self._cache["cols"]
        z = self._cache["z"]
        x_shape = self._cache["x_shape"]
        batch = grad_out.shape[0]
        grad_z = grad_out * self.activation.derivative(z)
        flat = grad_z.reshape(batch, self.out_channels, -1)  # (b, oc, p)
        grad_w = np.einsum("bop,bpk->ok", flat, cols).reshape(
            self.params["W"].shape)
        if self.connection_table is not None:
            grad_w *= self.connection_table[:, :, None, None]
        self.grads = {"W": grad_w, "b": flat.sum(axis=(0, 2))}
        kernels = self.params["W"].reshape(self.out_channels, -1)
        grad_cols = np.einsum("bop,ok->bpk", flat, kernels)
        return col2im(grad_cols, x_shape, self.kernel)


class ScaledAvgPool2D(Layer):
    """LeNet subsampling: ``y = act(gain_c * avgpool(x) + bias_c)``.

    One trainable gain and bias per channel — 2 parameters per map, which is
    exactly how tiny-cnn counts LeNet's S2/S4 layers.
    """

    def __init__(self, channels: int, size: int = 2,
                 activation: str | Activation = "tanh",
                 name: str | None = None) -> None:
        super().__init__(name or f"pool{channels}s{size}")
        if channels < 1 or size < 1:
            raise ValueError("pool layer needs positive dimensions")
        self.channels = channels
        self.size = size
        self.activation = get_activation(activation)
        self.params = {"gain": np.ones(channels), "bias": np.zeros(channels)}

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        batch, channels, height, width = x.shape
        if channels != self.channels:
            raise ValueError(
                f"{self.name}: expected {self.channels} channels, "
                f"got {channels}"
            )
        if height % self.size or width % self.size:
            raise ValueError(
                f"{self.name}: input {height}x{width} not divisible "
                f"by {self.size}"
            )
        s = self.size
        pooled = x.reshape(batch, channels, height // s, s,
                           width // s, s).mean(axis=(3, 5))
        z = pooled * self.params["gain"][:, None, None] \
            + self.params["bias"][:, None, None]
        if training:
            self._cache = {"x_shape": x.shape, "pooled": pooled, "z": z}
        return self.activation.forward(z)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        pooled = self._cache["pooled"]
        z = self._cache["z"]
        batch, channels, height, width = self._cache["x_shape"]
        grad_z = grad_out * self.activation.derivative(z)
        self.grads = {
            "gain": (grad_z * pooled).sum(axis=(0, 2, 3)),
            "bias": grad_z.sum(axis=(0, 2, 3)),
        }
        s = self.size
        grad_pool = grad_z * self.params["gain"][:, None, None] / (s * s)
        return np.repeat(np.repeat(grad_pool, s, axis=2), s, axis=3)


class Flatten(Layer):
    """Reshape ``(batch, ...)`` to ``(batch, features)``."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name or "flatten")

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._cache = {"shape": x.shape}
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._cache["shape"])
