"""numpy neural-network substrate: layers, training, quantised inference."""

from repro.nn.activations import (
    Activation,
    Identity,
    ReLU,
    Sigmoid,
    SigmoidLUT,
    Tanh,
    get_activation,
    softmax,
)
from repro.nn.conv_utils import col2im, conv_output_size, im2col
from repro.nn.layers import Conv2D, Dense, Flatten, Layer, ScaledAvgPool2D
from repro.nn.losses import CrossEntropyLoss, Loss, MSELoss, get_loss
from repro.nn.network import Sequential
from repro.nn.optim import SGD, ConstantRate, StepDecay
from repro.nn.quantized import QuantizationSpec, QuantizedNetwork
from repro.nn.trainer import Trainer, TrainHistory

__all__ = [
    "Activation", "Identity", "ReLU", "Sigmoid", "SigmoidLUT", "Tanh",
    "get_activation", "softmax",
    "col2im", "conv_output_size", "im2col",
    "Conv2D", "Dense", "Flatten", "Layer", "ScaledAvgPool2D",
    "CrossEntropyLoss", "Loss", "MSELoss", "get_loss",
    "Sequential",
    "SGD", "ConstantRate", "StepDecay",
    "QuantizationSpec", "QuantizedNetwork",
    "Trainer", "TrainHistory",
]
