"""im2col / col2im helpers for the convolution layers.

Valid (no padding), stride-1 convolutions are all LeNet needs; keeping the
helpers specialised makes them simple enough to verify by hand in the tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["im2col", "col2im", "conv_output_size"]


def conv_output_size(input_size: int, kernel: int) -> int:
    """Spatial output size of a valid stride-1 convolution.

    >>> conv_output_size(32, 5)
    28
    """
    if kernel > input_size:
        raise ValueError(
            f"kernel {kernel} larger than input {input_size}"
        )
    return input_size - kernel + 1


def im2col(x: np.ndarray, kernel: int) -> np.ndarray:
    """Unfold ``(batch, ch, h, w)`` into ``(batch, out_h*out_w, ch*k*k)``.

    Row ``p`` of the unfolded matrix holds the receptive field of output
    position ``p`` flattened channel-major, so a convolution becomes a
    matmul with the flattened kernels.
    """
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel)
    out_w = conv_output_size(width, kernel)
    windows = np.lib.stride_tricks.sliding_window_view(
        x, (kernel, kernel), axis=(2, 3))
    # windows: (batch, ch, out_h, out_w, k, k)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch, out_h * out_w, channels * kernel * kernel)
    return np.ascontiguousarray(cols)


def col2im(cols: np.ndarray, x_shape: tuple[int, int, int, int],
           kernel: int) -> np.ndarray:
    """Fold ``(batch, out_h*out_w, ch*k*k)`` back onto the input grid,
    accumulating overlaps — the adjoint of :func:`im2col`, used by the
    convolution backward pass."""
    batch, channels, height, width = x_shape
    out_h = conv_output_size(height, kernel)
    out_w = conv_output_size(width, kernel)
    expected = (batch, out_h * out_w, channels * kernel * kernel)
    if cols.shape != expected:
        raise ValueError(f"cols shape {cols.shape}, expected {expected}")
    blocks = cols.reshape(batch, out_h, out_w, channels, kernel, kernel)
    x = np.zeros(x_shape, dtype=cols.dtype)
    for di in range(kernel):
        for dj in range(kernel):
            x[:, :, di:di + out_h, dj:dj + out_w] += \
                blocks[:, :, :, :, di, dj].transpose(0, 3, 1, 2)
    return x
