"""Sequential network container.

Holds an ordered list of layers, runs forward/backward passes, computes
classification accuracy, snapshots/restores parameters (the restore point of
Algorithm 2) and exports the compute topology the hardware engine costs.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.engine import LayerWork, NetworkTopology
from repro.kernels.evaluate import DEFAULT_EVAL_BATCH, batched_accuracy
from repro.kernels.registry import KernelBackend, get_backend
from repro.nn.layers import Conv2D, Dense, Flatten, Layer, ScaledAvgPool2D

__all__ = ["Sequential"]


class Sequential:
    """An ordered stack of layers forming a feedforward network.

    ``input_spatial`` (e.g. ``(32, 32)``) must be given for networks whose
    first compute layer is a convolution; it seeds the spatial-size tracking
    used when exporting the hardware topology and counting neurons.
    """

    def __init__(self, layers: list[Layer], name: str = "network",
                 input_spatial: tuple[int, int] | None = None) -> None:
        if not layers:
            raise ValueError("a network needs at least one layer")
        self.layers = list(layers)
        self.name = name
        self.input_spatial = input_spatial
        # the training-kernel backend (repro.kernels); "reference" is
        # the historical per-layer loop, so direct users see byte-for-
        # byte the old behaviour until they (or PipelineConfig's
        # train_backend knob) opt into the planned fast path — which is
        # bit-identical anyway.
        self._train_kernel: KernelBackend = get_backend("reference")

    # ------------------------------------------------------------------
    # inference / training passes
    # ------------------------------------------------------------------
    @property
    def train_kernel(self) -> KernelBackend:
        """The resolved training-kernel backend instance."""
        return self._train_kernel

    @property
    def train_backend(self) -> str:
        """Registry name of the active training-kernel backend."""
        return self._train_kernel.name

    def set_train_backend(self, name: str | KernelBackend) -> None:
        """Select the training kernels ("reference" | "fast" | "auto").

        All backends are bit-identical (``tests/test_train_backends.py``);
        the choice is a speed knob and stays out of every stage cache
        key, exactly like the inference/simulation backends.
        """
        self._train_kernel = get_backend(name)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self._train_kernel.train_forward(self, x, training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self._train_kernel.train_backward(self, grad)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class index per sample (argmax over the output layer)."""
        return np.argmax(self.forward(x, training=False), axis=1)

    def accuracy(self, x: np.ndarray, labels: np.ndarray,
                 batch_size: int = DEFAULT_EVAL_BATCH) -> float:
        """Classification accuracy on ``(x, integer labels)``, batched so
        large test sets do not blow up memory."""
        return batched_accuracy(self.predict, x, labels,
                                batch_size=batch_size)

    # ------------------------------------------------------------------
    # parameter management
    # ------------------------------------------------------------------
    @property
    def trainable_layers(self) -> list[Layer]:
        return [layer for layer in self.layers if layer.is_trainable]

    @property
    def num_params(self) -> int:
        """Trainable parameter count — Table IV's synapse totals."""
        return sum(layer.num_params for layer in self.layers)

    @property
    def num_neurons(self) -> int:
        """Neuron count as Table IV counts it (outputs of every compute
        layer; input nodes excluded)."""
        return self.topology().total_neurons

    def state(self) -> list[dict[str, np.ndarray]]:
        """Deep copy of all parameters (Algorithm 2's restore point)."""
        return [layer.state() for layer in self.layers]

    def load_state(self, state: list[dict[str, np.ndarray]]) -> None:
        if len(state) != len(self.layers):
            raise ValueError(
                f"state has {len(state)} layers, network has "
                f"{len(self.layers)}"
            )
        for layer, entry in zip(self.layers, state):
            layer.load_state(entry)

    def save(self, path: str) -> None:
        """Serialise parameters to an ``.npz`` file."""
        arrays = {}
        for index, layer in enumerate(self.layers):
            for key, value in layer.params.items():
                arrays[f"{index}:{key}"] = value
        np.savez(path, **arrays)

    def load(self, path: str) -> None:
        """Restore parameters written by :meth:`save`."""
        with np.load(path) as data:
            for index, layer in enumerate(self.layers):
                for key in layer.params:
                    layer.load_state({key: data[f"{index}:{key}"]})

    # ------------------------------------------------------------------
    # topology export for the hardware engine
    # ------------------------------------------------------------------
    def topology(self) -> NetworkTopology:
        """Export compute demand for
        :class:`repro.hardware.engine.ProcessingEngine`."""
        works: list[LayerWork] = []
        spatial = self.input_spatial
        for layer in self.layers:
            if isinstance(layer, Dense):
                works.append(LayerWork(layer.name, layer.out_features,
                                       layer.in_features))
            elif isinstance(layer, Conv2D):
                if spatial is None:
                    raise ValueError(
                        f"{layer.name}: construct the network with "
                        f"input_spatial=(h, w) to export a conv topology"
                    )
                out_h = spatial[0] - layer.kernel + 1
                out_w = spatial[1] - layer.kernel + 1
                works.append(LayerWork(
                    layer.name,
                    layer.out_channels * out_h * out_w,
                    layer.in_channels * layer.kernel * layer.kernel,
                ))
                spatial = (out_h, out_w)
            elif isinstance(layer, ScaledAvgPool2D):
                if spatial is None:
                    raise ValueError(
                        f"{layer.name}: construct the network with "
                        f"input_spatial=(h, w) to export a pool topology"
                    )
                out_h = spatial[0] // layer.size
                out_w = spatial[1] // layer.size
                # one gain multiply per output (the averaging adds are
                # folded into that MAC slot)
                works.append(LayerWork(
                    layer.name, layer.channels * out_h * out_w, 1))
                spatial = (out_h, out_w)
            elif isinstance(layer, Flatten):
                continue
        if not works:
            raise ValueError("network has no compute layers")
        return NetworkTopology(self.name, tuple(works))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(layer.name for layer in self.layers)
        return f"<Sequential {self.name}: {inner}>"
