"""Loss functions: value plus gradient w.r.t. the network output."""

from __future__ import annotations

import numpy as np

from repro.nn.activations import softmax

__all__ = ["Loss", "MSELoss", "CrossEntropyLoss", "get_loss"]


class Loss:
    """Base class; ``__call__`` returns ``(loss_value, grad_wrt_output)``."""

    name = "base"

    def __call__(self, outputs: np.ndarray,
                 targets: np.ndarray) -> tuple[float, np.ndarray]:
        raise NotImplementedError

    @staticmethod
    def _check(outputs: np.ndarray, targets: np.ndarray) -> None:
        if outputs.shape != targets.shape:
            raise ValueError(
                f"outputs {outputs.shape} and targets {targets.shape} differ"
            )


class MSELoss(Loss):
    """Mean squared error over the batch (classic backprop training)."""

    name = "mse"

    def __call__(self, outputs: np.ndarray,
                 targets: np.ndarray) -> tuple[float, np.ndarray]:
        self._check(outputs, targets)
        batch = outputs.shape[0]
        diff = outputs - targets
        loss = float(np.sum(diff * diff) / (2 * batch))
        return loss, diff / batch


class CrossEntropyLoss(Loss):
    """Softmax + cross-entropy, fused for a numerically clean gradient.

    Expects raw (identity-activated) outputs from the final layer and
    one-hot targets.
    """

    name = "cross_entropy"

    def __call__(self, outputs: np.ndarray,
                 targets: np.ndarray) -> tuple[float, np.ndarray]:
        self._check(outputs, targets)
        batch = outputs.shape[0]
        probs = softmax(outputs)
        eps = 1e-12
        loss = float(-np.sum(targets * np.log(probs + eps)) / batch)
        return loss, (probs - targets) / batch


_REGISTRY = {"mse": MSELoss, "cross_entropy": CrossEntropyLoss}


def get_loss(name: str | Loss) -> Loss:
    """Resolve a loss by name (or pass an instance through)."""
    if isinstance(name, Loss):
        return name
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown loss {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
