"""The unified ``repro`` command-line interface.

One console entry point for the whole flow::

    repro run examples/configs/digits_quick.json   # declarative pipeline
    repro run cfg.json --stages train,evaluate --cache-dir .cache
    repro experiment fig7 --full                   # paper tables/figures
    repro serve results/artifacts/mnist_mlp-asm2   # HTTP inference server
    repro list                                     # what exists

``repro run`` executes a :class:`~repro.pipeline.config.PipelineConfig`
file (JSON or TOML) and prints the report; ``repro experiment`` subsumes
the legacy ``python -m repro.experiments.runner``; ``repro serve``
subsumes ``repro-serve`` (both remain as deprecation shims for one
release).
"""

from __future__ import annotations

import argparse
import sys

from repro.pipeline.config import (
    STAGE_NAMES,
    PipelineConfig,
    PipelineConfigError,
)

__all__ = ["main"]


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.pipeline.pipeline import Pipeline
    from repro.pipeline.report import format_report

    try:
        config = PipelineConfig.load(args.config)
        if args.seed is not None:
            config = config.with_overrides(seed=args.seed)
        if args.full:
            config = config.with_overrides(budget="full")
        stages = tuple(s for s in args.stages.split(",") if s) \
            if args.stages else None
        pipeline = Pipeline(config, cache_dir=args.cache_dir)
        report = pipeline.run(stages=stages, resume=not args.no_resume,
                              verbose=not args.quiet)
    except (PipelineConfigError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if not args.quiet:
        print()
    print(format_report(report))
    if args.json:
        path = report.save(args.json)
        print(f"\n[wrote {path}]")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.runner import EXPERIMENTS, execute

    names = EXPERIMENTS if args.name == "all" else (args.name,)
    try:
        return execute(names, full=args.full, seed=args.seed,
                       write_results=args.json)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving.server import main as serve_main

    return serve_main(args.args)


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.datasets.registry import BENCHMARKS
    from repro.experiments.runner import EXPERIMENTS

    print("pipeline stages (repro run):")
    print("  " + ", ".join(STAGE_NAMES))
    print("designs:")
    print("  conventional, asm1, asm2, asm4, asm8, mixed, ladder")
    print("benchmarks:")
    for key, spec in BENCHMARKS.items():
        print(f"  {key:<10} {spec.description}")
    print("experiments (repro experiment):")
    print("  " + ", ".join(EXPERIMENTS))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multiplier-less Artificial Neurons: train, constrain, "
                    "evaluate, export and serve from one CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="execute a declarative pipeline config (.json/.toml)")
    run.add_argument("config", help="path to a PipelineConfig file")
    run.add_argument("--stages", default=None, metavar="S1,S2,...",
                     help="override the config's stage list "
                          f"(choose from {','.join(STAGE_NAMES)})")
    run.add_argument("--cache-dir", default=None,
                     help="stage cache root (overrides config.cache_dir)")
    run.add_argument("--no-resume", action="store_true",
                     help="ignore cached stage results")
    run.add_argument("--full", action="store_true",
                     help="override the budget to the paper-scale tier")
    run.add_argument("--seed", type=int, default=None,
                     help="override the config's seed")
    run.add_argument("--json", default=None, metavar="PATH",
                     help="also write the report as JSON to PATH")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-stage progress lines")
    run.set_defaults(func=_cmd_run)

    experiment = sub.add_parser(
        "experiment", help="reproduce a paper table/figure (or 'all')")
    experiment.add_argument("name", help="experiment id or 'all'; "
                                         "see `repro list`")
    experiment.add_argument("--full", action="store_true",
                            help="paper-scale training budgets")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--json", action="store_true",
                            help="write results/<experiment>.json")
    experiment.set_defaults(func=_cmd_experiment)

    serve = sub.add_parser(
        "serve", help="serve exported artifacts over HTTP "
                      "(same flags as repro-serve)")
    serve.add_argument("args", nargs=argparse.REMAINDER,
                       help="arguments passed to the serving front end")
    serve.set_defaults(func=_cmd_serve)

    lst = sub.add_parser(
        "list", help="list stages, designs, benchmarks and experiments")
    lst.set_defaults(func=_cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
