"""The unified ``repro`` command-line interface.

One console entry point for the whole flow::

    repro run examples/configs/digits_quick.json   # declarative pipeline
    repro run cfg.json --seeds 0,1,2 --jobs 3      # multi-seed, parallel
    repro run cfg.json --trace out.jsonl           # traced run (repro.obs)
    repro experiment fig7 --full                   # paper tables/figures
    repro explore examples/configs/digits_explore.toml --jobs 4
    repro faults mnist_mlp --rates 0.001,0.01,0.05 # resiliency curves
    repro serve results/artifacts/mnist_mlp-asm2   # HTTP inference server
    repro stats out.jsonl                          # span tree + metrics
    repro lint src/                                # domain invariant linter
    repro list                                     # what exists

``repro run`` executes :class:`~repro.pipeline.config.PipelineConfig`
files (JSON or TOML) and prints the reports; ``repro explore`` walks a
:class:`~repro.explore.space.SearchSpace` on a worker pool and reduces
it to Pareto frontiers; ``repro experiment`` subsumes the legacy
``python -m repro.experiments.runner``; ``repro serve`` subsumes
``repro-serve`` (both remain as deprecation shims for one release).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.pipeline.config import (
    STAGE_NAMES,
    PipelineConfig,
    PipelineConfigError,
)

__all__ = ["main"]

#: Where cached pipeline runs / exploration journals live by default
#: (``repro list`` scans these; ``--cache-dir`` / ``--journal`` override).
DEFAULT_CACHE_DIR = os.path.join("results", "pipeline-cache")
DEFAULT_EXPLORE_DIR = os.path.join("results", "explore")


def _parse_seeds(text: str | None) -> tuple[int, ...] | None:
    if text is None:
        return None
    try:
        seeds = tuple(int(s) for s in text.split(",") if s)
    except ValueError:
        raise PipelineConfigError(f"bad --seeds value {text!r}; "
                                  f"expected e.g. 0,1,2")
    if not seeds:
        raise PipelineConfigError("--seeds must name at least one seed")
    return seeds


def _start_trace(trace_path: str | None) -> bool:
    """Enable :mod:`repro.obs` when ``--trace`` was given."""
    if trace_path is None:
        return False
    from repro import obs

    obs.enable(trace_path=trace_path)
    return True


def _finish_trace(args: argparse.Namespace, tracing: bool) -> None:
    """Flush/close the trace file and tell the user where it went."""
    if not tracing:
        return
    from repro import obs

    obs.disable()
    if not getattr(args, "quiet", False):
        print(f"[trace written to {args.trace}; inspect with "
              f"`repro stats {args.trace}`]")


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.explore.executor import run_pipeline_jobs
    from repro.pipeline.pipeline import Pipeline
    from repro.pipeline.report import format_report
    from repro.pipeline.stages import StageError
    from repro.utils.serialization import write_json

    tracing = _start_trace(args.trace)
    try:
        stages = tuple(s for s in args.stages.split(",") if s) \
            if args.stages else None
        seeds = _parse_seeds(args.seeds)
        configs: list[PipelineConfig] = []
        for path in args.config:
            config = PipelineConfig.load(path)
            if args.full:
                config = config.with_overrides(budget="full")
            if args.cache_dir is not None:
                config = config.with_overrides(cache_dir=args.cache_dir)
            if args.backend is not None:
                config = config.with_overrides(backend=args.backend)
            if args.sim_backend is not None:
                config = config.with_overrides(sim_backend=args.sim_backend)
            if args.train_backend is not None:
                config = config.with_overrides(
                    train_backend=args.train_backend)
            if seeds is not None:
                configs.extend(config.with_overrides(seed=seed)
                               for seed in seeds)
            elif args.seed is not None:
                configs.append(config.with_overrides(seed=args.seed))
            else:
                configs.append(config)
        if len(configs) == 1:
            # single run: keep live per-stage progress
            report = Pipeline(configs[0]).run(
                stages=stages, resume=not args.no_resume,
                verbose=not args.quiet)
            if not args.quiet:
                print()
            print(format_report(report))
            if args.json:
                print(f"\n[wrote {report.save(args.json)}]")
            return 0
        results = run_pipeline_jobs(configs, stages=stages,
                                    resume=not args.no_resume,
                                    jobs=args.jobs)
        print("\n\n".join(result["text"] for result in results))
        if args.json:
            path = write_json(args.json,
                              {"reports": [r["report"] for r in results]})
            print(f"\n[wrote {path}]")
    except (PipelineConfigError, StageError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        _finish_trace(args, tracing)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.runner import EXPERIMENTS, execute

    names = EXPERIMENTS if args.name == "all" else (args.name,)
    try:
        return execute(names, full=args.full, seed=args.seed,
                       write_results=args.json, jobs=args.jobs)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.explore import (
        JournalError,
        SearchSpace,
        SearchSpaceError,
        format_exploration_report,
        register_frontier,
        run_exploration,
    )
    from repro.pipeline.stages import StageError

    tracing = _start_trace(args.trace)
    try:
        space = SearchSpace.load(args.space)
        if args.backend is not None or args.sim_backend is not None \
                or args.train_backend is not None:
            from dataclasses import replace
            overrides = {}
            if args.backend is not None:
                overrides["backend"] = args.backend
            if args.sim_backend is not None:
                overrides["sim_backend"] = args.sim_backend
            if args.train_backend is not None:
                overrides["train_backend"] = args.train_backend
            space = replace(space, **overrides)
        journal_dir = args.journal if args.journal is not None else \
            os.path.join(DEFAULT_EXPLORE_DIR, space.name)
        report = run_exploration(space, journal_dir,
                                 cache_dir=args.cache_dir,
                                 jobs=args.jobs,
                                 resume=not args.no_resume,
                                 verbose=not args.quiet,
                                 max_retries=args.max_retries,
                                 timeout_s=args.timeout or None)
    except (SearchSpaceError, JournalError, StageError, OSError,
            ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        _finish_trace(args, tracing)
    if not args.quiet:
        print()
    print(format_exploration_report(report))
    print(f"\n[journal: {journal_dir}]")
    if args.json:
        print(f"[wrote {report.save(args.json)}]")
    if args.register:
        # the report remembers the stage cache it ran against, so this
        # re-runs nothing but the export stage per winner
        entries = register_frontier(report, verbose=not args.quiet)
        if entries:
            print("\nregistered frontier designs:")
            for entry in entries:
                print(f"  {entry.key:<24} {entry.path}")
        else:
            print("\nno ASM/mixed design on the frontier; "
                  "nothing to register")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults import ResiliencyReport, format_resiliency_report
    from repro.pipeline.config import PipelineConfig, PipelineConfigError
    from repro.pipeline.pipeline import Pipeline
    from repro.pipeline.stages import StageError
    from repro.utils.serialization import write_json

    try:
        rates = tuple(float(r) for r in args.rates.split(","))
        config = PipelineConfig(
            app=args.app,
            designs=tuple(args.designs.split(",")),
            stages=("train", "quantize", "constrain", "evaluate",
                    "faults"),
            budget="full" if args.full else "quick",
            seed=args.seed,
            cache_dir=args.cache_dir,
            fault_rates=rates,
            fault_kind=args.kind,
            fault_seed=args.fault_seed,
        )
        pipeline_report = Pipeline(config).run(
            resume=not args.no_resume, verbose=not args.quiet)
        report = ResiliencyReport.from_pipeline_report(pipeline_report)
    except (PipelineConfigError, StageError, OSError,
            ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if not args.quiet:
        print()
    print(format_resiliency_report(report))
    if args.json:
        path = write_json(args.json, report.to_dict())
        print(f"\n[wrote {path}]")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving.server import main as serve_main

    return serve_main(args.args)


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs.merge import find_shards, merge_trace, write_merged_trace
    from repro.obs.stats import (
        TraceError,
        diff_traces,
        format_metric_table,
        format_span_tree,
        format_trace_diff,
        load_trace,
        write_chrome_trace,
    )

    if args.diff is not None:
        if args.trace is not None:
            print("error: --diff takes exactly two traces; drop the "
                  "positional argument", file=sys.stderr)
            return 2
        try:
            trace_a = merge_trace(args.diff[0])
            trace_b = merge_trace(args.diff[1])
        except (TraceError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(f"diff: {args.diff[0]} (A) vs {args.diff[1]} (B), "
              f"significance threshold {args.threshold:g}%")
        print()
        print(format_trace_diff(diff_traces(trace_a, trace_b,
                                            threshold_pct=args.threshold)))
        return 0

    if args.trace is None:
        print("error: a trace path is required (or use --diff A B)",
              file=sys.stderr)
        return 2
    try:
        shards = find_shards(args.trace)
        if shards:
            trace = merge_trace(args.trace, shards)
        else:
            trace = load_trace(args.trace)
    except (TraceError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    meta = trace.meta
    sharded = f", {len(shards)} worker shard(s) merged" if shards else ""
    print(f"trace: {args.trace} (format {meta['format']}, "
          f"repro {meta.get('repro_version', '?')}, "
          f"{len(trace.events)} spans{sharded})")
    if trace.dropped:
        print(f"note: {trace.dropped} span(s) dropped past the in-memory "
              f"cap (MAX_KEPT_SPANS)")
    print()
    print(format_span_tree(trace, max_depth=args.depth))
    if not args.no_metrics:
        print()
        print(format_metric_table(trace))
    if args.merge:
        path = write_merged_trace(args.trace, args.merge, shards)
        print(f"\n[wrote merged trace {path}]")
    if args.chrome:
        path = write_chrome_trace(trace, args.chrome)
        print(f"\n[wrote Chrome trace {path}; open via chrome://tracing "
              f"or https://ui.perfetto.dev]")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    import subprocess

    from repro.obs.history import (
        SUITES,
        HistoryError,
        append_entry,
        check_gates,
        entry_from_payload,
        format_trend,
        load_history,
    )

    suites = args.suite or (list(SUITES) if not args.check else [])
    unknown = [s for s in suites if s not in SUITES]
    if unknown:
        print(f"error: unknown suite(s) {', '.join(unknown)}; "
              f"choose from {', '.join(SUITES)}", file=sys.stderr)
        return 2

    bench_dir = os.path.abspath(args.benchmarks_dir)
    repo_root = os.path.dirname(bench_dir)
    history_path = args.history if args.history is not None else \
        os.path.join(repo_root, "BENCH_HISTORY.jsonl")
    try:
        entries = load_history(history_path)
    except HistoryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    for suite in suites:
        for script_name in SUITES[suite]:
            script = os.path.join(bench_dir, script_name)
            if not os.path.exists(script):
                print(f"error: {script} not found", file=sys.stderr)
                return 1
            print(f"[bench {suite}] running {script_name} ...")
            proc = subprocess.run(
                [sys.executable, "-m", "pytest", script, "-q", "-s"],
                cwd=repo_root)
            if proc.returncode != 0:
                print(f"error: suite {suite!r} failed (exit "
                      f"{proc.returncode})", file=sys.stderr)
                return 1
        payload_path = os.path.join(repo_root, f"BENCH_{suite}.json")
        try:
            with open(payload_path) as handle:
                payload = json.load(handle)
            entries = append_entry(history_path,
                                   entry_from_payload(suite, payload))
        except (OSError, ValueError) as error:
            print(f"error: could not ledger {payload_path}: {error}",
                  file=sys.stderr)
            return 1
        print(f"[bench {suite}] ledgered into {history_path}")

    if not entries:
        print(f"bench history {history_path} is empty; run "
              f"`repro bench` first")
        return 0
    print()
    print(format_trend(entries))
    violations = check_gates(entries)
    if violations:
        print()
        for violation in violations:
            print(f"GATE FAILED  {violation.render()}", file=sys.stderr)
        return 1
    print(f"\nall trajectory gates pass ({len(entries)} ledger entries)")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.lint import LintConfig, LintConfigError, Linter, all_rules

    if args.rules:
        for rule_id, rule in all_rules().items():
            print(f"{rule_id}  {rule.severity:<7}  {rule.title}")
        return 0
    root = os.path.abspath(args.root)
    try:
        config = LintConfig.discover(args.config, root=root)
        if args.select:
            config.select = [s.strip().upper()
                             for s in args.select.split(",") if s.strip()]
        result = Linter(config=config, root=root).run(args.paths)
    except (LintConfigError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({
            "format": "repro-lint/1",
            "root": root,
            "files": len(result.checked_files),
            "errors": len(result.errors),
            "warnings": len(result.warnings),
            "suppressed": result.suppressed,
            "findings": [f.to_dict() for f in result.findings],
        }, indent=2))
    else:
        for finding in result.findings:
            print(finding.render())
        if result.findings:
            print()
        print(f"{len(result.checked_files)} files checked: "
              f"{len(result.errors)} error(s), "
              f"{len(result.warnings)} warning(s), "
              f"{result.suppressed} suppressed")
    if args.warn_only:
        return 0
    return 0 if result.ok else 1


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.datasets.registry import BENCHMARKS
    from repro.experiments.runner import EXPERIMENTS
    from repro.explore.journal import list_journals
    from repro.pipeline.pipeline import list_cached_runs

    print("pipeline stages (repro run):")
    print("  " + ", ".join(STAGE_NAMES))
    print("designs:")
    print("  conventional, asm1, asm2, asm4, asm8, mixed, "
          "mixed:C1-C2-..., ladder")
    print("benchmarks:")
    for key, spec in BENCHMARKS.items():
        print(f"  {key:<10} {spec.description}")
    print("experiments (repro experiment):")
    print("  " + ", ".join(EXPERIMENTS))

    runs = list_cached_runs(args.cache_dir)
    print(f"cached pipeline runs ({args.cache_dir}):")
    if runs:
        for run in runs:
            print(f"  {run.get('config_digest', '?')[:12]}  "
                  f"{run.get('app', '?'):<10} seed={run.get('seed', '?')} "
                  f"budget={run.get('budget', '?'):<6} "
                  f"designs={','.join(run.get('designs', []))} "
                  f"stages={','.join(run.get('stages', []))}")
    else:
        print("  (none)")

    journals = list_journals(args.explore_dir)
    print(f"exploration journals ({args.explore_dir}):")
    if journals:
        for journal in journals:
            status = "report ready" if journal["has_report"] \
                else "in progress"
            print(f"  {journal['path']}  app={journal['app']} "
                  f"strategy={journal['strategy']} "
                  f"records={journal['records']} ({status})")
    else:
        print("  (none)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multiplier-less Artificial Neurons: train, constrain, "
                    "evaluate, explore, export and serve from one CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="execute declarative pipeline configs (.json/.toml)")
    run.add_argument("config", nargs="+",
                     help="path(s) to PipelineConfig files")
    run.add_argument("--stages", default=None, metavar="S1,S2,...",
                     help="override the configs' stage list "
                          f"(choose from {','.join(STAGE_NAMES)})")
    run.add_argument("--cache-dir", default=None,
                     help="stage cache root (overrides config.cache_dir)")
    run.add_argument("--backend", default=None,
                     choices=("reference", "fast", "auto"),
                     help="compute-kernel backend for evaluation "
                          "(bit-identical; overrides config.backend)")
    run.add_argument("--sim-backend", default=None,
                     choices=("reference", "fast", "auto"),
                     help="simulation-kernel backend for the cycle-"
                          "accurate toggle simulator (bit-identical; "
                          "overrides config.sim_backend)")
    run.add_argument("--train-backend", default=None,
                     choices=("reference", "fast", "auto"),
                     help="training-kernel backend for the float "
                          "training loops (bit-identical; overrides "
                          "config.train_backend)")
    run.add_argument("--no-resume", action="store_true",
                     help="ignore cached stage results")
    run.add_argument("--full", action="store_true",
                     help="override the budget to the paper-scale tier")
    run.add_argument("--seed", type=int, default=None,
                     help="override the configs' seed")
    run.add_argument("--seeds", default=None, metavar="S1,S2,...",
                     help="fan each config out over several seeds "
                          "(combine with --jobs)")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes for multi-config/seed runs")
    run.add_argument("--json", default=None, metavar="PATH",
                     help="also write the report(s) as JSON to PATH")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="record a repro.obs span/metrics trace to PATH "
                          "(JSONL; render with `repro stats PATH`)")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-stage progress lines")
    run.set_defaults(func=_cmd_run)

    experiment = sub.add_parser(
        "experiment", help="reproduce a paper table/figure (or 'all')")
    experiment.add_argument("name", help="experiment id or 'all'; "
                                         "see `repro list`")
    experiment.add_argument("--full", action="store_true",
                            help="paper-scale training budgets")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="worker processes when running several "
                                 "experiments")
    experiment.add_argument("--json", action="store_true",
                            help="write results/<experiment>.json")
    experiment.set_defaults(func=_cmd_experiment)

    explore = sub.add_parser(
        "explore", help="design-space exploration over a SearchSpace "
                        "(.json/.toml); reduces to Pareto frontiers")
    explore.add_argument("space", help="path to a SearchSpace file")
    explore.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="parallel candidate evaluations")
    explore.add_argument("--journal", default=None, metavar="DIR",
                         help="journal directory (default: "
                              f"{DEFAULT_EXPLORE_DIR}/<space name>); "
                              "re-running resumes from it")
    explore.add_argument("--cache-dir", default=None,
                         help="pipeline stage cache shared by the workers "
                              "(default: <journal>/cache)")
    explore.add_argument("--backend", default=None,
                         choices=("reference", "fast", "auto"),
                         help="compute-kernel backend for candidate "
                              "evaluation (bit-identical; overrides "
                              "space.backend)")
    explore.add_argument("--sim-backend", default=None,
                         choices=("reference", "fast", "auto"),
                         help="simulation-kernel backend for the "
                              "candidates' toggle simulator "
                              "(bit-identical; overrides "
                              "space.sim_backend)")
    explore.add_argument("--train-backend", default=None,
                         choices=("reference", "fast", "auto"),
                         help="training-kernel backend the candidates "
                              "retrain with (bit-identical; overrides "
                              "space.train_backend)")
    explore.add_argument("--no-resume", action="store_true",
                         help="ignore the journal and stage cache")
    explore.add_argument("--max-retries", type=int, default=2,
                         metavar="N",
                         help="bounded retries per failing candidate "
                              "before it is quarantined into the journal "
                              "as a typed failure record")
    explore.add_argument("--timeout", type=float, default=0.0,
                         metavar="SECONDS",
                         help="per-candidate evaluation timeout "
                              "(0 = unbounded)")
    explore.add_argument("--register", action="store_true",
                         help="export frontier winners and register them "
                              "in the serving model registry")
    explore.add_argument("--json", default=None, metavar="PATH",
                         help="also write the ExplorationReport to PATH")
    explore.add_argument("--trace", default=None, metavar="PATH",
                         help="record a repro.obs span/metrics trace to "
                              "PATH; forked workers write "
                              "PATH.shard-N.jsonl files that `repro "
                              "stats PATH` merges back into one tree")
    explore.add_argument("--quiet", action="store_true",
                         help="suppress per-candidate progress lines")
    explore.set_defaults(func=_cmd_explore)

    faults = sub.add_parser(
        "faults", help="accuracy-vs-fault-rate resiliency curves "
                       "(seeded, deterministic fault injection)")
    faults.add_argument("app", help="benchmark application; "
                                    "see `repro list`")
    faults.add_argument("--designs", default="conventional,asm2,asm8",
                        metavar="D1,D2,...",
                        help="design tokens to sweep "
                             "(default: %(default)s)")
    faults.add_argument("--rates", default="0.001,0.005,0.01,0.05",
                        metavar="R1,R2,...",
                        help="fault rates to sweep "
                             "(default: %(default)s)")
    faults.add_argument("--kind", default="activation_upset",
                        choices=("weight_bitflip", "weight_stuck",
                                 "activation_upset",
                                 "requantize_saturation"),
                        help="fault model (default: %(default)s)")
    faults.add_argument("--fault-seed", type=int, default=0,
                        help="seed of the deterministic fault-site hash")
    faults.add_argument("--seed", type=int, default=0,
                        help="training seed")
    faults.add_argument("--full", action="store_true",
                        help="paper-scale training budget")
    faults.add_argument("--cache-dir", default=None,
                        help="pipeline stage cache root")
    faults.add_argument("--no-resume", action="store_true",
                        help="ignore cached stage results")
    faults.add_argument("--json", default=None, metavar="PATH",
                        help="also write the ResiliencyReport to PATH")
    faults.add_argument("--quiet", action="store_true",
                        help="suppress per-stage progress lines")
    faults.set_defaults(func=_cmd_faults)

    serve = sub.add_parser(
        "serve", help="serve exported artifacts over HTTP "
                      "(same flags as repro-serve)")
    serve.add_argument("args", nargs=argparse.REMAINDER,
                       help="arguments passed to the serving front end")
    serve.set_defaults(func=_cmd_serve)

    stats = sub.add_parser(
        "stats", help="render a --trace file (worker shards merged in): "
                      "span tree, metric table, trace diffing, optional "
                      "Chrome trace export")
    stats.add_argument("trace", nargs="?", default=None,
                       help="path to a repro-trace JSONL file (from repro "
                            "run/explore --trace); any "
                            "<trace>.shard-N.jsonl worker shards next to "
                            "it are merged automatically")
    stats.add_argument("--diff", nargs=2, default=None,
                       metavar=("A.jsonl", "B.jsonl"),
                       help="instead of rendering one trace, align two "
                            "traces by span path and report wall/CPU/RSS "
                            "and metric deltas")
    stats.add_argument("--threshold", type=float, default=5.0,
                       metavar="PCT",
                       help="significance threshold for --diff wall-time "
                            "deltas (default: 5%%)")
    stats.add_argument("--depth", type=int, default=None, metavar="N",
                       help="limit the span tree to N levels")
    stats.add_argument("--no-metrics", action="store_true",
                       help="skip the metric table")
    stats.add_argument("--merge", default=None, metavar="OUT.jsonl",
                       help="also write the shard-merged trace as one "
                            "unified repro-trace/1 file")
    stats.add_argument("--chrome", default=None, metavar="OUT.json",
                       help="also convert the spans to a Chrome "
                            "trace-event JSON file for chrome://tracing")
    stats.set_defaults(func=_cmd_stats)

    bench = sub.add_parser(
        "bench", help="run benchmark suites, ledger their results into "
                      "BENCH_HISTORY.jsonl and gate the trajectory")
    bench.add_argument("suite", nargs="*",
                       help="suites to run (default: all; "
                            "see repro.obs.history.SUITES); with --check "
                            "the default is to run none and only gate")
    bench.add_argument("--history", default=None, metavar="PATH",
                       help="ledger file (default: BENCH_HISTORY.jsonl "
                            "next to the benchmarks directory)")
    bench.add_argument("--check", action="store_true",
                       help="gate the existing ledger without running "
                            "any suite (the CI mode)")
    bench.add_argument("--benchmarks-dir", default="benchmarks",
                       metavar="DIR",
                       help="directory holding the bench_*.py suites")
    bench.set_defaults(func=_cmd_bench)

    lint = sub.add_parser(
        "lint", help="run the domain invariant linter (determinism, "
                     "cache keys, backend parity, ... — see "
                     "docs/invariants.md)")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files/directories to lint (default: src)")
    lint.add_argument("--json", action="store_true",
                      help="emit machine-readable findings "
                           "(format repro-lint/1) instead of text")
    lint.add_argument("--select", default=None, metavar="ID1,ID2,...",
                      help="run only these rule ids (e.g. RPR001,RPR004)")
    lint.add_argument("--config", default=None, metavar="PYPROJECT",
                      help="read [tool.repro.lint] from this file "
                           "(default: <root>/pyproject.toml)")
    lint.add_argument("--root", default=".",
                      help="repository root paths are resolved and "
                           "reported against (default: cwd)")
    lint.add_argument("--warn-only", action="store_true",
                      help="report findings but always exit 0")
    lint.add_argument("--rules", action="store_true",
                      help="list the registered rules and exit")
    lint.set_defaults(func=_cmd_lint)

    lst = sub.add_parser(
        "list", help="list stages, designs, benchmarks, experiments, "
                     "cached runs and exploration journals")
    lst.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                     help="stage cache root to scan for cached runs")
    lst.add_argument("--explore-dir", default=DEFAULT_EXPLORE_DIR,
                     help="directory to scan for exploration journals")
    lst.set_defaults(func=_cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
