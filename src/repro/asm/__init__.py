"""Alphabet Set Multiplier (ASM) — the paper's core contribution.

Public surface:

* alphabet sets and their supported quartet values,
* quartet decomposition (select/shift/add terms, Table I),
* bit-accurate ASM and conventional multiplier models,
* weight constraining (Algorithm 1) onto the supported grid,
* shift-add program compilation for the Multiplier-less Neuron (MAN).
"""

from repro.asm.alphabet import (
    ALPHA_1,
    ALPHA_2,
    ALPHA_4,
    ALPHA_8,
    FULL_ALPHABETS,
    STANDARD_SETS,
    AlphabetSet,
    standard_set,
)
from repro.asm.constraints import (
    ConstraintStats,
    WeightConstrainer,
    constrain_magnitude_greedy,
    constraint_stats,
    nearest_representable_magnitude,
    nearest_supported,
    representable_magnitudes,
)
from repro.asm.decompose import (
    QuartetTerm,
    UnsupportedQuartetError,
    decompose_magnitude,
    decompose_quartet,
    format_decomposition,
    reconstruct,
)
from repro.asm.man import MANMultiplier, ShiftAddProgram, compile_weight, man_program
from repro.asm.multiplier import (
    FALLBACK_POLICIES,
    AlphabetSetMultiplier,
    ConventionalMultiplier,
)

__all__ = [
    "ALPHA_1",
    "ALPHA_2",
    "ALPHA_4",
    "ALPHA_8",
    "FULL_ALPHABETS",
    "STANDARD_SETS",
    "AlphabetSet",
    "standard_set",
    "ConstraintStats",
    "WeightConstrainer",
    "constrain_magnitude_greedy",
    "constraint_stats",
    "nearest_representable_magnitude",
    "nearest_supported",
    "representable_magnitudes",
    "QuartetTerm",
    "UnsupportedQuartetError",
    "decompose_magnitude",
    "decompose_quartet",
    "format_decomposition",
    "reconstruct",
    "MANMultiplier",
    "ShiftAddProgram",
    "compile_weight",
    "man_program",
    "FALLBACK_POLICIES",
    "AlphabetSetMultiplier",
    "ConventionalMultiplier",
]
