"""Weight constraining — the paper's Algorithm 1 and an exact variant.

Retraining with a reduced alphabet set requires every weight quartet to be a
supported value.  Algorithm 1 walks the quartets and rounds each unsupported
value to the nearest supported one, where "nearest" uses the midpoint of the
two neighbouring supported values as the threshold and the midpoint itself
rounds **up** (the paper's example: supported neighbours 8 and 12 give a
threshold of 10; 9 → 8, while 10 and 11 → 12).

Rounding a quartet up past its top supported value generates a carry into the
next quartet (e.g. 15 under ``{1,3}`` has neighbours 12 and 16); the carry may
itself land on an unsupported value, so the walk continues LSB→MSB exactly as
the paper's nested "round-up/down QR / PQR" steps describe.

Because the quartet-greedy walk is not globally optimal (rounding a high
quartet can move the value far while a joint adjustment of lower quartets
would stay close), the module also provides
:func:`nearest_representable_magnitude`, which finds the true nearest value
whose quartets are all supported.  The greedy walk is the paper-faithful
default; the exact variant exists for the rounding ablation bench.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from functools import lru_cache
from itertools import product

import numpy as np

from repro.asm.alphabet import AlphabetSet
from repro.fixedpoint.quartet import QuartetLayout

__all__ = [
    "nearest_supported",
    "constrain_magnitude_greedy",
    "representable_magnitudes",
    "nearest_representable_magnitude",
    "WeightConstrainer",
    "ConstraintStats",
    "constraint_stats",
]


def nearest_supported(value: int, supported: tuple[int, ...]) -> int:
    """Round *value* to the nearest entry of the sorted tuple *supported*.

    Midpoints round up, per the paper's rounding logic.  *supported* may
    contain a value one past the quartet maximum (16) to allow carries.

    >>> nearest_supported(9, (0, 1, 2, 3, 4, 6, 8, 12))
    8
    >>> nearest_supported(10, (0, 1, 2, 3, 4, 6, 8, 12))
    12
    """
    if not supported:
        raise ValueError("supported set is empty")
    pos = bisect.bisect_left(supported, value)
    if pos == 0:
        return supported[0]
    if pos == len(supported):
        return supported[-1]
    below, above = supported[pos - 1], supported[pos]
    if below == value:
        return value
    threshold = (below + above) / 2.0
    return above if value >= threshold else below


@lru_cache(maxsize=None)
def _supported_with_carry(alphabet_set: AlphabetSet, width: int,
                          allow_carry: bool) -> tuple[int, ...]:
    values = sorted(alphabet_set.supported_values(width))
    if allow_carry:
        values.append(1 << width)
    return tuple(values)


def constrain_magnitude_greedy(magnitude: int, layout: QuartetLayout,
                               alphabet_set: AlphabetSet) -> int:
    """Algorithm 1: constrain a weight magnitude quartet-by-quartet.

    Walks LSB→MSB.  Each quartet (plus any carry from below) is rounded to
    the nearest supported value; rounding up to ``2**width`` re-encodes as a
    carry into the next quartet.  The MSB quartet cannot carry out, so there
    it rounds within its supported range (saturating at the top supported
    value).

    >>> from repro.asm.alphabet import ALPHA_2
    >>> from repro.fixedpoint.quartet import LAYOUT_8BIT
    >>> constrain_magnitude_greedy(105, LAYOUT_8BIT, ALPHA_2)   # R=9 -> 8
    104
    """
    quartets = list(layout.split(magnitude))
    widths = layout.quartet_widths
    last = len(quartets) - 1
    carry = 0
    result = []
    for index, value in enumerate(quartets):
        value += carry
        carry = 0
        is_last = index == last
        supported = _supported_with_carry(
            alphabet_set, widths[index], allow_carry=not is_last)
        rounded = nearest_supported(value, supported)
        if rounded == (1 << widths[index]):
            rounded = 0
            carry = 1
        result.append(rounded)
    return layout.join(result)


@lru_cache(maxsize=None)
def representable_magnitudes(layout: QuartetLayout,
                             alphabet_set: AlphabetSet) -> tuple[int, ...]:
    """All magnitudes whose quartets are every one supported, sorted.

    The grid the constrained network's weights live on.  Size is the product
    of per-quartet supported counts (e.g. 8-bit ``{1,3}``: 8 x 6 = 48 values).
    """
    per_quartet = [
        sorted(alphabet_set.supported_values(width))
        for width in layout.quartet_widths
    ]
    magnitudes = set()
    for combo in product(*per_quartet):
        magnitudes.add(layout.join(list(combo)))
    return tuple(sorted(magnitudes))


def nearest_representable_magnitude(magnitude: int, layout: QuartetLayout,
                                    alphabet_set: AlphabetSet) -> int:
    """Exact nearest representable magnitude (ties round up)."""
    layout._check_magnitude(magnitude)
    grid = representable_magnitudes(layout, alphabet_set)
    return nearest_supported(magnitude, grid)


@lru_cache(maxsize=None)
def _constrainer_table(bits: int, alphabet_set: AlphabetSet,
                       mode: str) -> np.ndarray:
    """Process-wide cache of the signed constraining lookup table.

    Every :class:`WeightConstrainer` with the same ``(bits, alphabet_set,
    mode)`` shares one table, so repeated constructions in ablation sweeps
    and artifact reloads cost a dict lookup instead of a quartet walk over
    the whole weight range.  Read-only because it is shared.
    """
    layout = QuartetLayout(bits)
    constrain = (constrain_magnitude_greedy if mode == "greedy"
                 else nearest_representable_magnitude)
    max_mag = layout.max_magnitude
    magnitude_map = np.array(
        [constrain(m, layout, alphabet_set) for m in range(max_mag + 1)],
        dtype=np.int64,
    )
    # Signed table indexed by (weight + max_mag + 1); index 0 holds the
    # most negative code, which saturates to -max_mag before constraining
    # (the datapath multiplies |W| and |−2^(b−1)| is unrepresentable).
    table = np.empty(2 * max_mag + 2, dtype=np.int64)
    table[max_mag + 1:] = magnitude_map                      # w >= 0
    table[1:max_mag + 1] = -magnitude_map[1:][::-1]          # w < 0
    table[0] = -magnitude_map[max_mag]                       # w == -2^(b-1)
    table.setflags(write=False)
    return table


@dataclass(frozen=True)
class ConstraintStats:
    """Summary of the rounding error a constrainer introduces."""

    num_weights: int
    num_changed: int
    max_abs_error: int
    mean_abs_error: float

    @property
    def fraction_changed(self) -> float:
        return self.num_changed / self.num_weights if self.num_weights else 0.0


class WeightConstrainer:
    """Maps signed integer weights onto the alphabet-supported grid.

    Parameters
    ----------
    bits:
        Weight word width (8 or 12 in the paper).
    alphabet_set:
        The reduced alphabet set to support.
    mode:
        ``"greedy"`` — the paper's Algorithm 1 quartet walk (default);
        ``"nearest"`` — exact nearest representable magnitude.

    The full signed mapping is precomputed into a lookup table so that array
    projection during retraining is a single fancy-index.
    """

    def __init__(self, bits: int, alphabet_set: AlphabetSet,
                 mode: str = "greedy") -> None:
        if mode not in ("greedy", "nearest"):
            raise ValueError(f"unknown constraint mode {mode!r}")
        self.bits = bits
        self.alphabet_set = alphabet_set
        self.mode = mode
        self.layout = QuartetLayout(bits)
        self._table = _constrainer_table(bits, alphabet_set, mode)

    # ------------------------------------------------------------------
    def constrain(self, weight: int) -> int:
        """Constrain one signed integer weight.

        >>> from repro.asm.alphabet import ALPHA_2
        >>> WeightConstrainer(8, ALPHA_2).constrain(-105)
        -104
        """
        offset = self.layout.max_magnitude + 1
        index = weight + offset
        if not 0 <= index < len(self._table):
            raise OverflowError(
                f"weight {weight} outside signed {self.bits}-bit range"
            )
        return int(self._table[index])

    def constrain_array(self, weights: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`constrain` for integer arrays."""
        weights = np.asarray(weights, dtype=np.int64)
        offset = self.layout.max_magnitude + 1
        index = weights + offset
        if index.size and (index.min() < 0 or index.max() >= len(self._table)):
            raise OverflowError(
                f"weights outside signed {self.bits}-bit range"
            )
        return self._table[index]

    def is_representable(self, weight: int) -> bool:
        """True when *weight* is already on the supported grid."""
        return self.constrain(weight) == weight

    @property
    def table(self) -> np.ndarray:
        """The read-only signed lookup table, indexed by
        ``weight + max_magnitude + 1`` — the fused projection kernel
        (:mod:`repro.kernels.projection`) indexes it directly."""
        return self._table

    @property
    def grid(self) -> tuple[int, ...]:
        """Sorted magnitudes of the representable grid."""
        return representable_magnitudes(self.layout, self.alphabet_set)


def constraint_stats(constrainer: WeightConstrainer,
                     weights: np.ndarray) -> ConstraintStats:
    """Measure how much :class:`WeightConstrainer` moves a weight array."""
    weights = np.asarray(weights, dtype=np.int64)
    constrained = constrainer.constrain_array(weights)
    errors = np.abs(constrained - weights)
    return ConstraintStats(
        num_weights=int(weights.size),
        num_changed=int(np.count_nonzero(errors)),
        max_abs_error=int(errors.max()) if weights.size else 0,
        mean_abs_error=float(errors.mean()) if weights.size else 0.0,
    )
