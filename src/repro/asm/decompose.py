"""Decomposition of weights into alphabet-select / shift / add terms.

This is the control-logic view of the ASM: given a weight magnitude and an
alphabet set, emit one ``(alphabet, shift)`` term per non-zero quartet.  The
product is then::

    W * I = sign(W) * sum over quartets i of  alphabet_i * 2**shift_i * I

where ``shift_i`` folds together the in-quartet shift and the quartet's bit
position.  Table I of the paper is reproduced by
:func:`format_decomposition`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.alphabet import AlphabetSet
from repro.fixedpoint.quartet import QuartetLayout

__all__ = [
    "UnsupportedQuartetError",
    "QuartetTerm",
    "decompose_quartet",
    "decompose_magnitude",
    "reconstruct",
    "format_decomposition",
]


class UnsupportedQuartetError(ValueError):
    """A quartet value cannot be generated from the available alphabets."""

    def __init__(self, value: int, alphabet_set: AlphabetSet) -> None:
        super().__init__(
            f"quartet value {value} is not supported by alphabet set "
            f"{alphabet_set}"
        )
        self.value = value
        self.alphabet_set = alphabet_set


@dataclass(frozen=True)
class QuartetTerm:
    """One shift/add term: contributes ``alphabet * 2**shift * I``.

    ``quartet_index`` records which quartet (LSB-first) produced the term;
    ``shift`` already includes the quartet's bit offset.
    """

    quartet_index: int
    alphabet: int
    shift: int

    @property
    def value(self) -> int:
        """The integer weight contribution ``alphabet * 2**shift``."""
        return self.alphabet << self.shift


def decompose_quartet(value: int, alphabet_set: AlphabetSet,
                      width: int = 4) -> tuple[int, int] | None:
    """Express quartet *value* as ``(alphabet, shift)``.

    Returns ``None`` for ``value == 0`` (nothing to add) and raises
    :class:`UnsupportedQuartetError` when the set cannot generate *value*.

    The decomposition is unique: strip trailing zero bits, the remaining odd
    factor must itself be an alphabet.

    >>> from repro.asm.alphabet import ALPHA_4
    >>> decompose_quartet(10, ALPHA_4)
    (5, 1)
    >>> decompose_quartet(4, ALPHA_4)
    (1, 2)
    """
    if not 0 <= value < (1 << width):
        raise ValueError(f"{value} is not a {width}-bit quartet value")
    if value == 0:
        return None
    shift = 0
    odd = value
    while odd % 2 == 0:
        odd >>= 1
        shift += 1
    if odd not in alphabet_set:
        raise UnsupportedQuartetError(value, alphabet_set)
    return odd, shift


def decompose_magnitude(magnitude: int, layout: QuartetLayout,
                        alphabet_set: AlphabetSet) -> list[QuartetTerm]:
    """Decompose a weight *magnitude* into shift/add terms, LSB-first.

    Every quartet must be supported; constrain the weight first
    (:mod:`repro.asm.constraints`) if it may contain unsupported quartets.

    >>> from repro.asm.alphabet import FULL_ALPHABETS
    >>> from repro.fixedpoint.quartet import LAYOUT_8BIT
    >>> terms = decompose_magnitude(105, LAYOUT_8BIT, FULL_ALPHABETS)
    >>> [(t.alphabet, t.shift) for t in terms]
    [(9, 0), (3, 5)]
    """
    terms = []
    for index, value in enumerate(layout.split(magnitude)):
        pair = decompose_quartet(value, alphabet_set,
                                 width=layout.quartet_widths[index])
        if pair is None:
            continue
        alphabet, local_shift = pair
        terms.append(QuartetTerm(
            quartet_index=index,
            alphabet=alphabet,
            shift=local_shift + layout.shift_of(index),
        ))
    return terms


def reconstruct(terms: list[QuartetTerm]) -> int:
    """Sum the terms back into the weight magnitude they encode."""
    return sum(term.value for term in terms)


def format_decomposition(weight: int, layout: QuartetLayout,
                         alphabet_set: AlphabetSet,
                         symbol: str = "I") -> str:
    """Render a decomposition in the style of the paper's Table I.

    >>> from repro.asm.alphabet import FULL_ALPHABETS
    >>> from repro.fixedpoint.quartet import LAYOUT_8BIT
    >>> format_decomposition(105, LAYOUT_8BIT, FULL_ALPHABETS)
    'W x I = 2^5.(0011).I + 2^0.(1001).I'
    """
    if weight < 0:
        raise ValueError("format_decomposition expects a non-negative weight")
    terms = decompose_magnitude(weight, layout, alphabet_set)
    if not terms:
        return f"W x {symbol} = 0"
    parts = []
    for term in sorted(terms, key=lambda t: -t.shift):
        alpha_bits = format(term.alphabet, "04b")  # alphabets are unsigned
        parts.append(f"2^{term.shift}.({alpha_bits}).{symbol}")
    return f"W x {symbol} = " + " + ".join(parts)
