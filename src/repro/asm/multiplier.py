"""Functional (bit-accurate) models of the multipliers in the neuron.

Two datapaths are modelled:

* :class:`ConventionalMultiplier` — the exact signed array multiplier the
  paper's baseline neuron uses.
* :class:`AlphabetSetMultiplier` — the ASM: the weight magnitude is split
  into quartets, each quartet selects a pre-computed alphabet multiple of the
  input and a shift, and the shifted alphabets are summed.  With a reduced
  alphabet set, quartet values outside the supported set cannot be selected;
  the ``fallback`` policy models what the control logic does instead:

  - ``"error"``    — raise; use when weights are guaranteed constrained,
  - ``"nearest"``  — select the nearest supported quartet (midpoint rounds
    up, no carry — the control logic is per-quartet),
  - ``"truncate"`` — select the largest supported quartet not above the
    value (simplest possible control logic).

Because the ASM's output depends on the weight only through the per-quartet
remapping, every signed weight has an *effective weight* such that
``asm(W, I) == effective(W) * I`` exactly.  :meth:`effective_weight_table`
exposes that mapping; the quantised network inference in
:mod:`repro.nn.quantized` uses it to run ASM-exact forward passes as plain
integer matmuls.  The explicit select/shift/add path in :meth:`multiply` is
retained and cross-checked against the table in the tests.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.asm.alphabet import AlphabetSet
from repro.asm.constraints import nearest_supported
from repro.asm.decompose import UnsupportedQuartetError, decompose_quartet
from repro.fixedpoint.binary import signed_range
from repro.fixedpoint.quartet import QuartetLayout

__all__ = ["ConventionalMultiplier", "AlphabetSetMultiplier",
           "FALLBACK_POLICIES", "UNSUPPORTED_WEIGHT",
           "effective_weight_table"]

FALLBACK_POLICIES = ("error", "nearest", "truncate")

#: Table entry marking a weight the ``"error"`` policy rejects.
UNSUPPORTED_WEIGHT = np.iinfo(np.int64).min


@lru_cache(maxsize=None)
def _quartet_map(alphabet_set: AlphabetSet, width: int,
                 fallback: str) -> tuple[int | None, ...]:
    """Process-wide cache of the quartet remap under a fallback policy."""
    supported = sorted(alphabet_set.supported_values(width))
    mapping: list[int | None] = []
    for value in range(1 << width):
        if value in alphabet_set.supported_values(width):
            mapping.append(value)
        elif fallback == "nearest":
            mapping.append(nearest_supported(value, tuple(supported)))
        elif fallback == "truncate":
            mapping.append(max(s for s in supported if s <= value))
        else:
            mapping.append(None)
    return tuple(mapping)


@lru_cache(maxsize=None)
def _effective_weight_table(bits: int, alphabet_set: AlphabetSet,
                            fallback: str) -> np.ndarray:
    """Process-wide cache of the signed effective-weight lookup table.

    Shared by every :class:`AlphabetSetMultiplier` with the same
    ``(bits, alphabet_set, fallback)`` — repeated :class:`QuantizedNetwork
    <repro.nn.quantized.QuantizedNetwork>` constructions and the serving
    stack's :class:`~repro.serving.compiled.CompiledModel` all hit the same
    table.  The array is marked read-only because it is shared.
    """
    multiplier = AlphabetSetMultiplier(bits, alphabet_set, fallback=fallback)
    offset = 1 << (bits - 1)
    table = np.empty(2 * offset, dtype=np.int64)
    for weight in range(-offset, offset):
        try:
            table[weight + offset] = multiplier.effective_weight(weight)
        except UnsupportedQuartetError:
            table[weight + offset] = AlphabetSetMultiplier._UNSUPPORTED
    table.setflags(write=False)
    return table


def effective_weight_table(bits: int, alphabet_set: AlphabetSet,
                           fallback: str = "error") -> np.ndarray:
    """The memoized signed effective-weight lookup table, directly.

    The function every folding path should use: it hits the process-wide
    cache without constructing an :class:`AlphabetSetMultiplier` per call
    — :meth:`QuantizationSpec.quantize_weights
    <repro.nn.quantized.QuantizationSpec.quantize_weights>` folds the
    deployed weights of every layer in every constrained sweep through
    it.  Index ``w + 2**(bits-1)`` → effective weight; under the
    ``"error"`` policy, unsupported weights hold the sentinel
    :data:`UNSUPPORTED_WEIGHT`.  Returned read-only; copy before
    mutating.
    """
    if fallback not in FALLBACK_POLICIES:
        raise ValueError(
            f"unknown fallback {fallback!r}; choose from {FALLBACK_POLICIES}"
        )
    return _effective_weight_table(bits, alphabet_set, fallback)


class ConventionalMultiplier:
    """Exact signed multiplier on *bits*-bit operands (the baseline)."""

    def __init__(self, bits: int) -> None:
        self.bits = bits
        self._low, self._high = signed_range(bits)

    def _check(self, value: int, name: str) -> None:
        if not self._low <= value <= self._high:
            raise OverflowError(
                f"{name} {value} outside signed {self.bits}-bit range"
            )

    def multiply(self, weight: int, operand: int) -> int:
        """Exact product ``weight * operand``."""
        self._check(weight, "weight")
        self._check(operand, "operand")
        return weight * operand

    def multiply_array(self, weights: np.ndarray,
                       operands: np.ndarray) -> np.ndarray:
        """Vectorised exact product (broadcasting allowed)."""
        return np.asarray(weights, dtype=np.int64) * np.asarray(
            operands, dtype=np.int64)


class AlphabetSetMultiplier:
    """Bit-accurate ASM model for *bits*-bit weights.

    Parameters
    ----------
    bits:
        Weight word width; the quartet layout follows the paper's Fig. 4.
    alphabet_set:
        Alphabets available from the pre-computer bank.
    fallback:
        Control-logic policy for unsupported quartet values (see module
        docstring).  Constrained networks never trigger it.
    """

    def __init__(self, bits: int, alphabet_set: AlphabetSet,
                 fallback: str = "error") -> None:
        if fallback not in FALLBACK_POLICIES:
            raise ValueError(
                f"unknown fallback {fallback!r}; choose from {FALLBACK_POLICIES}"
            )
        self.bits = bits
        self.alphabet_set = alphabet_set
        self.fallback = fallback
        self.layout = QuartetLayout(bits)
        self._low, self._high = signed_range(bits)
        # Per-width quartet remap under the fallback policy (memoized
        # process-wide: identical (alphabet, width, fallback) share tuples).
        self._quartet_maps = {
            width: _quartet_map(alphabet_set, width, fallback)
            for width in set(self.layout.quartet_widths)
        }

    # ------------------------------------------------------------------
    # the explicit datapath: pre-compute, select, shift, add
    # ------------------------------------------------------------------
    def precompute_bank(self, operand: int) -> dict[int, int]:
        """Alphabet multiples of *operand*, as the pre-computer bank would
        produce them.  The MAN set ``{1}`` needs no bank; the dict is then
        just the pass-through ``{1: operand}``.
        """
        if not self._low <= operand <= self._high:
            raise OverflowError(
                f"operand {operand} outside signed {self.bits}-bit range"
            )
        return {a: a * operand for a in self.alphabet_set}

    def multiply(self, weight: int, operand: int) -> int:
        """ASM product via explicit select/shift/add on the alphabet bank."""
        if not self._low <= weight <= self._high:
            raise OverflowError(
                f"weight {weight} outside signed {self.bits}-bit range"
            )
        bank = self.precompute_bank(operand)
        # Multiply the absolute value; the sign is applied at the end
        # (paper §IV.A: the sign bit is handled outside the quartets).
        magnitude = min(abs(weight), self.layout.max_magnitude)
        sign = -1 if weight < 0 else 1
        total = 0
        for index, value in enumerate(self.layout.split(magnitude)):
            width = self.layout.quartet_widths[index]
            realised = self._quartet_maps[width][value]
            if realised is None:
                raise UnsupportedQuartetError(value, self.alphabet_set)
            pair = decompose_quartet(realised, self.alphabet_set, width=width)
            if pair is None:
                continue
            alphabet, local_shift = pair
            selected = bank[alphabet]                       # select
            shifted = selected << local_shift               # shift
            total += shifted << self.layout.shift_of(index)  # add
        return sign * total

    # ------------------------------------------------------------------
    # effective-weight view (exact equivalent of the datapath)
    # ------------------------------------------------------------------
    def effective_magnitude(self, magnitude: int) -> int:
        """Magnitude the datapath realises for a weight magnitude."""
        result = 0
        for index, value in enumerate(self.layout.split(magnitude)):
            width = self.layout.quartet_widths[index]
            realised = self._quartet_maps[width][value]
            if realised is None:
                raise UnsupportedQuartetError(value, self.alphabet_set)
            result |= realised << self.layout.shift_of(index)
        return result

    def effective_weight(self, weight: int) -> int:
        """Signed weight the datapath realises for *weight*."""
        if not self._low <= weight <= self._high:
            raise OverflowError(
                f"weight {weight} outside signed {self.bits}-bit range"
            )
        magnitude = min(abs(weight), self.layout.max_magnitude)
        sign = -1 if weight < 0 else 1
        return sign * self.effective_magnitude(magnitude)

    #: Table entry marking a weight the ``"error"`` policy rejects.
    _UNSUPPORTED = UNSUPPORTED_WEIGHT

    def effective_weight_table(self) -> np.ndarray:
        """Signed lookup table: index ``w + 2**(bits-1)`` → effective weight.

        Under the ``"error"`` policy, entries for unsupported weights hold
        the sentinel ``_UNSUPPORTED``; :meth:`multiply_array` rejects any
        batch that touches one.

        The table is memoized process-wide on ``(bits, alphabet_set,
        fallback)`` and returned read-only; copy before mutating.
        """
        return _effective_weight_table(self.bits, self.alphabet_set,
                                       self.fallback)

    def multiply_array(self, weights: np.ndarray,
                       operands: np.ndarray) -> np.ndarray:
        """Vectorised ASM product using the effective-weight table.

        Under the ``"error"`` policy every weight in the batch must be on the
        supported grid, otherwise :class:`UnsupportedQuartetError` is raised.
        """
        table = self.effective_weight_table()
        weights = np.asarray(weights, dtype=np.int64)
        offset = 1 << (self.bits - 1)
        index = weights + offset
        if index.size and (index.min() < 0 or index.max() >= len(table)):
            raise OverflowError(
                f"weights outside signed {self.bits}-bit range"
            )
        effective = table[index]
        if index.size and (effective == self._UNSUPPORTED).any():
            bad = int(weights[effective == self._UNSUPPORTED].flat[0])
            raise UnsupportedQuartetError(abs(bad), self.alphabet_set)
        return effective * np.asarray(operands, dtype=np.int64)

    # ------------------------------------------------------------------
    def error_profile(self) -> dict[str, float]:
        """Worst and mean |effective - true| over all weights in range.

        Only meaningful with a non-``error`` fallback (otherwise constrained
        weights make the error identically zero).
        """
        offset = 1 << (self.bits - 1)
        true = np.arange(-offset, offset, dtype=np.int64)
        effective = self.effective_weight_table()
        errors = np.abs(effective - true).astype(np.float64)
        return {
            "max_abs_error": float(errors.max()),
            "mean_abs_error": float(errors.mean()),
            "fraction_exact": float(np.mean(errors == 0)),
        }
