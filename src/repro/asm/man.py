"""Shift-add programs and the Multiplier-less Artificial Neuron (MAN).

With the single alphabet ``{1}`` the ASM needs no pre-computer bank and no
select network: every supported quartet is a power of two, so a weight is a
sum of shifted copies of the input.  This module compiles constrained weights
into explicit :class:`ShiftAddProgram` objects — the exact sequence of shift
and add operations the MAN datapath performs — and exposes the operation
counts the hardware model uses.

Programs generalise to any alphabet set (each term is then
``alphabet * 2**shift``), so the same machinery reports add/shift counts for
2- and 4-alphabet ASMs too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.alphabet import ALPHA_1, AlphabetSet
from repro.asm.decompose import QuartetTerm, decompose_magnitude
from repro.fixedpoint.quartet import QuartetLayout

__all__ = ["ShiftAddProgram", "compile_weight", "man_program", "MANMultiplier"]


@dataclass(frozen=True)
class ShiftAddProgram:
    """A compiled multiply-by-constant: ``sign * sum(a_k * (x << s_k))``."""

    weight: int
    terms: tuple[QuartetTerm, ...]
    sign: int

    @property
    def num_terms(self) -> int:
        return len(self.terms)

    @property
    def num_adds(self) -> int:
        """Two-input additions needed to sum the terms (``terms - 1``)."""
        return max(0, len(self.terms) - 1)

    @property
    def num_shifts(self) -> int:
        """Non-trivial shifts (shift amount > 0)."""
        return sum(1 for t in self.terms if t.shift > 0)

    @property
    def uses_only_input(self) -> bool:
        """True when every term selects alphabet 1 (pure MAN program)."""
        return all(t.alphabet == 1 for t in self.terms)

    def apply(self, operand: int) -> int:
        """Execute the program on *operand*; equals ``weight * operand``."""
        total = 0
        for term in self.terms:
            total += (term.alphabet * operand) << term.shift
        return self.sign * total

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for term in sorted(self.terms, key=lambda t: -t.shift):
            base = "x" if term.alphabet == 1 else f"{term.alphabet}x"
            parts.append(base if term.shift == 0 else f"({base} << {term.shift})")
        body = " + ".join(parts)
        return f"-({body})" if self.sign < 0 else body


def compile_weight(weight: int, layout: QuartetLayout,
                   alphabet_set: AlphabetSet) -> ShiftAddProgram:
    """Compile a constrained signed *weight* into a shift-add program.

    Raises :class:`repro.asm.decompose.UnsupportedQuartetError` if the weight
    is not on the supported grid — compile only constrained weights.

    >>> from repro.fixedpoint.quartet import LAYOUT_8BIT
    >>> str(compile_weight(68, LAYOUT_8BIT, ALPHA_1))
    '(x << 6) + (x << 2)'
    """
    magnitude = min(abs(weight), layout.max_magnitude)
    terms = tuple(decompose_magnitude(magnitude, layout, alphabet_set))
    return ShiftAddProgram(weight=weight, terms=terms,
                           sign=-1 if weight < 0 else 1)


def man_program(weight: int, layout: QuartetLayout) -> ShiftAddProgram:
    """Compile *weight* for the 1-alphabet MAN datapath.

    The weight must be MAN-representable (every quartet a power of two or
    zero); constrain it with
    :class:`repro.asm.constraints.WeightConstrainer` first.
    """
    program = compile_weight(weight, layout, ALPHA_1)
    assert program.uses_only_input
    return program


class MANMultiplier:
    """Convenience facade: the 1-alphabet ASM as a standalone multiplier.

    Identical to ``AlphabetSetMultiplier(bits, ALPHA_1, fallback)`` but
    documents intent at call sites and exposes shift-add program compilation.
    """

    def __init__(self, bits: int, fallback: str = "error") -> None:
        # Imported here to avoid a cycle at module import time.
        from repro.asm.multiplier import AlphabetSetMultiplier

        self.bits = bits
        self.layout = QuartetLayout(bits)
        self._asm = AlphabetSetMultiplier(bits, ALPHA_1, fallback=fallback)

    @property
    def alphabet_set(self) -> AlphabetSet:
        return ALPHA_1

    def multiply(self, weight: int, operand: int) -> int:
        """MAN product via shifts and adds only."""
        return self._asm.multiply(weight, operand)

    def multiply_array(self, weights, operands):
        """Vectorised MAN product (see :class:`AlphabetSetMultiplier`)."""
        return self._asm.multiply_array(weights, operands)

    def effective_weight(self, weight: int) -> int:
        return self._asm.effective_weight(weight)

    def program(self, weight: int) -> ShiftAddProgram:
        """Shift-add program for a MAN-representable weight."""
        return man_program(self._asm.effective_weight(weight), self.layout)
