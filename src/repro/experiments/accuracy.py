"""Accuracy experiments: Tables II and III and Fig. 7.

For one benchmark the grid runs:

1. unconstrained training to saturation → conventional engine accuracy,
2. for each alphabet count (4, 2, 1): restore the unconstrained weights,
   retrain under constraints at a lower learning rate, measure accuracy
   through the bit-accurate ASM engine.

The heavy lifting happens in :mod:`repro.pipeline` (stages ``train`` →
``quantize`` → ``constrain`` → ``evaluate``); this module maps the
resulting :class:`~repro.pipeline.report.PipelineReport` onto the paper's
table shape: (size of synapse, number of alphabets, accuracy %, accuracy
loss %).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.alphabet import standard_set
from repro.experiments.config import Budget
from repro.hardware.report import format_table
from repro.pipeline import Pipeline, PipelineConfig

__all__ = ["AccuracyRow", "AccuracyGrid", "run_accuracy_grid",
           "run_figure7", "format_accuracy_table"]


@dataclass(frozen=True)
class AccuracyRow:
    """One row of Table II/III."""

    bits: int
    num_alphabets: int | None      # None = conventional multiplier
    accuracy: float
    loss: float                    # vs the conventional row, in points

    @property
    def label(self) -> str:
        if self.num_alphabets is None:
            return "conventional NN"
        return f"{self.num_alphabets} {standard_set(self.num_alphabets)}"


@dataclass
class AccuracyGrid:
    """All rows for one application at one word width."""

    app: str
    bits: int
    rows: list[AccuracyRow]

    @property
    def baseline(self) -> AccuracyRow:
        return self.rows[0]

    def row_for(self, num_alphabets: int | None) -> AccuracyRow:
        for row in self.rows:
            if row.num_alphabets == num_alphabets:
                return row
        raise KeyError(f"no row for {num_alphabets} alphabets")

    @property
    def max_loss(self) -> float:
        return max(row.loss for row in self.rows)


def run_accuracy_grid(app: str, bits: int | None = None,
                      alphabet_counts: tuple[int, ...] = (4, 2, 1),
                      full: bool = False, seed: int = 0,
                      constraint_mode: str = "greedy",
                      budget_override: Budget | None = None) -> AccuracyGrid:
    """Run the Table II/III grid for one application.

    ``bits=None`` uses the benchmark's Table IV word width.  The grid always
    starts with the conventional row, then one row per alphabet count.
    """
    config = PipelineConfig(
        app=app, bits=bits,
        designs=("conventional",)
        + tuple(f"asm{count}" for count in alphabet_counts),
        stages=("train", "quantize", "constrain", "evaluate"),
        budget=(budget_override if budget_override is not None
                else ("full" if full else "quick")),
        seed=seed, constraint_mode=constraint_mode)
    report = Pipeline(config).run()
    grid_bits = config.word_bits()
    rows = [AccuracyRow(bits=grid_bits, num_alphabets=None,
                        accuracy=report.quantize.baseline_accuracy,
                        loss=0.0)]
    for count in alphabet_counts:
        row = report.evaluate.row_for(f"asm{count}")
        rows.append(AccuracyRow(bits=grid_bits, num_alphabets=count,
                                accuracy=row.accuracy, loss=row.loss))
    return AccuracyGrid(app=app, bits=grid_bits, rows=rows)


def run_figure7(full: bool = False, seed: int = 0,
                apps: tuple[str, ...] | None = None,
                ) -> dict[str, AccuracyGrid]:
    """Fig. 7: the accuracy grid for every application at its Table IV
    word width, normalised rows included via :class:`AccuracyGrid`."""
    from repro.experiments.config import ACCURACY_APPS
    grids = {}
    for app in (apps or ACCURACY_APPS):
        grids[app] = run_accuracy_grid(app, full=full, seed=seed)
    return grids


def format_accuracy_table(grid: AccuracyGrid, title: str) -> str:
    """Render a grid in the paper's Table II/III shape."""
    rows = []
    for row in grid.rows:
        rows.append([
            f"{row.bits} bits",
            row.label,
            f"{row.accuracy * 100:.2f}",
            "--" if row.num_alphabets is None else f"{row.loss * 100:.2f}",
        ])
    return format_table(
        ["Size of Synapse", "No. of Alphabets", "Accuracy (%)",
         "Accuracy Loss (%)"],
        rows, title=title)
