"""Accuracy experiments: Tables II and III and Fig. 7.

For one benchmark the grid runs:

1. unconstrained training to saturation → conventional engine accuracy,
2. for each alphabet count (4, 2, 1): restore the unconstrained weights,
   retrain under constraints at a lower learning rate, measure accuracy
   through the bit-accurate ASM engine.

Rows mirror the paper's tables: (size of synapse, number of alphabets,
accuracy %, accuracy loss %).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.alphabet import standard_set
from repro.asm.constraints import WeightConstrainer
from repro.datasets.registry import BENCHMARKS, build_model, load_dataset
from repro.experiments.config import TRAIN_SETTINGS, Budget, budget
from repro.hardware.report import format_table
from repro.nn.optim import SGD
from repro.nn.quantized import QuantizationSpec, QuantizedNetwork
from repro.nn.trainer import Trainer
from repro.training.constrained import ConstraintProjector, constrained_trainer

__all__ = ["AccuracyRow", "AccuracyGrid", "run_accuracy_grid",
           "run_figure7", "format_accuracy_table"]


@dataclass(frozen=True)
class AccuracyRow:
    """One row of Table II/III."""

    bits: int
    num_alphabets: int | None      # None = conventional multiplier
    accuracy: float
    loss: float                    # vs the conventional row, in points

    @property
    def label(self) -> str:
        if self.num_alphabets is None:
            return "conventional NN"
        return f"{self.num_alphabets} {standard_set(self.num_alphabets)}"


@dataclass
class AccuracyGrid:
    """All rows for one application at one word width."""

    app: str
    bits: int
    rows: list[AccuracyRow]

    @property
    def baseline(self) -> AccuracyRow:
        return self.rows[0]

    def row_for(self, num_alphabets: int | None) -> AccuracyRow:
        for row in self.rows:
            if row.num_alphabets == num_alphabets:
                return row
        raise KeyError(f"no row for {num_alphabets} alphabets")

    @property
    def max_loss(self) -> float:
        return max(row.loss for row in self.rows)


def run_accuracy_grid(app: str, bits: int | None = None,
                      alphabet_counts: tuple[int, ...] = (4, 2, 1),
                      full: bool = False, seed: int = 0,
                      constraint_mode: str = "greedy",
                      budget_override: Budget | None = None) -> AccuracyGrid:
    """Run the Table II/III grid for one application.

    ``bits=None`` uses the benchmark's Table IV word width.  The grid always
    starts with the conventional row, then one row per alphabet count.
    """
    spec = BENCHMARKS[app]
    bits = bits if bits is not None else spec.bits
    tier = budget_override or budget(full)
    settings = TRAIN_SETTINGS[app]
    dataset = load_dataset(app, n_train=tier.n_train, n_test=tier.n_test,
                           seed=seed)
    model = build_model(app, seed=seed + 1)
    use_images = spec.needs_images
    x_train = dataset.x_train if use_images else dataset.flat_train
    x_test = dataset.x_test if use_images else dataset.flat_test

    trainer = Trainer(model, SGD(model, settings.learning_rate),
                      batch_size=settings.batch_size,
                      patience=settings.patience)
    trainer.fit(x_train, dataset.y_train_onehot, x_test, dataset.y_test,
                max_epochs=tier.max_epochs)

    baseline_acc = QuantizedNetwork.from_float(
        model, QuantizationSpec(bits)).accuracy(x_test, dataset.y_test)
    rows = [AccuracyRow(bits=bits, num_alphabets=None,
                        accuracy=baseline_acc, loss=0.0)]
    restore_point = model.state()

    for count in alphabet_counts:
        alphabet_set = standard_set(count)
        model.load_state(restore_point)
        projector = ConstraintProjector(model, bits, alphabet_set,
                                        mode=constraint_mode)
        optimizer = SGD(model, settings.learning_rate
                        * settings.retrain_lr_scale)
        retrainer = constrained_trainer(
            model, optimizer, projector,
            batch_size=settings.batch_size, patience=settings.patience)
        retrainer.fit(x_train, dataset.y_train_onehot, x_test,
                      dataset.y_test, max_epochs=tier.retrain_epochs)
        constrainer = WeightConstrainer(bits, alphabet_set,
                                        mode=constraint_mode)
        quantized = QuantizedNetwork.from_float(
            model, QuantizationSpec(bits, alphabet_set,
                                    constrainer=constrainer))
        accuracy = quantized.accuracy(x_test, dataset.y_test)
        rows.append(AccuracyRow(bits=bits, num_alphabets=count,
                                accuracy=accuracy,
                                loss=baseline_acc - accuracy))
    return AccuracyGrid(app=app, bits=bits, rows=rows)


def run_figure7(full: bool = False, seed: int = 0,
                apps: tuple[str, ...] | None = None,
                ) -> dict[str, AccuracyGrid]:
    """Fig. 7: the accuracy grid for every application at its Table IV
    word width, normalised rows included via :class:`AccuracyGrid`."""
    from repro.experiments.config import ACCURACY_APPS
    grids = {}
    for app in (apps or ACCURACY_APPS):
        grids[app] = run_accuracy_grid(app, full=full, seed=seed)
    return grids


def format_accuracy_table(grid: AccuracyGrid, title: str) -> str:
    """Render a grid in the paper's Table II/III shape."""
    rows = []
    for row in grid.rows:
        rows.append([
            f"{row.bits} bits",
            row.label,
            f"{row.accuracy * 100:.2f}",
            "--" if row.num_alphabets is None else f"{row.loss * 100:.2f}",
        ])
    return format_table(
        ["Size of Synapse", "No. of Alphabets", "Accuracy (%)",
         "Accuracy Loss (%)"],
        rows, title=title)
