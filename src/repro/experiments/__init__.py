"""Experiment drivers reproducing every table and figure of the paper.

See DESIGN.md §5 for the experiment index.  Run everything with::

    python -m repro.experiments.runner --experiment all
"""

from repro.experiments.accuracy import (
    AccuracyGrid,
    AccuracyRow,
    format_accuracy_table,
    run_accuracy_grid,
    run_figure7,
)
from repro.experiments.config import (
    ACCURACY_APPS,
    FULL,
    QUICK,
    Budget,
    TrainSettings,
    budget,
)
from repro.experiments.energy import (
    FIGURE9_GROUPS,
    EnergyRow,
    format_energy_table,
    run_figure9,
)
from repro.experiments.mixed import (
    FIGURE11_APPS,
    Figure11Row,
    format_figure11_table,
    mixed_plan_for,
    run_figure11,
    run_figure11_app,
)
from repro.experiments.power_area import (
    PAPER_VALUES,
    HardwareRow,
    format_hardware_table,
    run_figure8,
    run_figure10,
    run_hardware_grid,
)
# NOTE: repro.experiments.runner is intentionally not imported here so that
# `python -m repro.experiments.runner` does not trigger the runpy
# double-import warning; import it directly where needed.
from repro.experiments.tables import (
    format_table1,
    format_table4,
    format_table5,
    table1_rows,
    table4_rows,
    table5_rows,
)

__all__ = [
    "AccuracyGrid", "AccuracyRow", "format_accuracy_table",
    "run_accuracy_grid", "run_figure7",
    "ACCURACY_APPS", "FULL", "QUICK", "Budget", "TrainSettings", "budget",
    "FIGURE9_GROUPS", "EnergyRow", "format_energy_table", "run_figure9",
    "FIGURE11_APPS", "Figure11Row", "format_figure11_table",
    "mixed_plan_for", "run_figure11", "run_figure11_app",
    "PAPER_VALUES", "HardwareRow", "format_hardware_table",
    "run_figure8", "run_figure10", "run_hardware_grid",
    "format_table1", "format_table4", "format_table5",
    "table1_rows", "table4_rows", "table5_rows",
]
