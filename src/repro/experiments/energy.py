"""Fig. 9: per-application inference energy, grouped by network class.

The paper groups its five applications by size/type: (a) 2-layer MLPs
(MNIST MLP, Face Detection), (b) 5-6 layer MLPs (SVHN, TICH), (c) the
6-layer LeNet CNN.  For each application the CSHM engine costs one
inference pass under the conventional, 4-, 2- and 1-alphabet designs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4, AlphabetSet
from repro.datasets.registry import BENCHMARKS, build_model
from repro.hardware.engine import ProcessingEngine
from repro.hardware.report import format_table

__all__ = ["EnergyRow", "FIGURE9_GROUPS", "run_figure9",
           "format_energy_table"]

#: Paper Fig. 9 grouping of the five applications.
FIGURE9_GROUPS: dict[str, tuple[str, ...]] = {
    "2-layer MLPs": ("mnist_mlp", "face"),
    "5-6 layer MLPs": ("svhn", "tich"),
    "6-layer CNN": ("mnist_cnn",),
}


@dataclass(frozen=True)
class EnergyRow:
    """Energy of one application under one design."""

    group: str
    app: str
    design: str                 # "conventional" / "{1,3,5,7}" / ...
    energy_nj: float
    normalized: float           # vs the conventional design, same app


def run_figure9() -> list[EnergyRow]:
    """Cost one inference of every benchmark under every design."""
    designs: list[tuple[str, AlphabetSet | None]] = [
        ("conventional", None),
        (str(ALPHA_4), ALPHA_4),
        (str(ALPHA_2), ALPHA_2),
        (str(ALPHA_1), ALPHA_1),
    ]
    rows = []
    for group, apps in FIGURE9_GROUPS.items():
        for app in apps:
            spec = BENCHMARKS[app]
            topology = build_model(app).topology()
            baseline_nj = None
            for label, aset in designs:
                engine = ProcessingEngine(spec.bits, aset)
                report = engine.run(topology)
                if baseline_nj is None:
                    baseline_nj = report.energy_nj
                rows.append(EnergyRow(
                    group=group, app=app, design=label,
                    energy_nj=report.energy_nj,
                    normalized=report.energy_nj / baseline_nj,
                ))
    return rows


def format_energy_table(rows: list[EnergyRow], title: str) -> str:
    table_rows = [
        [row.group, row.app, row.design,
         f"{row.energy_nj:.1f}", f"{row.normalized:.3f}"]
        for row in rows
    ]
    return format_table(
        ["Group", "Application", "Design", "Energy (nJ)",
         "normalized"],
        table_rows, title=title)
