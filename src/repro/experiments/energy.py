"""Fig. 9: per-application inference energy, grouped by network class.

The paper groups its five applications by size/type: (a) 2-layer MLPs
(MNIST MLP, Face Detection), (b) 5-6 layer MLPs (SVHN, TICH), (c) the
6-layer LeNet CNN.  For each application the CSHM engine costs one
inference pass under the conventional, 4-, 2- and 1-alphabet designs —
now via the pipeline's ``energy`` stage (no training involved); this
module only regroups the rows into the paper's Fig. 9 shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.report import format_table
from repro.pipeline import Pipeline, PipelineConfig

__all__ = ["EnergyRow", "FIGURE9_GROUPS", "run_figure9",
           "format_energy_table"]

#: Paper Fig. 9 grouping of the five applications.
FIGURE9_GROUPS: dict[str, tuple[str, ...]] = {
    "2-layer MLPs": ("mnist_mlp", "face"),
    "5-6 layer MLPs": ("svhn", "tich"),
    "6-layer CNN": ("mnist_cnn",),
}

#: The Fig. 9 design sweep, in paper order.
_FIGURE9_DESIGNS = ("conventional", "asm4", "asm2", "asm1")


@dataclass(frozen=True)
class EnergyRow:
    """Energy of one application under one design."""

    group: str
    app: str
    design: str                 # "conventional" / "{1,3,5,7}" / ...
    energy_nj: float
    normalized: float           # vs the conventional design, same app


def run_figure9() -> list[EnergyRow]:
    """Cost one inference of every benchmark under every design."""
    rows = []
    for group, apps in FIGURE9_GROUPS.items():
        for app in apps:
            config = PipelineConfig(app=app, designs=_FIGURE9_DESIGNS,
                                    stages=("energy",))
            report = Pipeline(config).run()
            for row in report.energy.rows:
                rows.append(EnergyRow(
                    group=group, app=app, design=row.label,
                    energy_nj=row.energy_nj,
                    normalized=row.normalized,
                ))
    return rows


def format_energy_table(rows: list[EnergyRow], title: str) -> str:
    table_rows = [
        [row.group, row.app, row.design,
         f"{row.energy_nj:.1f}", f"{row.normalized:.3f}"]
        for row in rows
    ]
    return format_table(
        ["Group", "Application", "Design", "Energy (nJ)",
         "normalized"],
        table_rows, title=title)
