"""Export experiment: train → constrain → export → reload → verify.

The deployment path the serving stack exists for: train a benchmark
network, retrain it under alphabet constraints (Algorithm 2's inner step),
lower it onto the integer engine, persist it as a
:mod:`repro.serving.artifact` bundle, reload it through the registry as a
:class:`~repro.serving.compiled.CompiledModel`, and check the reloaded
scores are **bit-identical** to the exported network on the held-out set.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.asm.alphabet import standard_set
from repro.asm.constraints import WeightConstrainer
from repro.datasets.registry import BENCHMARKS, build_model, load_dataset
from repro.experiments.config import TRAIN_SETTINGS, Budget, budget
from repro.hardware.report import format_table
from repro.nn.optim import SGD
from repro.nn.quantized import QuantizationSpec, QuantizedNetwork
from repro.nn.trainer import Trainer
from repro.training.constrained import ConstraintProjector, constrained_trainer

__all__ = ["ExportReport", "run_export", "format_export_table"]


@dataclass(frozen=True)
class ExportReport:
    """Outcome of one train → export → reload → verify cycle."""

    app: str
    bits: int
    num_alphabets: int
    path: str
    spec_label: str
    quantized_accuracy: float
    compiled_accuracy: float
    bit_identical: bool
    num_params: int
    artifact_bytes: int
    energy_nj_per_inference: float | None


def run_export(app: str = "mnist_mlp", num_alphabets: int = 2,
               out_dir: str = os.path.join("results", "artifacts"),
               full: bool = False, seed: int = 0,
               budget_override: Budget | None = None) -> ExportReport:
    """Train a constrained *app* network and export it for serving.

    The bundle lands in ``<out_dir>/<app>-asm<num_alphabets>``; the report
    records reload accuracy and whether reloaded scores match exactly.
    """
    from repro.serving.compiled import CompiledModel
    from repro.serving.registry import ModelRegistry

    spec_row = BENCHMARKS[app]
    bits = spec_row.bits
    tier = budget_override or budget(full)
    settings = TRAIN_SETTINGS[app]
    alphabet_set = standard_set(num_alphabets)

    dataset = load_dataset(app, n_train=tier.n_train, n_test=tier.n_test,
                           seed=seed)
    model = build_model(app, seed=seed + 1)
    x_train = dataset.x_train if spec_row.needs_images else dataset.flat_train
    x_test = dataset.x_test if spec_row.needs_images else dataset.flat_test

    trainer = Trainer(model, SGD(model, settings.learning_rate),
                      batch_size=settings.batch_size,
                      patience=settings.patience)
    trainer.fit(x_train, dataset.y_train_onehot, x_test, dataset.y_test,
                max_epochs=tier.max_epochs)

    projector = ConstraintProjector(model, bits, alphabet_set)
    optimizer = SGD(model,
                    settings.learning_rate * settings.retrain_lr_scale)
    retrainer = constrained_trainer(model, optimizer, projector,
                                    batch_size=settings.batch_size,
                                    patience=settings.patience)
    retrainer.fit(x_train, dataset.y_train_onehot, x_test, dataset.y_test,
                  max_epochs=tier.retrain_epochs)

    constrainer = WeightConstrainer(bits, alphabet_set)
    quantized = QuantizedNetwork.from_float(
        model, QuantizationSpec(bits, alphabet_set, constrainer=constrainer))

    path = os.path.join(out_dir, f"{app}-asm{num_alphabets}")
    quantized.export(path)
    artifact_bytes = sum(
        os.path.getsize(os.path.join(path, item))
        for item in os.listdir(path))

    registry = ModelRegistry()
    compiled: CompiledModel = registry.register(path, name=app).model
    reference = quantized.forward(x_test)
    reloaded = compiled.forward(x_test)
    return ExportReport(
        app=app, bits=bits, num_alphabets=num_alphabets, path=path,
        spec_label=quantized.spec.label,
        quantized_accuracy=quantized.accuracy(x_test, dataset.y_test),
        compiled_accuracy=compiled.accuracy(x_test, dataset.y_test),
        bit_identical=bool(np.array_equal(reference, reloaded)),
        num_params=compiled.num_params,
        artifact_bytes=artifact_bytes,
        energy_nj_per_inference=compiled.energy_per_inference_nj(),
    )


def format_export_table(report: ExportReport) -> str:
    """Render one export cycle as a summary table."""
    energy = report.energy_nj_per_inference
    rows = [
        ["application", report.app],
        ["deployed spec", report.spec_label],
        ["artifact path", report.path],
        ["artifact size", f"{report.artifact_bytes / 1024:.1f} KiB"],
        ["deployed params", str(report.num_params)],
        ["quantized accuracy (%)",
         f"{report.quantized_accuracy * 100:.2f}"],
        ["reloaded accuracy (%)",
         f"{report.compiled_accuracy * 100:.2f}"],
        ["reload bit-identical", "yes" if report.bit_identical else "NO"],
        ["energy / inference",
         f"{energy:.1f} nJ" if energy is not None else "n/a"],
    ]
    return format_table(["Field", "Value"], rows,
                        title="Export - constrained network to serving "
                              "artifact")
