"""Export experiment: train → constrain → export → reload → verify.

The deployment path the serving stack exists for, expressed as the
pipeline stages ``train`` → ``constrain`` → ``evaluate`` → ``export`` →
``serve-check``: train a benchmark network, retrain it under alphabet
constraints (Algorithm 2's inner step), lower it onto the integer engine,
persist it as a :mod:`repro.serving.artifact` bundle, reload it through
the registry as a :class:`~repro.serving.compiled.CompiledModel`, and
check the reloaded scores are **bit-identical** to the exported network
on the held-out set.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.experiments.config import Budget
from repro.hardware.report import format_table
from repro.pipeline import Pipeline, PipelineConfig

__all__ = ["ExportReport", "run_export", "format_export_table"]


@dataclass(frozen=True)
class ExportReport:
    """Outcome of one train → export → reload → verify cycle."""

    app: str
    bits: int
    num_alphabets: int
    path: str
    spec_label: str
    quantized_accuracy: float
    compiled_accuracy: float
    bit_identical: bool
    num_params: int
    artifact_bytes: int
    energy_nj_per_inference: float | None


def run_export(app: str = "mnist_mlp", num_alphabets: int = 2,
               out_dir: str = os.path.join("results", "artifacts"),
               full: bool = False, seed: int = 0,
               budget_override: Budget | None = None) -> ExportReport:
    """Train a constrained *app* network and export it for serving.

    The bundle lands in ``<out_dir>/<app>-asm<num_alphabets>``; the report
    records reload accuracy and whether reloaded scores match exactly.
    """
    design = f"asm{num_alphabets}"
    config = PipelineConfig(
        app=app, designs=(design,),
        stages=("train", "constrain", "evaluate", "export", "serve-check"),
        budget=(budget_override if budget_override is not None
                else ("full" if full else "quick")),
        seed=seed, export_design=design, export_dir=out_dir,
        serve_name=app)
    report = Pipeline(config).run()
    evaluation = report.evaluate.row_for(design)
    export = report.export
    check = report.serve_check
    return ExportReport(
        app=app, bits=config.word_bits(), num_alphabets=num_alphabets,
        path=export.path, spec_label=export.spec_label,
        quantized_accuracy=evaluation.accuracy,
        compiled_accuracy=check.compiled_accuracy,
        bit_identical=check.bit_identical,
        num_params=check.num_params,
        artifact_bytes=export.artifact_bytes,
        energy_nj_per_inference=check.energy_nj_per_inference,
    )


def format_export_table(report: ExportReport) -> str:
    """Render one export cycle as a summary table."""
    energy = report.energy_nj_per_inference
    rows = [
        ["application", report.app],
        ["deployed spec", report.spec_label],
        ["artifact path", report.path],
        ["artifact size", f"{report.artifact_bytes / 1024:.1f} KiB"],
        ["deployed params", str(report.num_params)],
        ["quantized accuracy (%)",
         f"{report.quantized_accuracy * 100:.2f}"],
        ["reloaded accuracy (%)",
         f"{report.compiled_accuracy * 100:.2f}"],
        ["reload bit-identical", "yes" if report.bit_identical else "NO"],
        ["energy / inference",
         f"{energy:.1f} nJ" if energy is not None else "n/a"],
    ]
    return format_table(["Field", "Value"], rows,
                        title="Export - constrained network to serving "
                              "artifact")
