"""Experiment configuration: training budgets and per-benchmark settings.

Two budget tiers exist everywhere:

* ``quick``  — used by the pytest benchmarks so the whole suite runs in
  minutes (small sample counts, few epochs);
* ``full``   — the paper-scale budget behind the numbers in EXPERIMENTS.md
  (``python -m repro.experiments.runner --full``).

The learning rates differ per benchmark because the deep tanh MLPs (SVHN,
TICH) need a gentler rate than the 2-layer sigmoid nets; the retrain rate is
scaled down per Algorithm 2's "lower learning rate".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Budget", "QUICK", "FULL", "TrainSettings", "TRAIN_SETTINGS",
           "budget", "ACCURACY_APPS"]


@dataclass(frozen=True)
class Budget:
    """Sample counts and epoch limits for one tier."""

    name: str
    n_train: int
    n_test: int
    max_epochs: int
    retrain_epochs: int


QUICK = Budget("quick", n_train=700, n_test=300, max_epochs=8,
               retrain_epochs=5)
FULL = Budget("full", n_train=4000, n_test=1500, max_epochs=40,
              retrain_epochs=20)


def budget(full: bool) -> Budget:
    return FULL if full else QUICK


@dataclass(frozen=True)
class TrainSettings:
    """Per-benchmark optimiser settings."""

    learning_rate: float
    retrain_lr_scale: float = 0.25
    batch_size: int = 32
    patience: int = 3


TRAIN_SETTINGS: dict[str, TrainSettings] = {
    "mnist_mlp": TrainSettings(learning_rate=0.3),
    "mnist_cnn": TrainSettings(learning_rate=0.1, batch_size=16),
    "face": TrainSettings(learning_rate=0.3),
    "svhn": TrainSettings(learning_rate=0.05),
    "tich": TrainSettings(learning_rate=0.05),
}

#: Benchmarks appearing in Fig. 7 (all five applications).
ACCURACY_APPS = ("mnist_mlp", "mnist_cnn", "face", "svhn", "tich")
