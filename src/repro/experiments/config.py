"""Experiment configuration: training budgets and per-benchmark settings.

The budget tiers and optimiser settings now live in
:mod:`repro.pipeline.config` — the pipeline is the layer every driver is
built on, so it owns the canonical definitions.  This module re-exports
them unchanged for existing imports:

* ``quick``  — used by the pytest benchmarks so the whole suite runs in
  minutes (small sample counts, few epochs);
* ``full``   — the paper-scale budget behind the numbers in EXPERIMENTS.md
  (``repro experiment <name> --full``).

The learning rates differ per benchmark because the deep tanh MLPs (SVHN,
TICH) need a gentler rate than the 2-layer sigmoid nets; the retrain rate is
scaled down per Algorithm 2's "lower learning rate".
"""

from __future__ import annotations

from repro.pipeline.config import (  # noqa: F401 - re-exports
    FULL,
    QUICK,
    TRAIN_SETTINGS,
    Budget,
    TrainSettings,
    budget,
)

__all__ = ["Budget", "QUICK", "FULL", "TrainSettings", "TRAIN_SETTINGS",
           "budget", "ACCURACY_APPS"]

#: Benchmarks appearing in Fig. 7 (all five applications).
ACCURACY_APPS = ("mnist_mlp", "mnist_cnn", "face", "svhn", "tich")
