"""Fig. 11: mixed-alphabet networks — accuracy vs energy.

For MNIST (2-layer MLP), SVHN (6-layer) and TICH (5-layer) the paper
compares three deployments:

* conventional multiplier neurons,
* 1-alphabet {1} MAN everywhere,
* the §VI.E mixed plan — {1} in the early layers, {1,3} / {1,3,5,7} in the
  concluding layer(s).

The pipeline expresses the three deployments as the design tokens
``conventional`` / ``asm1`` / ``mixed`` and handles the retraining
(projected SGD) and both measurements; this module relabels the rows the
way Fig. 11 does and normalises energy to the conventional deployment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.alphabet import AlphabetSet
from repro.hardware.report import format_table
from repro.pipeline import Pipeline, PipelineConfig
from repro.training.mixed import paper_mixed_plan

__all__ = ["Figure11Row", "FIGURE11_APPS", "mixed_plan_for",
           "run_figure11_app", "run_figure11", "format_figure11_table"]

#: The applications Fig. 11 plots.
FIGURE11_APPS = ("mnist_mlp", "svhn", "tich")

#: Fig. 11 deployments as pipeline design tokens, with the paper's labels.
_FIGURE11_DESIGNS = (("conventional", "conventional"),
                     ("asm1", "all {1}"),
                     ("mixed", "mixed"))


def mixed_plan_for(app: str, network) -> list[AlphabetSet]:
    """The paper's §VI.E plan for each Fig. 11 application.

    Kept as an alias of :func:`repro.training.mixed.paper_mixed_plan`
    (the pipeline's canonical copy) for existing imports.
    """
    return paper_mixed_plan(app, network)


@dataclass(frozen=True)
class Figure11Row:
    """One (application, deployment) point of Fig. 11."""

    app: str
    deployment: str            # "conventional" / "all {1}" / "mixed"
    accuracy: float
    energy_nj: float
    normalized_energy: float


def run_figure11_app(app: str, full: bool = False,
                     seed: int = 0) -> list[Figure11Row]:
    """The three Fig. 11 deployments for one application."""
    config = PipelineConfig(
        app=app, designs=tuple(d for d, _ in _FIGURE11_DESIGNS),
        stages=("train", "quantize", "constrain", "evaluate", "energy"),
        budget="full" if full else "quick", seed=seed)
    report = Pipeline(config).run()
    rows = []
    for design, deployment in _FIGURE11_DESIGNS:
        accuracy = report.evaluate.row_for(design)
        energy = report.energy.row_for(design)
        rows.append(Figure11Row(
            app=app, deployment=deployment,
            accuracy=accuracy.accuracy,
            energy_nj=energy.energy_nj,
            normalized_energy=energy.normalized,
        ))
    return rows


def run_figure11(full: bool = False, seed: int = 0,
                 apps: tuple[str, ...] = FIGURE11_APPS,
                 ) -> dict[str, list[Figure11Row]]:
    return {app: run_figure11_app(app, full=full, seed=seed)
            for app in apps}


def format_figure11_table(rows: dict[str, list[Figure11Row]],
                          title: str) -> str:
    table_rows = []
    for app, entries in rows.items():
        for row in entries:
            table_rows.append([
                app, row.deployment,
                f"{row.accuracy * 100:.2f}",
                f"{row.normalized_energy:.3f}",
            ])
    return format_table(
        ["Application", "Deployment", "Accuracy (%)",
         "normalized energy"],
        table_rows, title=title)
