"""Fig. 11: mixed-alphabet networks — accuracy vs energy.

For MNIST (2-layer MLP), SVHN (6-layer) and TICH (5-layer) the paper
compares three deployments:

* conventional multiplier neurons,
* 1-alphabet {1} MAN everywhere,
* the §VI.E mixed plan — {1} in the early layers, {1,3} / {1,3,5,7} in the
  concluding layer(s).

The experiment retrains for each constrained plan (projected SGD), then
reports bit-accurate accuracy and CSHM-engine energy, normalised to the
conventional deployment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4, AlphabetSet
from repro.datasets.registry import BENCHMARKS, build_model, load_dataset
from repro.experiments.config import TRAIN_SETTINGS, budget
from repro.hardware.report import format_table
from repro.nn.optim import SGD
from repro.nn.trainer import Trainer
from repro.training.mixed import (
    MixedPlanResult,
    build_mixed_plan,
    evaluate_plan,
    retrain_with_plan,
)

__all__ = ["Figure11Row", "FIGURE11_APPS", "mixed_plan_for",
           "run_figure11_app", "run_figure11", "format_figure11_table"]

#: The applications Fig. 11 plots.
FIGURE11_APPS = ("mnist_mlp", "svhn", "tich")


def mixed_plan_for(app: str, network) -> list[AlphabetSet]:
    """The paper's §VI.E plan for each Fig. 11 application.

    MNIST (2-layer): {1} hidden, {1,3,5,7} output.
    SVHN (6-layer) and TICH (5-layer): {1} early, {1,3} penultimate,
    {1,3,5,7} ultimate.
    """
    if app == "mnist_mlp":
        return build_mixed_plan(network, [ALPHA_4], base_set=ALPHA_1)
    if app in ("svhn", "tich"):
        return build_mixed_plan(network, [ALPHA_2, ALPHA_4],
                                base_set=ALPHA_1)
    raise ValueError(f"no Fig. 11 plan for {app!r}")


@dataclass(frozen=True)
class Figure11Row:
    """One (application, deployment) point of Fig. 11."""

    app: str
    deployment: str            # "conventional" / "all {1}" / "mixed"
    accuracy: float
    energy_nj: float
    normalized_energy: float


def run_figure11_app(app: str, full: bool = False,
                     seed: int = 0) -> list[Figure11Row]:
    """The three Fig. 11 deployments for one application."""
    spec = BENCHMARKS[app]
    tier = budget(full)
    settings = TRAIN_SETTINGS[app]
    dataset = load_dataset(app, n_train=tier.n_train, n_test=tier.n_test,
                           seed=seed)
    model = build_model(app, seed=seed + 1)
    use_images = spec.needs_images
    x_train = dataset.x_train if use_images else dataset.flat_train
    x_test = dataset.x_test if use_images else dataset.flat_test

    trainer = Trainer(model, SGD(model, settings.learning_rate),
                      batch_size=settings.batch_size,
                      patience=settings.patience)
    trainer.fit(x_train, dataset.y_train_onehot, x_test, dataset.y_test,
                max_epochs=tier.max_epochs)
    restore_point = model.state()
    n_layers = len(model.trainable_layers)

    results: list[MixedPlanResult] = []
    # conventional deployment (no constraints, no retraining needed)
    results.append(evaluate_plan(
        model, dataset, spec.bits, [None] * n_layers,
        label="conventional", use_images=use_images))

    # all-{1} MAN deployment
    model.load_state(restore_point)
    man_plan: list[AlphabetSet | None] = [ALPHA_1] * n_layers
    retrain_with_plan(
        model, dataset, spec.bits, man_plan,
        learning_rate=settings.learning_rate * settings.retrain_lr_scale,
        batch_size=settings.batch_size, patience=settings.patience,
        max_epochs=tier.retrain_epochs, use_images=use_images)
    results.append(evaluate_plan(
        model, dataset, spec.bits, man_plan,
        label="all {1}", use_images=use_images))

    # mixed plan (§VI.E)
    model.load_state(restore_point)
    plan = list(mixed_plan_for(app, model))
    retrain_with_plan(
        model, dataset, spec.bits, plan,
        learning_rate=settings.learning_rate * settings.retrain_lr_scale,
        batch_size=settings.batch_size, patience=settings.patience,
        max_epochs=tier.retrain_epochs, use_images=use_images)
    results.append(evaluate_plan(
        model, dataset, spec.bits, plan,
        label="mixed", use_images=use_images))

    baseline_energy = results[0].energy_nj
    return [
        Figure11Row(app=app, deployment=result.label,
                    accuracy=result.accuracy,
                    energy_nj=result.energy_nj,
                    normalized_energy=result.energy_nj / baseline_energy)
        for result in results
    ]


def run_figure11(full: bool = False, seed: int = 0,
                 apps: tuple[str, ...] = FIGURE11_APPS,
                 ) -> dict[str, list[Figure11Row]]:
    return {app: run_figure11_app(app, full=full, seed=seed)
            for app in apps}


def format_figure11_table(rows: dict[str, list[Figure11Row]],
                          title: str) -> str:
    table_rows = []
    for app, entries in rows.items():
        for row in entries:
            table_rows.append([
                app, row.deployment,
                f"{row.accuracy * 100:.2f}",
                f"{row.normalized_energy:.3f}",
            ])
    return format_table(
        ["Application", "Deployment", "Accuracy (%)",
         "normalized energy"],
        table_rows, title=title)
