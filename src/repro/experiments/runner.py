"""Unified experiment runner.

Usage::

    python -m repro.experiments.runner --experiment all          # quick tier
    python -m repro.experiments.runner --experiment fig7 --full  # paper tier
    python -m repro.experiments.runner --experiment export       # serving
    python -m repro.experiments.runner --list

Experiments ``table1``–``table5`` and ``fig7``–``fig11`` reproduce the
paper; ``export`` runs the deployment path (train → constrain → export a
:mod:`repro.serving` artifact under ``results/artifacts/`` → reload → verify
bit-identical scores), producing a bundle that ``python -m repro.serving``
can serve.

Each experiment prints its table(s) and, when ``--json`` is given, appends a
machine-readable record to ``results/<experiment>.json``.
"""

from __future__ import annotations

import argparse
import json
import os
from dataclasses import asdict, is_dataclass

from repro.experiments.accuracy import (
    format_accuracy_table,
    run_accuracy_grid,
    run_figure7,
)
from repro.experiments.config import ACCURACY_APPS
from repro.experiments.energy import format_energy_table, run_figure9
from repro.experiments.export import format_export_table, run_export
from repro.experiments.mixed import format_figure11_table, run_figure11
from repro.experiments.power_area import (
    format_hardware_table,
    run_figure8,
    run_figure10,
)
from repro.experiments.tables import format_table1, format_table4, format_table5

__all__ = ["EXPERIMENTS", "run_experiment", "main"]


def _jsonable(value):
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def run_experiment(name: str, full: bool = False,
                   seed: int = 0) -> tuple[str, object]:
    """Run one experiment; returns (printable text, json-able payload)."""
    if name == "table1":
        return format_table1(), {}
    if name == "table2":
        grid = run_accuracy_grid("face", full=full, seed=seed)
        return format_accuracy_table(
            grid, "Table II - NN accuracy, face detection"), grid
    if name == "table3":
        grids = [run_accuracy_grid("mnist_mlp", bits=8, full=full, seed=seed),
                 run_accuracy_grid("mnist_cnn", bits=12, full=full,
                                   seed=seed)]
        text = "\n\n".join(
            format_accuracy_table(g, f"Table III - digit recognition "
                                     f"({g.bits} bit, {g.app})")
            for g in grids)
        return text, grids
    if name == "table4":
        return format_table4(), {}
    if name == "table5":
        return format_table5(), {}
    if name == "fig7":
        grids = run_figure7(full=full, seed=seed)
        text = "\n\n".join(
            format_accuracy_table(
                grid, f"Fig 7 - accuracy, {app} ({grid.bits} bit)")
            for app, grid in grids.items())
        return text, grids
    if name == "fig8":
        rows = run_figure8()
        return format_hardware_table(
            rows, "Fig 8 - normalized neuron power @ iso-speed"), rows
    if name == "fig9":
        rows = run_figure9()
        return format_energy_table(
            rows, "Fig 9 - per-inference energy by application"), rows
    if name == "fig10":
        rows = run_figure10()
        return format_hardware_table(
            rows, "Fig 10 - normalized neuron area @ iso-speed"), rows
    if name == "fig11":
        rows = run_figure11(full=full, seed=seed)
        return format_figure11_table(
            rows, "Fig 11 - mixed-alphabet accuracy and energy"), rows
    if name == "export":
        report = run_export(full=full, seed=seed)
        return format_export_table(report), report
    raise ValueError(f"unknown experiment {name!r}; see --list")


EXPERIMENTS = ("table1", "table2", "table3", "table4", "table5",
               "fig7", "fig8", "fig9", "fig10", "fig11", "export")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce tables/figures of the MAN paper")
    parser.add_argument("--experiment", "-e", default="all",
                        help="experiment id or 'all'")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale training budgets")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true",
                        help="write results/<experiment>.json")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        text, payload = run_experiment(name, full=args.full, seed=args.seed)
        print(text)
        print()
        if args.json:
            os.makedirs("results", exist_ok=True)
            path = os.path.join("results", f"{name}.json")
            with open(path, "w") as handle:
                json.dump(_jsonable(payload), handle, indent=2, default=str)
            print(f"[wrote {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
