"""Legacy experiment runner (deprecated entry point).

``python -m repro.experiments.runner`` still works but is superseded by
the unified ``repro`` CLI::

    repro experiment all            # quick tier
    repro experiment fig7 --full    # paper tier
    repro experiment export         # serving path
    repro list

Experiments ``table1``–``table5`` and ``fig7``–``fig11`` reproduce the
paper; ``export`` runs the deployment path (train → constrain → export a
:mod:`repro.serving` artifact under ``results/artifacts/`` → reload → verify
bit-identical scores), producing a bundle that ``repro serve`` can serve.
Every training experiment is a thin formatter over
:mod:`repro.pipeline` reports.

Each experiment prints its table(s) and, when ``--json`` is given, appends a
machine-readable record to ``results/<experiment>.json``.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments.accuracy import (
    format_accuracy_table,
    run_accuracy_grid,
    run_figure7,
)
from repro.experiments.energy import format_energy_table, run_figure9
from repro.experiments.export import format_export_table, run_export
from repro.experiments.mixed import format_figure11_table, run_figure11
from repro.experiments.power_area import (
    format_hardware_table,
    run_figure8,
    run_figure10,
)
from repro.experiments.tables import format_table1, format_table4, format_table5
from repro.utils.serialization import write_json

__all__ = ["EXPERIMENTS", "run_experiment", "execute", "main"]


def run_experiment(name: str, full: bool = False,
                   seed: int = 0) -> tuple[str, object]:
    """Run one experiment; returns (printable text, json-able payload)."""
    if name == "table1":
        return format_table1(), {}
    if name == "table2":
        grid = run_accuracy_grid("face", full=full, seed=seed)
        return format_accuracy_table(
            grid, "Table II - NN accuracy, face detection"), grid
    if name == "table3":
        grids = [run_accuracy_grid("mnist_mlp", bits=8, full=full, seed=seed),
                 run_accuracy_grid("mnist_cnn", bits=12, full=full,
                                   seed=seed)]
        text = "\n\n".join(
            format_accuracy_table(g, f"Table III - digit recognition "
                                     f"({g.bits} bit, {g.app})")
            for g in grids)
        return text, grids
    if name == "table4":
        return format_table4(), {}
    if name == "table5":
        return format_table5(), {}
    if name == "fig7":
        grids = run_figure7(full=full, seed=seed)
        text = "\n\n".join(
            format_accuracy_table(
                grid, f"Fig 7 - accuracy, {app} ({grid.bits} bit)")
            for app, grid in grids.items())
        return text, grids
    if name == "fig8":
        rows = run_figure8()
        return format_hardware_table(
            rows, "Fig 8 - normalized neuron power @ iso-speed"), rows
    if name == "fig9":
        rows = run_figure9()
        return format_energy_table(
            rows, "Fig 9 - per-inference energy by application"), rows
    if name == "fig10":
        rows = run_figure10()
        return format_hardware_table(
            rows, "Fig 10 - normalized neuron area @ iso-speed"), rows
    if name == "fig11":
        rows = run_figure11(full=full, seed=seed)
        return format_figure11_table(
            rows, "Fig 11 - mixed-alphabet accuracy and energy"), rows
    if name == "export":
        report = run_export(full=full, seed=seed)
        return format_export_table(report), report
    raise ValueError(f"unknown experiment {name!r}; see --list")


EXPERIMENTS = ("table1", "table2", "table3", "table4", "table5",
               "fig7", "fig8", "fig9", "fig10", "fig11", "export")


def execute(names: tuple[str, ...], full: bool = False, seed: int = 0,
            write_results: bool = False, jobs: int = 1) -> int:
    """Run *names* in order, printing tables (the shared CLI body).

    ``jobs > 1`` evaluates the experiments on a worker pool (each is
    independent); output is still printed in the requested order.
    """
    if jobs > 1 and len(names) > 1:
        from repro.explore.executor import run_experiment_jobs

        for result in run_experiment_jobs(names, full=full, seed=seed,
                                          write_results=write_results,
                                          jobs=jobs):
            print(result["text"])
            print()
            if result["path"]:
                print(f"[wrote {result['path']}]")
        return 0
    for name in names:
        text, payload = run_experiment(name, full=full, seed=seed)
        print(text)
        print()
        if write_results:
            path = write_json(os.path.join("results", f"{name}.json"),
                              payload)
            print(f"[wrote {path}]")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce tables/figures of the MAN paper "
                    "(deprecated; use `repro experiment`)")
    parser.add_argument("--experiment", "-e", default="all",
                        help="experiment id or 'all'")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale training budgets")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true",
                        help="write results/<experiment>.json")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    args = parser.parse_args(argv)

    print("note: `python -m repro.experiments.runner` is deprecated; "
          "use `repro experiment <name>` (see `repro --help`)",
          file=sys.stderr)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    return execute(names, full=args.full, seed=args.seed,
                   write_results=args.json)


if __name__ == "__main__":
    raise SystemExit(main())
