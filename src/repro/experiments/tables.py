"""Tables I, IV and V of the paper.

Table I is a live decomposition demo; Table IV regenerates the benchmark
inventory from our model constructors (and asserts the counts match the
published totals); Table V lists the experimental parameters the hardware
model uses.
"""

from __future__ import annotations

from repro.asm.alphabet import FULL_ALPHABETS
from repro.asm.decompose import format_decomposition
from repro.datasets.registry import BENCHMARKS, build_model
from repro.fixedpoint.binary import bit_string
from repro.fixedpoint.quartet import LAYOUT_8BIT
from repro.hardware.neuron import CLOCK_GHZ
from repro.hardware.report import format_table
from repro.hardware.technology import IBM45

__all__ = ["table1_rows", "table4_rows", "table5_rows",
           "format_table1", "format_table4", "format_table5"]


def table1_rows(weights: tuple[int, ...] = (105, 66)) -> list[list[str]]:
    """Table I: sample decompositions of W x I (full alphabet set)."""
    rows = []
    for weight in weights:
        rows.append([
            f"W = {bit_string(weight, 8)} ({weight})",
            format_decomposition(weight, LAYOUT_8BIT, FULL_ALPHABETS),
        ])
    return rows


def format_table1() -> str:
    return format_table(
        ["Weights", "Decomposition of Product"],
        table1_rows(),
        title="Table I - decomposition of multiplication operation")


def table4_rows(verify: bool = True) -> list[list[object]]:
    """Table IV: benchmark inventory, regenerated from the constructors.

    With ``verify=True`` (default) a mismatch between a constructed model
    and the published totals raises — the reproduction's counts are exact.
    """
    rows = []
    for spec in BENCHMARKS.values():
        model = build_model(spec.key)
        layers = len(model.topology().layers)
        neurons = model.num_neurons
        synapses = model.num_params
        if verify:
            if (neurons, synapses) != (spec.table4_neurons,
                                       spec.table4_synapses):
                raise AssertionError(
                    f"{spec.key}: built ({neurons}, {synapses}), Table IV "
                    f"says ({spec.table4_neurons}, {spec.table4_synapses})"
                )
        rows.append([spec.description, spec.model_kind, layers,
                     neurons, synapses])
    return rows


def format_table4() -> str:
    return format_table(
        ["Application", "NN Model", "No. of Layers", "No. of Neurons",
         "No. of Trainable Synapses"],
        table4_rows(),
        title="Table IV - benchmarks")


def table5_rows() -> list[list[str]]:
    """Table V: experimental parameters of the hardware model."""
    return [
        ["Feature Size", f"{IBM45.feature_nm}nm"],
        ["Clock Frequency for 8 bits Neuron", f"{CLOCK_GHZ[8]:g} GHz"],
        ["Clock Frequency for 12 bits Neuron", f"{CLOCK_GHZ[12]:g} GHz"],
    ]


def format_table5() -> str:
    return format_table(["Metric", "Value"], table5_rows(),
                        title="Table V - experimental parameters")
