"""Hardware comparisons: Fig. 8 (power) and Fig. 10 (area).

Pure model evaluations — no training involved.  Values are normalised to
the conventional neuron of the same word width, exactly like the paper's
bar charts, and the paper's reported values ride along for side-by-side
reporting in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4, AlphabetSet
from repro.hardware.neuron import NeuronConfig, make_neuron
from repro.hardware.report import format_table
from repro.hardware.technology import IBM45, TechnologyModel

__all__ = ["HardwareRow", "run_figure8", "run_figure10",
           "run_hardware_grid", "format_hardware_table", "PAPER_VALUES"]

#: Paper-reported normalised values (approximate, read off Figs. 8/10 and
#: the text of §VI.B/§VI.C/§VI.D).  ``None`` where the paper gives no number.
PAPER_VALUES: dict[tuple[int, int, str], float | None] = {
    (8, 4, "power"): 0.92, (8, 2, "power"): 0.74, (8, 1, "power"): 0.65,
    (12, 4, "power"): None, (12, 2, "power"): 0.79, (12, 1, "power"): 0.40,
    (8, 4, "area"): 0.95, (8, 2, "area"): 0.75, (8, 1, "area"): 0.63,
    (12, 4, "area"): None, (12, 2, "area"): 0.81, (12, 1, "area"): 0.38,
}


@dataclass(frozen=True)
class HardwareRow:
    """One bar of Fig. 8 or Fig. 10."""

    bits: int
    num_alphabets: int | None
    metric: str                   # "power" or "area"
    normalized: float
    paper: float | None

    @property
    def label(self) -> str:
        if self.num_alphabets is None:
            return "conventional"
        sets = {1: ALPHA_1, 2: ALPHA_2, 4: ALPHA_4}
        return f"{self.num_alphabets} {sets[self.num_alphabets]}"


def run_hardware_grid(metric: str, bits_list: tuple[int, ...] = (8, 12),
                      tech: TechnologyModel = IBM45,
                      config: NeuronConfig | None = None,
                      ) -> list[HardwareRow]:
    """Normalised *metric* ("power" or "area") for every design."""
    if metric not in ("power", "area"):
        raise ValueError(f"metric must be 'power' or 'area', got {metric!r}")
    sets: list[tuple[int, AlphabetSet]] = [
        (4, ALPHA_4), (2, ALPHA_2), (1, ALPHA_1)]
    rows = []
    for bits in bits_list:
        conv = make_neuron(bits, tech=tech, config=config).cost()
        rows.append(HardwareRow(bits=bits, num_alphabets=None,
                                metric=metric, normalized=1.0, paper=1.0))
        for count, aset in sets:
            cost = make_neuron(bits, aset, tech=tech, config=config).cost()
            rows.append(HardwareRow(
                bits=bits, num_alphabets=count, metric=metric,
                normalized=cost.normalized_to(conv)[metric],
                paper=PAPER_VALUES.get((bits, count, metric)),
            ))
    return rows


def run_figure8(tech: TechnologyModel = IBM45,
                config: NeuronConfig | None = None) -> list[HardwareRow]:
    """Fig. 8: normalised neuron power at iso-speed."""
    return run_hardware_grid("power", tech=tech, config=config)


def run_figure10(tech: TechnologyModel = IBM45,
                 config: NeuronConfig | None = None) -> list[HardwareRow]:
    """Fig. 10: normalised neuron area at iso-speed."""
    return run_hardware_grid("area", tech=tech, config=config)


def format_hardware_table(rows: list[HardwareRow], title: str) -> str:
    table_rows = []
    for row in rows:
        table_rows.append([
            f"{row.bits} bits",
            row.label,
            f"{row.normalized:.3f}",
            "--" if row.paper is None else f"{row.paper:.2f}",
        ])
    metric = rows[0].metric if rows else "?"
    return format_table(
        ["Neuron size", "Design", f"normalized {metric} (model)",
         "paper"],
        table_rows, title=title)
