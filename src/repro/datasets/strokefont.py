"""Vector stroke font and rasteriser for the synthetic datasets.

Glyphs are polylines in the unit square (x right, y down).  The rasteriser
draws them onto a pixel grid with anti-aliasing, after a random affine
jitter (rotation, scale, shear, translation) that mimics handwriting
variation.  All randomness flows through an explicit generator, so every
dataset in :mod:`repro.datasets` is reproducible from its seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GLYPHS", "glyph_strokes", "render_glyph", "render_strokes",
           "jitter_transform"]

# --------------------------------------------------------------------------
# glyph definitions: dict of char -> list of polylines [(x, y), ...]
# --------------------------------------------------------------------------
GLYPHS: dict[str, list[list[tuple[float, float]]]] = {
    "0": [[(0.5, 0.08), (0.82, 0.25), (0.82, 0.75), (0.5, 0.92),
           (0.18, 0.75), (0.18, 0.25), (0.5, 0.08)]],
    "1": [[(0.35, 0.25), (0.55, 0.08), (0.55, 0.92)],
          [(0.3, 0.92), (0.8, 0.92)]],
    "2": [[(0.2, 0.25), (0.5, 0.08), (0.8, 0.25), (0.78, 0.45),
           (0.2, 0.92), (0.82, 0.92)]],
    "3": [[(0.2, 0.15), (0.6, 0.08), (0.8, 0.25), (0.55, 0.48),
           (0.8, 0.7), (0.6, 0.92), (0.2, 0.85)]],
    "4": [[(0.65, 0.92), (0.65, 0.08), (0.18, 0.65), (0.85, 0.65)]],
    "5": [[(0.8, 0.08), (0.25, 0.08), (0.22, 0.45), (0.6, 0.42),
           (0.82, 0.65), (0.6, 0.92), (0.2, 0.85)]],
    "6": [[(0.7, 0.08), (0.3, 0.35), (0.2, 0.65), (0.4, 0.92),
           (0.75, 0.85), (0.8, 0.6), (0.5, 0.5), (0.25, 0.6)]],
    "7": [[(0.18, 0.08), (0.82, 0.08), (0.45, 0.92)]],
    "8": [[(0.5, 0.08), (0.75, 0.2), (0.68, 0.42), (0.5, 0.5),
           (0.32, 0.42), (0.25, 0.2), (0.5, 0.08)],
          [(0.5, 0.5), (0.78, 0.65), (0.7, 0.88), (0.5, 0.92),
           (0.3, 0.88), (0.22, 0.65), (0.5, 0.5)]],
    "9": [[(0.75, 0.45), (0.45, 0.52), (0.22, 0.35), (0.35, 0.1),
           (0.68, 0.08), (0.78, 0.3), (0.72, 0.65), (0.4, 0.92)]],
    "A": [[(0.15, 0.92), (0.5, 0.08), (0.85, 0.92)],
          [(0.3, 0.62), (0.7, 0.62)]],
    "B": [[(0.2, 0.92), (0.2, 0.08), (0.65, 0.1), (0.75, 0.28),
           (0.6, 0.48), (0.2, 0.5)],
          [(0.6, 0.48), (0.8, 0.68), (0.68, 0.9), (0.2, 0.92)]],
    "C": [[(0.8, 0.2), (0.55, 0.06), (0.25, 0.2), (0.16, 0.5),
           (0.25, 0.8), (0.55, 0.94), (0.8, 0.8)]],
    "D": [[(0.2, 0.08), (0.2, 0.92), (0.6, 0.9), (0.8, 0.68),
           (0.82, 0.35), (0.62, 0.1), (0.2, 0.08)]],
    "E": [[(0.78, 0.08), (0.2, 0.08), (0.2, 0.92), (0.78, 0.92)],
          [(0.2, 0.5), (0.65, 0.5)]],
    "F": [[(0.78, 0.08), (0.2, 0.08), (0.2, 0.92)],
          [(0.2, 0.5), (0.65, 0.5)]],
    "G": [[(0.8, 0.2), (0.55, 0.06), (0.25, 0.2), (0.16, 0.5),
           (0.25, 0.8), (0.55, 0.94), (0.8, 0.85), (0.82, 0.58),
           (0.55, 0.58)]],
    "H": [[(0.2, 0.08), (0.2, 0.92)], [(0.8, 0.08), (0.8, 0.92)],
          [(0.2, 0.5), (0.8, 0.5)]],
    "I": [[(0.3, 0.08), (0.7, 0.08)], [(0.5, 0.08), (0.5, 0.92)],
          [(0.3, 0.92), (0.7, 0.92)]],
    "J": [[(0.4, 0.08), (0.8, 0.08)], [(0.65, 0.08), (0.65, 0.75),
           (0.5, 0.92), (0.25, 0.85)]],
    "K": [[(0.2, 0.08), (0.2, 0.92)], [(0.78, 0.08), (0.22, 0.55)],
          [(0.45, 0.45), (0.8, 0.92)]],
    "L": [[(0.25, 0.08), (0.25, 0.92), (0.8, 0.92)]],
    "M": [[(0.15, 0.92), (0.18, 0.08), (0.5, 0.6), (0.82, 0.08),
           (0.85, 0.92)]],
    "N": [[(0.2, 0.92), (0.2, 0.08), (0.8, 0.92), (0.8, 0.08)]],
    "O": [[(0.5, 0.06), (0.8, 0.25), (0.85, 0.5), (0.8, 0.75),
           (0.5, 0.94), (0.2, 0.75), (0.15, 0.5), (0.2, 0.25),
           (0.5, 0.06)]],
    "P": [[(0.2, 0.92), (0.2, 0.08), (0.65, 0.1), (0.8, 0.3),
           (0.65, 0.52), (0.2, 0.54)]],
    "Q": [[(0.5, 0.06), (0.8, 0.25), (0.85, 0.5), (0.8, 0.75),
           (0.5, 0.94), (0.2, 0.75), (0.15, 0.5), (0.2, 0.25),
           (0.5, 0.06)],
          [(0.6, 0.7), (0.88, 0.95)]],
    "R": [[(0.2, 0.92), (0.2, 0.08), (0.65, 0.1), (0.8, 0.3),
           (0.65, 0.52), (0.2, 0.54)],
          [(0.5, 0.54), (0.82, 0.92)]],
    "S": [[(0.78, 0.18), (0.5, 0.06), (0.25, 0.2), (0.3, 0.42),
           (0.7, 0.55), (0.78, 0.78), (0.5, 0.94), (0.22, 0.82)]],
    "T": [[(0.15, 0.08), (0.85, 0.08)], [(0.5, 0.08), (0.5, 0.92)]],
    "U": [[(0.2, 0.08), (0.2, 0.7), (0.4, 0.92), (0.6, 0.92),
           (0.8, 0.7), (0.8, 0.08)]],
    "V": [[(0.15, 0.08), (0.5, 0.92), (0.85, 0.08)]],
    "W": [[(0.12, 0.08), (0.3, 0.92), (0.5, 0.4), (0.7, 0.92),
           (0.88, 0.08)]],
    "X": [[(0.18, 0.08), (0.82, 0.92)], [(0.82, 0.08), (0.18, 0.92)]],
    "Y": [[(0.15, 0.08), (0.5, 0.5), (0.85, 0.08)],
          [(0.5, 0.5), (0.5, 0.92)]],
    "Z": [[(0.18, 0.08), (0.82, 0.08), (0.18, 0.92), (0.82, 0.92)]],
}


def glyph_strokes(char: str) -> list[list[tuple[float, float]]]:
    """Strokes of *char*; raises KeyError with the available set listed."""
    try:
        return GLYPHS[char]
    except KeyError:
        raise KeyError(
            f"no glyph for {char!r}; available: {''.join(sorted(GLYPHS))}"
        ) from None


def jitter_transform(rng: np.random.Generator,
                     rotation_deg: float = 10.0,
                     scale_range: tuple[float, float] = (0.8, 1.1),
                     shear: float = 0.15,
                     translate: float = 0.06) -> tuple[np.ndarray, np.ndarray]:
    """Random affine ``(matrix, offset)`` applied to glyph coordinates."""
    angle = np.deg2rad(rng.uniform(-rotation_deg, rotation_deg))
    scale = rng.uniform(*scale_range)
    shear_x = rng.uniform(-shear, shear)
    cos, sin = np.cos(angle), np.sin(angle)
    matrix = scale * np.array([[cos, -sin], [sin, cos]]) \
        @ np.array([[1.0, shear_x], [0.0, 1.0]])
    offset = rng.uniform(-translate, translate, size=2)
    return matrix, offset


def render_strokes(strokes: list[list[tuple[float, float]]],
                   image_size: int = 32,
                   thickness: float = 0.05,
                   transform: tuple[np.ndarray, np.ndarray] | None = None,
                   ) -> np.ndarray:
    """Rasterise polylines into an ``(image_size, image_size)`` float image.

    Pixel intensity is an anti-aliased distance field: 1 on the stroke
    centre line, fading to 0 one softening width away.
    """
    if image_size < 4:
        raise ValueError("image too small to draw on")
    if thickness <= 0:
        raise ValueError("thickness must be positive")
    grid = (np.arange(image_size) + 0.5) / image_size
    px, py = np.meshgrid(grid, grid, indexing="xy")
    image = np.zeros((image_size, image_size))
    soft = 1.5 / image_size
    for stroke in strokes:
        points = np.asarray(stroke, dtype=np.float64)
        if transform is not None:
            matrix, offset = transform
            points = (points - 0.5) @ matrix.T + 0.5 + offset
        for (x0, y0), (x1, y1) in zip(points[:-1], points[1:]):
            dx, dy = x1 - x0, y1 - y0
            length_sq = dx * dx + dy * dy
            if length_sq < 1e-12:
                dist = np.hypot(px - x0, py - y0)
            else:
                t = ((px - x0) * dx + (py - y0) * dy) / length_sq
                t = np.clip(t, 0.0, 1.0)
                dist = np.hypot(px - (x0 + t * dx), py - (y0 + t * dy))
            intensity = np.clip(1.0 - (dist - thickness / 2) / soft, 0.0, 1.0)
            np.maximum(image, intensity, out=image)
    return image


def render_glyph(char: str, rng: np.random.Generator,
                 image_size: int = 32,
                 thickness_range: tuple[float, float] = (0.035, 0.07),
                 **jitter_kwargs) -> np.ndarray:
    """Draw one jittered glyph; the main entry point for the datasets."""
    strokes = glyph_strokes(char)
    transform = jitter_transform(rng, **jitter_kwargs)
    thickness = rng.uniform(*thickness_range)
    return render_strokes(strokes, image_size=image_size,
                          thickness=thickness, transform=transform)
