"""Seeded synthetic stand-ins for the paper's four datasets.

See DESIGN.md §4 for the substitution rationale: the paper's claims are
relative (constrained vs unconstrained training on the same data), and the
generators preserve the difficulty ordering faces < MNIST < TICH < SVHN.
"""

from repro.datasets.base import Dataset, one_hot
from repro.datasets.digits import synthetic_mnist
from repro.datasets.faces import synthetic_faces
from repro.datasets.registry import (
    BENCHMARKS,
    BenchmarkSpec,
    build_model,
    lenet,
    load_dataset,
    mlp,
)
from repro.datasets.strokefont import (
    GLYPHS,
    glyph_strokes,
    jitter_transform,
    render_glyph,
    render_strokes,
)
from repro.datasets.svhn import synthetic_svhn
from repro.datasets.tich import TICH_CLASSES, synthetic_tich

__all__ = [
    "Dataset", "one_hot",
    "synthetic_mnist", "synthetic_faces", "synthetic_svhn",
    "synthetic_tich", "TICH_CLASSES",
    "BENCHMARKS", "BenchmarkSpec", "build_model", "load_dataset",
    "mlp", "lenet",
    "GLYPHS", "glyph_strokes", "jitter_transform", "render_glyph",
    "render_strokes",
]
