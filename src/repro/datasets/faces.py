"""Synthetic face-detection stand-in for the paper's YUV Faces benchmark.

Two classes: *face* patches (elliptical head outline, two eyes, nose hint,
mouth bar — all jittered) and *non-face* patches (random strokes and blobs
with similar overall ink statistics, so the classifier must use structure,
not brightness).  The paper's network is a 1024-100-2 MLP (§IV.C) reaching
~90% accuracy — an intentionally imperfect task, which the generator mirrors
by making some non-faces face-like.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.strokefont import render_strokes

__all__ = ["synthetic_faces"]


def _ellipse(cx: float, cy: float, rx: float, ry: float,
             points: int = 14) -> list[tuple[float, float]]:
    angles = np.linspace(0.0, 2 * np.pi, points)
    return [(cx + rx * np.cos(a), cy + ry * np.sin(a)) for a in angles]


def _face_strokes(rng: np.random.Generator) -> list[list[tuple[float, float]]]:
    cx = 0.5 + rng.uniform(-0.05, 0.05)
    cy = 0.5 + rng.uniform(-0.05, 0.05)
    rx = rng.uniform(0.26, 0.34)
    ry = rng.uniform(0.32, 0.4)
    eye_dx = rng.uniform(0.1, 0.15)
    eye_y = cy - ry * rng.uniform(0.25, 0.4)
    eye_r = rng.uniform(0.02, 0.04)
    mouth_y = cy + ry * rng.uniform(0.35, 0.55)
    mouth_w = rng.uniform(0.1, 0.18)
    strokes = [
        _ellipse(cx, cy, rx, ry),
        _ellipse(cx - eye_dx, eye_y, eye_r, eye_r, points=7),
        _ellipse(cx + eye_dx, eye_y, eye_r, eye_r, points=7),
        [(cx - mouth_w, mouth_y), (cx + mouth_w, mouth_y * 1.01)],
    ]
    if rng.uniform() < 0.7:  # nose hint
        strokes.append([(cx, eye_y + 0.08), (cx - 0.03, mouth_y - 0.1)])
    return strokes


def _nonface_strokes(rng: np.random.Generator,
                     ) -> list[list[tuple[float, float]]]:
    strokes = []
    # random blobs and arcs with roughly face-like ink budget
    for _ in range(rng.integers(2, 5)):
        if rng.uniform() < 0.5:
            cx, cy = rng.uniform(0.2, 0.8, size=2)
            strokes.append(_ellipse(cx, cy, rng.uniform(0.05, 0.3),
                                    rng.uniform(0.05, 0.3),
                                    points=rng.integers(5, 12)))
        else:
            points = rng.uniform(0.1, 0.9, size=(rng.integers(2, 5), 2))
            strokes.append([tuple(p) for p in points])
    return strokes


def synthetic_faces(n_train: int = 2000, n_test: int = 500,
                    image_size: int = 32, noise: float = 0.08,
                    seed: int = 0) -> Dataset:
    """Build the face/non-face dataset (classes: 0 = non-face, 1 = face)."""
    if n_train < 1 or n_test < 1:
        raise ValueError("need at least one sample per split")
    rng = np.random.default_rng(seed)

    def split(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = (np.arange(n) % 2)
        rng.shuffle(labels)
        images = np.empty((n, 1, image_size, image_size))
        for index, label in enumerate(labels):
            strokes = _face_strokes(rng) if label else _nonface_strokes(rng)
            image = render_strokes(strokes, image_size=image_size,
                                   thickness=rng.uniform(0.03, 0.06))
            image += rng.normal(0.0, noise, size=image.shape)
            images[index, 0] = np.clip(image, 0.0, 1.0)
        return images, labels

    x_train, y_train = split(n_train)
    x_test, y_test = split(n_test)
    return Dataset("synthetic-faces", x_train, y_train, x_test, y_test,
                   n_classes=2)
