"""Synthetic TICH stand-in: handwritten characters, 36 classes.

TICH (the Tilburg character set) contains handwritten digits and letters.
The generator renders all 36 glyphs (0-9, A-Z) with *stronger* handwriting
jitter than the MNIST stand-in — more rotation, shear and thickness
variation plus moderate noise — landing its difficulty between clean digits
and cluttered SVHN, as in the paper's Fig. 7 ordering.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, balanced_labels
from repro.datasets.strokefont import render_glyph

__all__ = ["synthetic_tich", "TICH_CLASSES"]

TICH_CLASSES = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def synthetic_tich(n_train: int = 3600, n_test: int = 720,
                   image_size: int = 32, noise: float = 0.08,
                   seed: int = 0) -> Dataset:
    """Build the 36-class character dataset."""
    if n_train < 1 or n_test < 1:
        raise ValueError("need at least one sample per split")
    rng = np.random.default_rng(seed)

    def split(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = balanced_labels(n, len(TICH_CLASSES), rng)
        images = np.empty((n, 1, image_size, image_size))
        for index, label in enumerate(labels):
            image = render_glyph(
                TICH_CLASSES[label], rng, image_size=image_size,
                thickness_range=(0.03, 0.08),
                rotation_deg=16.0, scale_range=(0.7, 1.15),
                shear=0.25, translate=0.08)
            image += rng.normal(0.0, noise, size=image.shape)
            images[index, 0] = np.clip(image, 0.0, 1.0)
        return images, labels

    x_train, y_train = split(n_train)
    x_test, y_test = split(n_test)
    return Dataset("synthetic-tich", x_train, y_train, x_test, y_test,
                   n_classes=len(TICH_CLASSES))
