"""Synthetic MNIST stand-in: clean handwritten-style digits.

The paper's 'Digit Recognition' benchmarks use MNIST padded to 32x32 (the
1024-input MLP of Table IV).  This generator renders the ten digit glyphs
with handwriting jitter and mild pixel noise — an *easy* task, matching
MNIST's role in the paper as the dataset on which ASM-constrained networks
lose almost nothing.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, balanced_labels
from repro.datasets.strokefont import render_glyph

__all__ = ["synthetic_mnist"]

_DIGITS = "0123456789"


def _occlude(image: np.ndarray, rng: np.random.Generator) -> None:
    """Blank a random horizontal or vertical bar, in place."""
    size = image.shape[0]
    width = int(rng.integers(2, max(3, size // 5)))
    start = int(rng.integers(0, size - width))
    if rng.uniform() < 0.5:
        image[:, start:start + width] = 0.0
    else:
        image[start:start + width, :] = 0.0


def _render_split(n: int, image_size: int, noise: float, jitter: float,
                  occlusion: float, rng: np.random.Generator,
                  ) -> tuple[np.ndarray, np.ndarray]:
    labels = balanced_labels(n, len(_DIGITS), rng)
    images = np.empty((n, 1, image_size, image_size))
    for index, label in enumerate(labels):
        image = render_glyph(
            _DIGITS[label], rng, image_size=image_size,
            thickness_range=(0.03, 0.075),
            rotation_deg=10.0 + 12.0 * jitter,
            scale_range=(0.8 - 0.25 * jitter, 1.1 + 0.1 * jitter),
            shear=0.15 + 0.2 * jitter,
            translate=0.06 + 0.08 * jitter)
        if rng.uniform() < occlusion:
            _occlude(image, rng)
        image += rng.normal(0.0, noise, size=image.shape)
        images[index, 0] = np.clip(image, 0.0, 1.0)
    return images, labels


def synthetic_mnist(n_train: int = 2000, n_test: int = 500,
                    image_size: int = 32, noise: float = 0.10,
                    jitter: float = 0.55, occlusion: float = 0.25,
                    seed: int = 0) -> Dataset:
    """Build the digit-recognition dataset.

    ``jitter`` (0 = clean print, 1 = wild handwriting) scales the affine
    distortion; ``occlusion`` is the probability of a blanked bar crossing
    the glyph.  The defaults are tuned so the Table IV MLP lands near the
    paper's MNIST accuracy (~97%) instead of saturating.

    >>> data = synthetic_mnist(n_train=20, n_test=10, seed=1)
    >>> data.x_train.shape
    (20, 1, 32, 32)
    >>> data.n_classes
    10
    """
    if n_train < 1 or n_test < 1:
        raise ValueError("need at least one sample per split")
    if not 0 <= jitter <= 1:
        raise ValueError(f"jitter must be in [0, 1], got {jitter}")
    rng = np.random.default_rng(seed)
    x_train, y_train = _render_split(n_train, image_size, noise, jitter,
                                     occlusion, rng)
    x_test, y_test = _render_split(n_test, image_size, noise, jitter,
                                   occlusion, rng)
    return Dataset("synthetic-mnist", x_train, y_train, x_test, y_test,
                   n_classes=len(_DIGITS))
