"""Benchmark registry: the five applications of the paper's Table IV.

Each :class:`BenchmarkSpec` couples a dataset generator with a model
builder whose layer/neuron/synapse counts match Table IV exactly (the
hidden sizes were reconstructed from the published totals — see DESIGN.md
§3).  ``build_model`` / ``load_dataset`` are the only entry points the
experiment drivers use, so swapping in the real MNIST/SVHN data later is a
one-file change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.digits import synthetic_mnist
from repro.datasets.faces import synthetic_faces
from repro.datasets.svhn import synthetic_svhn
from repro.datasets.tich import synthetic_tich
from repro.nn.layers import Conv2D, Dense, Flatten, ScaledAvgPool2D
from repro.nn.network import Sequential

__all__ = ["BenchmarkSpec", "BENCHMARKS", "build_model", "load_dataset",
           "training_arrays", "mlp", "lenet"]


def mlp(sizes: list[int], hidden_activation: str = "sigmoid",
        name: str = "mlp", seed: int = 0) -> Sequential:
    """Fully connected classifier; last layer identity (fused softmax).

    >>> mlp([1024, 100, 10]).num_params
    103510
    """
    if len(sizes) < 2:
        raise ValueError("an MLP needs at least input and output sizes")
    rng = np.random.default_rng(seed)
    layers = []
    for index, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
        last = index == len(sizes) - 2
        layers.append(Dense(
            fan_in, fan_out,
            activation="identity" if last else hidden_activation,
            rng=rng, name=f"fc{index + 1}"))
    return Sequential(layers, name=name)


def lenet(n_classes: int = 10, seed: int = 0,
          name: str = "lenet") -> Sequential:
    """LeNet-5 with full C3 connectivity, matching Table IV's CNN row.

    conv6@5x5 → pool → conv16@5x5 → pool → conv120@5x5 → fc.

    >>> net = lenet()
    >>> net.num_params
    51946
    >>> net.num_neurons
    8010
    """
    rng = np.random.default_rng(seed)
    layers = [
        Conv2D(1, 6, 5, activation="tanh", rng=rng, name="c1"),
        ScaledAvgPool2D(6, 2, activation="tanh", name="s2"),
        Conv2D(6, 16, 5, activation="tanh", rng=rng, name="c3"),
        ScaledAvgPool2D(16, 2, activation="tanh", name="s4"),
        Conv2D(16, 120, 5, activation="tanh", rng=rng, name="c5"),
        Flatten(),
        Dense(120, n_classes, activation="identity", rng=rng, name="f6"),
    ]
    return Sequential(layers, name=name, input_spatial=(32, 32))


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table IV row: dataset + model + word width + published counts."""

    key: str
    description: str
    dataset_fn: Callable[..., Dataset]
    model_fn: Callable[[int], Sequential]
    bits: int
    model_kind: str            # "MLP" or "CNN"
    table4_layers: int
    table4_neurons: int
    table4_synapses: int
    needs_images: bool = False  # CNN models consume (n, 1, h, w) input


def _mnist_mlp_model(seed: int) -> Sequential:
    return mlp([1024, 100, 10], name="mnist-mlp", seed=seed)


def _lenet_model(seed: int) -> Sequential:
    return lenet(10, seed=seed)


def _face_model(seed: int) -> Sequential:
    return mlp([1024, 100, 2], name="face-mlp", seed=seed)


def _svhn_model(seed: int) -> Sequential:
    return mlp([1024, 734, 242, 198, 194, 182, 10],
               hidden_activation="tanh", name="svhn-mlp", seed=seed)


def _tich_model(seed: int) -> Sequential:
    return mlp([1024, 305, 190, 175, 80, 36],
               hidden_activation="tanh", name="tich-mlp", seed=seed)


BENCHMARKS: dict[str, BenchmarkSpec] = {
    "mnist_mlp": BenchmarkSpec(
        key="mnist_mlp",
        description="Digit Recognition (8 bit) - MNIST MLP",
        dataset_fn=synthetic_mnist,
        model_fn=_mnist_mlp_model,
        bits=8, model_kind="MLP",
        table4_layers=2, table4_neurons=110, table4_synapses=103510,
    ),
    "mnist_cnn": BenchmarkSpec(
        key="mnist_cnn",
        description="Digit Recognition (12 bit) - MNIST CNN (LeNet)",
        dataset_fn=synthetic_mnist,
        model_fn=_lenet_model,
        bits=12, model_kind="CNN",
        table4_layers=6, table4_neurons=8010, table4_synapses=51946,
        needs_images=True,
    ),
    "face": BenchmarkSpec(
        key="face",
        description="Face Detection (12 bit) - YUV Faces MLP",
        dataset_fn=synthetic_faces,
        model_fn=_face_model,
        bits=12, model_kind="MLP",
        table4_layers=2, table4_neurons=102, table4_synapses=102702,
    ),
    "svhn": BenchmarkSpec(
        key="svhn",
        description="House Number Recognition - SVHN MLP",
        dataset_fn=synthetic_svhn,
        model_fn=_svhn_model,
        bits=8, model_kind="MLP",
        table4_layers=6, table4_neurons=1560, table4_synapses=1054260,
    ),
    "tich": BenchmarkSpec(
        key="tich",
        description="Tilburg Character Set Recognition - TICH MLP",
        dataset_fn=synthetic_tich,
        model_fn=_tich_model,
        bits=8, model_kind="MLP",
        table4_layers=5, table4_neurons=786, table4_synapses=421186,
    ),
}


def build_model(key: str, seed: int = 0) -> Sequential:
    """Instantiate the model of benchmark *key* (fresh random init)."""
    return _spec(key).model_fn(seed)


def load_dataset(key: str, n_train: int | None = None,
                 n_test: int | None = None, seed: int = 0) -> Dataset:
    """Generate the dataset of benchmark *key* (seeded, reproducible)."""
    spec = _spec(key)
    kwargs: dict[str, int] = {"seed": seed}
    if n_train is not None:
        kwargs["n_train"] = n_train
    if n_test is not None:
        kwargs["n_test"] = n_test
    return spec.dataset_fn(**kwargs)


def training_arrays(dataset: Dataset,
                    spec: BenchmarkSpec) -> tuple[np.ndarray, np.ndarray]:
    """``(x_train, x_test)`` in the layout *spec*'s model consumes.

    CNN benchmarks take ``(n, 1, h, w)`` images, MLPs the flat view —
    a choice each driver used to re-derive from ``needs_images``.
    """
    if spec.needs_images:
        return dataset.x_train, dataset.x_test
    return dataset.flat_train, dataset.flat_test


def _spec(key: str) -> BenchmarkSpec:
    try:
        return BENCHMARKS[key]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {key!r}; choose from {sorted(BENCHMARKS)}"
        ) from None
