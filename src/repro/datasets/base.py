"""Dataset container shared by all synthetic benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Dataset", "one_hot"]


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Integer labels → one-hot float matrix.

    >>> one_hot(np.array([0, 2]), 3).tolist()
    [[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]]
    """
    labels = np.asarray(labels)
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise ValueError(
            f"labels outside [0, {n_classes}): "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((len(labels), n_classes))
    encoded[np.arange(len(labels)), labels] = 1.0
    return encoded


@dataclass
class Dataset:
    """Train/test split of images with integer labels.

    Images are stored as ``(n, channels, h, w)`` float arrays in [0, 1];
    :meth:`flat_train` / :meth:`flat_test` give the MLP view.
    """

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    n_classes: int

    def __post_init__(self) -> None:
        if len(self.x_train) != len(self.y_train):
            raise ValueError("train images and labels differ in length")
        if len(self.x_test) != len(self.y_test):
            raise ValueError("test images and labels differ in length")
        if self.n_classes < 2:
            raise ValueError("need at least two classes")

    # ------------------------------------------------------------------
    @property
    def flat_train(self) -> np.ndarray:
        return self.x_train.reshape(len(self.x_train), -1)

    @property
    def flat_test(self) -> np.ndarray:
        return self.x_test.reshape(len(self.x_test), -1)

    @property
    def y_train_onehot(self) -> np.ndarray:
        return one_hot(self.y_train, self.n_classes)

    @property
    def image_shape(self) -> tuple[int, ...]:
        return tuple(self.x_train.shape[1:])

    @property
    def num_features(self) -> int:
        return int(np.prod(self.image_shape))

    def subset(self, n_train: int, n_test: int) -> "Dataset":
        """First-``n`` slice of each split (for fast benchmark budgets)."""
        if n_train > len(self.x_train) or n_test > len(self.x_test):
            raise ValueError("subset larger than dataset")
        return Dataset(
            name=f"{self.name}[{n_train}/{n_test}]",
            x_train=self.x_train[:n_train],
            y_train=self.y_train[:n_train],
            x_test=self.x_test[:n_test],
            y_test=self.y_test[:n_test],
            n_classes=self.n_classes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Dataset {self.name}: {len(self.x_train)} train, "
                f"{len(self.x_test)} test, {self.n_classes} classes>")


def balanced_labels(n: int, n_classes: int,
                    rng: np.random.Generator) -> np.ndarray:
    """A shuffled label vector with (near-)equal class counts."""
    labels = np.arange(n) % n_classes
    rng.shuffle(labels)
    return labels
