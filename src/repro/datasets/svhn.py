"""Synthetic SVHN stand-in: digits over street-scene clutter.

SVHN is the paper's *hard* benchmark — house-number crops with distractor
digits, varying contrast and heavy background structure.  The generator
reproduces those difficulty drivers: a textured background gradient,
fragments of neighbouring digits at the image borders, contrast jitter and
strong noise.  Accuracy of the same MLP drops well below the clean-digit
dataset, preserving the paper's 'complex datasets degrade more under ASM'
observation (Fig. 7).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, balanced_labels
from repro.datasets.strokefont import (
    glyph_strokes,
    jitter_transform,
    render_strokes,
)

__all__ = ["synthetic_svhn"]

_DIGITS = "0123456789"


def _background(image_size: int, rng: np.random.Generator) -> np.ndarray:
    """Low-frequency intensity gradient plus blocky texture."""
    grid = np.linspace(0.0, 1.0, image_size)
    gx, gy = np.meshgrid(grid, grid, indexing="xy")
    direction = rng.uniform(0, 2 * np.pi)
    gradient = 0.5 + 0.5 * (np.cos(direction) * gx + np.sin(direction) * gy)
    level = rng.uniform(0.1, 0.45)
    coarse = rng.normal(0.0, 0.25, size=(4, 4))
    texture = np.kron(coarse, np.ones((image_size // 4, image_size // 4)))
    return np.clip(level * gradient + 0.15 * texture, 0.0, 1.0)


def _distractor(image: np.ndarray, rng: np.random.Generator) -> None:
    """Paste a fragment of a random digit at a border, in place."""
    size = image.shape[0]
    char = _DIGITS[rng.integers(10)]
    fragment = render_strokes(glyph_strokes(char), image_size=size,
                              thickness=rng.uniform(0.03, 0.06),
                              transform=jitter_transform(rng))
    shift = rng.integers(size // 2, size - size // 4)
    axis = rng.integers(2)
    sign = 1 if rng.uniform() < 0.5 else -1
    fragment = np.roll(fragment, sign * shift, axis=axis)
    strength = rng.uniform(0.4, 0.9)
    np.maximum(image, fragment * strength, out=image)


def synthetic_svhn(n_train: int = 2000, n_test: int = 500,
                   image_size: int = 32, noise: float = 0.12,
                   seed: int = 0) -> Dataset:
    """Build the house-number dataset (10 classes, cluttered)."""
    if n_train < 1 or n_test < 1:
        raise ValueError("need at least one sample per split")
    rng = np.random.default_rng(seed)

    def split(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = balanced_labels(n, 10, rng)
        images = np.empty((n, 1, image_size, image_size))
        for index, label in enumerate(labels):
            image = _background(image_size, rng)
            if rng.uniform() < 0.8:
                _distractor(image, rng)
            digit = render_strokes(
                glyph_strokes(_DIGITS[label]), image_size=image_size,
                thickness=rng.uniform(0.04, 0.08),
                transform=jitter_transform(rng, rotation_deg=14,
                                           translate=0.1))
            contrast = rng.uniform(0.55, 1.0)
            np.maximum(image, digit * contrast, out=image)
            image += rng.normal(0.0, noise, size=image.shape)
            images[index, 0] = np.clip(image, 0.0, 1.0)
        return images, labels

    x_train, y_train = split(n_train)
    x_test, y_test = split(n_test)
    return Dataset("synthetic-svhn", x_train, y_train, x_test, y_test,
                   n_classes=10)
