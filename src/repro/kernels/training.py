"""Training kernels: the forward / backward / update hot loop.

Every ``repro explore`` candidate and every rung of Algorithm 2's
constrained-retraining ladder pays for float training from scratch, so
the per-batch loop in :mod:`repro.nn` is the slowest remaining stage
(ROADMAP).  This module gives it the same two-backend treatment the
inference, simulation and projection kernels already have:

``reference``
    The per-layer loops of :mod:`repro.nn.layers`,
    :class:`~repro.nn.network.Sequential` and
    :class:`~repro.nn.optim.SGD` extracted verbatim — ground truth, and
    byte-for-byte the behaviour every existing cached stage result was
    produced by.

``fast``
    A compiled per-network *training plan*.  All buffers (pre-
    activations, activations, gradients, im2col column matrices) are
    allocated once per ``(layer, batch shape)`` and reused across
    batches; the activation derivative is fused from the *cached
    activation output* instead of re-evaluating the activation on the
    cached pre-activation; the gradient GEMMs and reductions write into
    preallocated outputs; the momentum SGD update runs in place.  Every
    transformation is exact in IEEE-754 float64:

    * ufuncs with ``out=`` perform the identical elementwise operation,
      only the destination changes;
    * ``sigmoid'(z) = s(1-s)`` evaluated as ``(1-a)*a`` on the cached
      output ``a == sigmoid(z)`` is the same two ops (multiplication is
      commutative in IEEE-754, including rounding), and likewise
      ``tanh'(z) = 1-a*a`` and ``relu'(z) = (a > 0)``;
    * ``im2col`` becomes a cached gather (pure data movement) and
      ``col2im`` keeps the reference scatter-accumulate loop order;
    * the conv gradient contractions stay ``einsum`` (a BLAS-shaped
      rewrite would change the summation order and break bit-identity);
    * ``v = m*v - r*g; p = p + v`` becomes ``v *= m; v -= r*g; p += v``
      — the same multiply / multiply / subtract / add per element.

    Layer types or activations outside the planned set fall back to the
    layer's own ``forward``/``backward`` per layer, so the backend is
    bit-identical to ``reference`` unconditionally.

Plans live on the layer objects (``layer._train_cache``) exactly like
the inference-kernel caches, and never capture parameter *arrays* —
both the reference SGD update and the reference projection kernel
rebind ``layer.params[key]`` to fresh arrays, so parameters are
re-fetched on every call.

The bit-identity claim is enforced by ``tests/test_train_backends.py``
(full ``TrainHistory`` + final-state ``tobytes()`` equality) and the
``bench_training_epoch`` benchmark's in-bench assertions.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "train_forward_reference", "train_backward_reference",
    "sgd_update_reference", "train_forward_fast", "train_backward_fast",
    "sgd_update_fast",
]


# ----------------------------------------------------------------------
# reference kernels: the repro.nn loops, verbatim
# ----------------------------------------------------------------------
def train_forward_reference(network, x: np.ndarray,
                            training: bool = True) -> np.ndarray:
    """The original :meth:`Sequential.forward` layer loop."""
    for layer in network.layers:
        x = layer.forward(x, training=training)
    return x


def train_backward_reference(network, grad: np.ndarray) -> np.ndarray:
    """The original :meth:`Sequential.backward` layer loop."""
    for layer in reversed(network.layers):
        grad = layer.backward(grad)
    return grad


def sgd_update_reference(network, velocity: dict, rate: float,
                         momentum: float) -> None:
    """The original :meth:`SGD.step` body (fresh arrays per slot)."""
    for index, layer in enumerate(network.layers):
        if not layer.is_trainable:
            continue
        for key, grad in layer.grads.items():
            slot = (index, key)
            slot_velocity = velocity.get(slot)
            if slot_velocity is None:
                slot_velocity = np.zeros_like(grad)
            slot_velocity = momentum * slot_velocity - rate * grad
            velocity[slot] = slot_velocity
            layer.params[key] = layer.params[key] + slot_velocity


# ----------------------------------------------------------------------
# fast kernels: per-(layer, batch shape) training plans
# ----------------------------------------------------------------------
def _train_cache(layer) -> dict:
    cache = layer.__dict__.get("_train_cache")
    if cache is None:
        cache = layer.__dict__["_train_cache"] = {}
    return cache


def _nn():
    """Lazy :mod:`repro.nn` namespace (keeps kernel imports acyclic)."""
    from repro.nn import activations, layers
    return activations, layers


# Concrete activation classes, resolved once on first use (the lazy
# import keeps kernel imports acyclic; per-call imports would dominate
# small-batch steps).  The derivative-from-output fusion identities are
# proven for these exact classes only; a subclass overriding ``forward``
# would silently break them, so checks are on the concrete type.
_IDENTITY = _SIGMOID = _TANH = _RELU = None


def _resolve_activations() -> None:
    global _IDENTITY, _SIGMOID, _TANH, _RELU
    activations, _ = _nn()
    _IDENTITY = activations.Identity
    _SIGMOID = activations.Sigmoid
    _TANH = activations.Tanh
    _RELU = activations.ReLU


def _fused_activation(activation) -> bool:
    """True when the derivative can be fused from the cached output."""
    if _IDENTITY is None:
        _resolve_activations()
    return type(activation) in (_IDENTITY, _SIGMOID, _TANH, _RELU)


def _activation_forward(activation, z: np.ndarray,
                        out: np.ndarray) -> np.ndarray:
    """``activation.forward(z)`` written into *out* (or ``z`` itself for
    the identity, matching the reference's pass-through)."""
    kind = type(activation)
    if kind is _IDENTITY:
        return z
    if kind is _TANH:
        return np.tanh(z, out=out)
    if kind is _RELU:
        return np.maximum(z, 0.0, out=out)
    # Sigmoid: the same numerically stable positive/negative split as
    # Sigmoid.forward, destination aside.
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    ez = np.exp(z[~positive])
    out[~positive] = ez / (1.0 + ez)
    return out


def _activation_backward(activation, a: np.ndarray, grad_out: np.ndarray,
                         out: np.ndarray) -> np.ndarray:
    """``grad_out * activation.derivative(z)`` from the cached output.

    ``a`` is bitwise what ``activation.forward(z)`` returned, so the
    derivative-from-output identities below reproduce the reference
    values exactly (IEEE-754 multiplication is commutative).
    """
    kind = type(activation)
    if kind is _IDENTITY:
        return np.multiply(grad_out, 1.0, out=out)
    if kind is _RELU:
        return np.multiply(grad_out, a > 0, out=out)
    if kind is _TANH:
        np.multiply(a, a, out=out)
        np.subtract(1.0, out, out=out)
        out *= grad_out
        return out
    # Sigmoid: s * (1 - s) == (1 - a) * a
    np.subtract(1.0, a, out=out)
    out *= a
    out *= grad_out
    return out


class _DensePlan:
    """Preallocated buffers for one (Dense layer, batch size)."""

    def __init__(self, layer, batch: int) -> None:
        n_in, n_out = layer.in_features, layer.out_features
        self.z = np.empty((batch, n_out))
        self.a = np.empty((batch, n_out))
        self.d = np.empty((batch, n_out))
        self.gw = np.empty((n_in, n_out))
        self.gb = np.empty(n_out)
        self.gx = np.empty((batch, n_in))
        self.x: np.ndarray | None = None
        self.out: np.ndarray | None = None

    def forward(self, layer, x: np.ndarray) -> np.ndarray:
        np.matmul(x, layer.params["W"], out=self.z)
        self.z += layer.params["b"]
        self.x = x
        self.out = _activation_forward(layer.activation, self.z, self.a)
        return self.out

    def backward(self, layer, grad_out: np.ndarray) -> np.ndarray:
        grad_z = _activation_backward(layer.activation, self.out,
                                      grad_out, self.d)
        np.matmul(self.x.T, grad_z, out=self.gw)
        np.sum(grad_z, axis=0, out=self.gb)
        layer.grads = {"W": self.gw, "b": self.gb}
        np.matmul(grad_z, layer.params["W"].T, out=self.gx)
        return self.gx


class _ConvPlan:
    """Preallocated buffers + gather plan for one (Conv2D, input shape)."""

    def __init__(self, layer, x_shape: tuple[int, ...]) -> None:
        from repro.nn.conv_utils import conv_output_size

        batch, channels, height, width = x_shape
        k = layer.kernel
        out_h = conv_output_size(height, k)
        out_w = conv_output_size(width, k)
        oc = layer.out_channels
        self.x_shape = x_shape
        self.out_h, self.out_w = out_h, out_w
        # gather indices: cols[b, p, q] == x[b].ravel()[idx[p, q]] with
        # p = ph*out_w + pw and q = c*k*k + di*k + dj — exactly the
        # element im2col's transpose/reshape copies there.
        ph, pw = np.divmod(np.arange(out_h * out_w), out_w)
        c, rest = np.divmod(np.arange(channels * k * k), k * k)
        di, dj = np.divmod(rest, k)
        self.idx = (c[None, :] * (height * width)
                    + (ph[:, None] + di[None, :]) * width
                    + (pw[:, None] + dj[None, :]))
        positions = out_h * out_w
        self.cols = np.empty((batch, positions, channels * k * k))
        # z/a keep the reference memory layout: the reference forward
        # returns `act(z.transpose(0, 2, 1).reshape(...))`, a *strided*
        # array (ufuncs preserve input layout), and downstream
        # reductions group partial sums by memory order — a C-contiguous
        # twin would flip low-order bits in the next layer's pooling.
        self.z3 = np.empty((batch, positions, oc))
        self.z4 = self.z3.transpose(0, 2, 1).reshape(
            batch, oc, out_h, out_w)
        self._a3 = np.empty((batch, positions, oc))
        self.a4 = self._a3.transpose(0, 2, 1).reshape(
            batch, oc, out_h, out_w)
        # grad_z mixes the strided z layout with the C-contiguous
        # upstream gradient, which numpy resolves to C order — so the
        # gradient buffers are plain C arrays like the reference's.
        self.d4 = np.empty((batch, oc, out_h, out_w))
        self.gw2 = np.empty((oc, channels * k * k))
        self.gb = np.empty(oc)
        self.gcols = np.empty((batch, positions, channels * k * k))
        self.gx = np.empty(x_shape)
        self.out: np.ndarray | None = None

    def forward(self, layer, x: np.ndarray) -> np.ndarray:
        batch = x.shape[0]
        np.take(x.reshape(batch, -1), self.idx, axis=1, out=self.cols)
        kernels = layer.params["W"].reshape(layer.out_channels, -1)
        np.matmul(self.cols, kernels.T, out=self.z3)
        self.z3 += layer.params["b"]
        self.out = _activation_forward(layer.activation, self.z4, self.a4)
        return self.out

    def backward(self, layer, grad_out: np.ndarray) -> np.ndarray:
        batch = grad_out.shape[0]
        grad_z = _activation_backward(layer.activation, self.out,
                                      grad_out, self.d4)
        flat = grad_z.reshape(batch, layer.out_channels, -1)
        np.einsum("bop,bpk->ok", flat, self.cols, out=self.gw2)
        grad_w = self.gw2.reshape(layer.params["W"].shape)
        if layer.connection_table is not None:
            grad_w *= layer.connection_table[:, :, None, None]
        np.sum(flat, axis=(0, 2), out=self.gb)
        layer.grads = {"W": grad_w, "b": self.gb}
        kernels = layer.params["W"].reshape(layer.out_channels, -1)
        np.einsum("bop,ok->bpk", flat, kernels, out=self.gcols)
        # col2im with the buffer preallocated; the (di, dj) loop order is
        # the reference accumulation order and must stay.
        k = layer.kernel
        out_h, out_w = self.out_h, self.out_w
        channels = self.x_shape[1]
        blocks = self.gcols.reshape(batch, out_h, out_w, channels, k, k)
        self.gx.fill(0.0)
        for di in range(k):
            for dj in range(k):
                self.gx[:, :, di:di + out_h, dj:dj + out_w] += \
                    blocks[:, :, :, :, di, dj].transpose(0, 3, 1, 2)
        return self.gx


class _PoolPlan:
    """Preallocated buffers for one (ScaledAvgPool2D, input shape)."""

    def __init__(self, layer, x: np.ndarray) -> None:
        batch, channels, height, width = x.shape
        s = layer.size
        self.x_shape = x.shape
        out_shape = (batch, channels, height // s, width // s)
        # The forward-side buffers must carry the memory layout numpy
        # would give a fresh `x6.mean(axis=(3, 5))` for THIS input: when
        # x is the strided view a conv layer returns, the mean output
        # follows that layout, and the reduction groups partial sums
        # differently for a C-contiguous destination.  One throwaway
        # mean at plan-build time captures the exact layout.
        proto = x.reshape(batch, channels, height // s, s,
                          width // s, s).mean(axis=(3, 5))
        self.pooled = np.empty_like(proto)
        self.z = np.empty_like(proto)
        self.a = np.empty_like(proto)
        # gradient-side buffers are C like the reference's: grad_z mixes
        # the C-contiguous upstream gradient with the strided activation
        # layout, which numpy resolves to C order.
        self.d = np.empty(out_shape)
        self.tmp = np.empty(out_shape)
        self.gp = np.empty(out_shape)
        self.ggain = np.empty(channels)
        self.gbias = np.empty(channels)
        self.gx = np.empty(x.shape)
        self.out: np.ndarray | None = None

    def forward(self, layer, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = self.x_shape
        s = layer.size
        x6 = x.reshape(batch, channels, height // s, s, width // s, s)
        np.mean(x6, axis=(3, 5), out=self.pooled)
        np.multiply(self.pooled, layer.params["gain"][:, None, None],
                    out=self.z)
        np.add(self.z, layer.params["bias"][:, None, None], out=self.z)
        self.out = _activation_forward(layer.activation, self.z, self.a)
        return self.out

    def backward(self, layer, grad_out: np.ndarray) -> np.ndarray:
        batch, channels, height, width = self.x_shape
        s = layer.size
        grad_z = _activation_backward(layer.activation, self.out,
                                      grad_out, self.d)
        np.multiply(grad_z, self.pooled, out=self.tmp)
        np.sum(self.tmp, axis=(0, 2, 3), out=self.ggain)
        np.sum(grad_z, axis=(0, 2, 3), out=self.gbias)
        layer.grads = {"gain": self.ggain, "bias": self.gbias}
        np.multiply(grad_z, layer.params["gain"][:, None, None],
                    out=self.gp)
        self.gp /= (s * s)
        # np.repeat x2 == broadcast copy into the strided 6-D view
        gx6 = self.gx.reshape(batch, channels, height // s, s,
                              width // s, s)
        gx6[...] = self.gp[:, :, :, None, :, None]
        return self.gx


#: Cached "this (layer, input) combination falls back" decision.
_FALLBACK = object()


def _build_plan(layer, x: np.ndarray):
    """Plan instance for ``(layer, x)``, or ``_FALLBACK`` (slow path).

    Plans require the float64 substrate and a built-in activation whose
    derivative-from-output fusion is proven exact; anything else runs
    the layer's own ``forward``/``backward`` (bit-identical by
    definition, merely unaccelerated).
    """
    _, layers = _nn()
    kind = type(layer)
    if kind not in (layers.Dense, layers.Conv2D, layers.ScaledAvgPool2D):
        return _FALLBACK
    if x.dtype != np.float64 or not _fused_activation(layer.activation):
        return _FALLBACK
    if any(p.dtype != np.float64 for p in layer.params.values()):
        return _FALLBACK
    if kind is layers.Dense:
        if x.ndim != 2 or x.shape[1] != layer.in_features:
            return _FALLBACK
        return _DensePlan(layer, x.shape[0])
    if kind is layers.Conv2D:
        if x.ndim != 4 or x.shape[1] != layer.in_channels \
                or x.shape[2] < layer.kernel or x.shape[3] < layer.kernel:
            return _FALLBACK
        return _ConvPlan(layer, x.shape)
    if x.ndim != 4 or x.shape[1] != layer.channels \
            or x.shape[2] % layer.size or x.shape[3] % layer.size:
        return _FALLBACK
    return _PoolPlan(layer, x)


def _plan_for(layer, x: np.ndarray):
    """The layer's cached plan for this input, or ``None`` to fall back.

    Decisions (including fallbacks) are memoized per (shape, strides,
    dtype): buffer layouts mirror the input's memory layout (see
    _PoolPlan), and the strides/dtype of the array a given layer sees
    for one shape are fixed by the preceding layer.  Parameter dtypes
    are revalidated on every hit — the projection hook rebinds
    ``layer.params[key]``, and a swap to a non-float64 array must drop
    back to the reference loop.
    """
    cache = _train_cache(layer)
    key = (x.shape, x.strides, x.dtype)
    plan = cache.get(key)
    if plan is None:
        plan = cache[key] = _build_plan(layer, x)
    if plan is _FALLBACK:
        return None
    for p in layer.params.values():
        if p.dtype != np.float64:
            return None
    return plan


def train_forward_fast(network, x: np.ndarray,
                       training: bool = True) -> np.ndarray:
    """Planned forward pass; remembers each layer's active plan so the
    matching :func:`train_backward_fast` reads the right buffers."""
    for layer in network.layers:
        plan = _plan_for(layer, x)
        _train_cache(layer)["active"] = plan
        if plan is None:
            x = layer.forward(x, training=training)
        else:
            x = plan.forward(layer, x)
    return x


def train_backward_fast(network, grad: np.ndarray) -> np.ndarray:
    for layer in reversed(network.layers):
        plan = _train_cache(layer).get("active")
        if plan is None:
            grad = layer.backward(grad)
        else:
            grad = plan.backward(layer, grad)
    return grad


def sgd_update_fast(network, velocity: dict, rate: float,
                    momentum: float) -> None:
    """In-place momentum update: same elementwise ops as the reference
    (``v*m`` and ``g*r`` are commutative products), zero allocations
    after the first batch."""
    for index, layer in enumerate(network.layers):
        if not layer.is_trainable:
            continue
        cache = _train_cache(layer)
        scratches = cache.get("sgd")
        if scratches is None:
            scratches = cache["sgd"] = {}
        for key, grad in layer.grads.items():
            slot = (index, key)
            slot_velocity = velocity.get(slot)
            if slot_velocity is None:
                slot_velocity = velocity[slot] = np.zeros_like(grad)
            scratch = scratches.get(key)
            if scratch is None or scratch.shape != grad.shape:
                scratch = scratches[key] = np.empty_like(grad)
            slot_velocity *= momentum
            np.multiply(grad, rate, out=scratch)
            slot_velocity -= scratch
            layer.params[key] += slot_velocity
