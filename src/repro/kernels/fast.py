"""Fast kernels: the exact-in-float64 BLAS lowering.

numpy has no accelerated int64 GEMM, but whenever a layer's accumulator
bound ``fan_in * max|W| * max|x|`` stays below ``2**53`` every product
and partial sum is an exactly-representable float64 integer, so running
the accumulation through ``dgemm`` is *bit-exact* while being several
times faster.  8- and 12-bit words at the paper's fan-ins clear the
bound by ~20 binary orders of magnitude.

Each kernel checks the bound per layer (:func:`blas_exact`) and falls
back to the :mod:`reference <repro.kernels.reference>` kernel when it
fails, so the backend is bit-identical to ``reference`` unconditionally
— the fallback merely loses the speedup.  Activation codes are carried
as integer-valued float64 between fast layers (requantisation produces
them directly via :func:`quantize_codes_f64`), skipping two dtype
round-trips per layer; reference-kernel layers coerce back to int64 on
entry.

Per-layer precomputations — the float64 view of the folded integer
weights and the exactness decision — are cached on the layer objects
(``layer._kernel_cache``), so repeated forward passes and networks that
share layers (e.g. :meth:`CompiledModel.from_quantized
<repro.serving.compiled.CompiledModel.from_quantized>`) pay them once.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.binary import signed_range
from repro.kernels import reference
from repro.kernels.projection import project_fast
from repro.kernels.registry import KernelBackend, register_backend
from repro.kernels.simulate import simulate_layer_fast
from repro.kernels.training import (
    sgd_update_fast,
    train_backward_fast,
    train_forward_fast,
)

__all__ = ["blas_exact", "quantize_codes_f64", "requantize_codes",
           "FastBackend"]

#: Largest integer magnitude float64 represents exactly.
EXACT_FLOAT64 = 2 ** 53


def blas_exact(w_int: np.ndarray, fan_in: int, act_fmt) -> bool:
    """True when the layer's accumulation cannot round in float64.

    Activations are act-format codes, so ``|x| <= 2**(total_bits-1)``;
    with ``fan_in`` MACs the accumulator magnitude is bounded by
    ``fan_in * max|W| * max|x|``.  Exact while that stays below ``2**53``.
    """
    max_w = int(np.abs(w_int).max()) if w_int.size else 0
    max_x = 1 << (act_fmt.total_bits - 1)
    return fan_in * max_w * max_x < EXACT_FLOAT64


def quantize_codes_f64(values: np.ndarray, fmt) -> np.ndarray:
    """``fmt.quantize_array`` producing float64 codes instead of int64.

    Same op sequence (scale, round-half-away-from-zero, saturate) with
    in-place arithmetic, so the code *values* are identical — they just
    stay in the dtype the BLAS kernels consume.
    """
    low, high = signed_range(fmt.total_bits)
    scaled = np.asarray(values, dtype=np.float64) / fmt.resolution
    signs = np.sign(scaled)
    np.abs(scaled, out=scaled)
    scaled += 0.5
    np.floor(scaled, out=scaled)
    scaled *= signs
    return np.clip(scaled, low, high, out=scaled)


def requantize_codes(real_values: np.ndarray, activation, act_fmt,
                     lut) -> np.ndarray:
    """The float-codes twin of :func:`repro.kernels.reference.requantize`:
    same activation step, float64-carrier quantiser."""
    return quantize_codes_f64(
        reference.apply_activation(real_values, activation, lut), act_fmt)


def _as_f64_codes(x: np.ndarray) -> np.ndarray:
    if x.dtype == np.float64:
        return x
    return x.astype(np.float64)


def _cache(layer) -> dict:
    cache = layer.__dict__.get("_kernel_cache")
    if cache is None:
        cache = layer.__dict__["_kernel_cache"] = {}
    return cache


def _dense_plan(layer) -> np.ndarray | None:
    """Float64 weight matrix of a dense layer, or ``None`` if inexact."""
    cache = _cache(layer)
    if "dense" not in cache:
        if blas_exact(layer.w_int, layer.w_int.shape[0], layer.act_fmt):
            cache["dense"] = np.ascontiguousarray(layer.w_int,
                                                  dtype=np.float64)
        else:
            cache["dense"] = None
    return cache["dense"]


def _conv_plan(layer) -> np.ndarray | None:
    """Transposed float64 kernel matrix of a conv layer, or ``None``."""
    cache = _cache(layer)
    if "conv" not in cache:
        fan_in = layer.w_int.shape[1] * layer.kernel * layer.kernel
        if blas_exact(layer.w_int, fan_in, layer.act_fmt):
            kernels = layer.w_int.reshape(layer.out_channels, -1)
            cache["conv"] = np.ascontiguousarray(kernels.T,
                                                 dtype=np.float64)
        else:
            cache["conv"] = None
    return cache["conv"]


def _pool_plan(layer) -> np.ndarray | None:
    """Float64 gain column of a pool layer, or ``None`` if inexact."""
    cache = _cache(layer)
    if "pool" not in cache:
        # accumulator bound: an s*s window sum of codes times the gain
        fan_in = layer.size * layer.size
        if blas_exact(layer.gain_int, fan_in, layer.act_fmt):
            cache["pool"] = layer.gain_int.astype(np.float64)[:, None, None]
        else:
            cache["pool"] = None
    return cache["pool"]


class FastBackend(KernelBackend):
    """BLAS-in-float64 kernels with per-layer exactness fallback."""

    name = "fast"

    def quantize_input(self, x, fmt):
        return quantize_codes_f64(x, fmt)

    def dense(self, layer, x, x_fmt):
        w_f64 = _dense_plan(layer)
        if w_f64 is None:
            return reference.dense_forward(layer, x, x_fmt)
        # bit-exact: every product/partial sum is an integer < 2**53
        acc = _as_f64_codes(x) @ w_f64
        scale = x_fmt.resolution * layer.w_fmt.resolution
        real = acc * scale + layer.bias
        if layer.is_output:
            return real, None
        return requantize_codes(real, layer.activation, layer.act_fmt,
                                layer.lut), layer.act_fmt

    def conv(self, layer, x, x_fmt):
        from repro.nn.conv_utils import conv_output_size, im2col

        kernels_t = _conv_plan(layer)
        if kernels_t is None:
            return reference.conv_forward(layer, x, x_fmt)
        x = _as_f64_codes(x)
        batch, _, height, width = x.shape
        out_h = conv_output_size(height, layer.kernel)
        out_w = conv_output_size(width, layer.kernel)
        acc = im2col(x, layer.kernel) @ kernels_t
        scale = x_fmt.resolution * layer.w_fmt.resolution
        real = acc * scale + layer.bias
        real = real.transpose(0, 2, 1).reshape(
            batch, layer.out_channels, out_h, out_w)
        return requantize_codes(real, layer.activation, layer.act_fmt,
                                layer.lut), layer.act_fmt

    def pool(self, layer, x, x_fmt):
        gain_f64 = _pool_plan(layer)
        if gain_f64 is None:
            return reference.pool_forward(layer, x, x_fmt)
        x = _as_f64_codes(x)
        batch, channels, height, width = x.shape
        s = layer.size
        sums = x.reshape(batch, channels, height // s, s,
                         width // s, s).sum(axis=(3, 5))
        acc = sums * gain_f64                      # exact integer products
        scale = x_fmt.resolution * layer.gain_fmt.resolution / (s * s)
        real = acc * scale + layer.bias[:, None, None]
        return requantize_codes(real, layer.activation, layer.act_fmt,
                                layer.lut), layer.act_fmt

    def lowering(self, layer) -> str:
        plans = {"dense": _dense_plan, "conv": _conv_plan,
                 "pool": _pool_plan}
        plan = plans.get(layer.kind)
        if plan is None:
            return "integer"
        return "blas" if plan(layer) is not None else "integer"

    def simulate_layer(self, weights, inputs, units, bank_multiples):
        return simulate_layer_fast(weights, inputs, units, bank_multiples)

    def project_weights(self, weights, bits, constrainer, cache):
        return project_fast(weights, bits, constrainer, cache)

    def train_forward(self, network, x, training=True):
        return train_forward_fast(network, x, training)

    def train_backward(self, network, grad):
        return train_backward_fast(network, grad)

    def sgd_update(self, network, velocity, rate, momentum):
        sgd_update_fast(network, velocity, rate, momentum)


FAST = FastBackend()
register_backend("fast", FAST)
# "auto" = the fastest backend that is guaranteed bit-identical to the
# reference — today that is `fast`, whose kernels fall back per layer.
register_backend("auto", FAST)
