"""Projection kernels: the constrained-retraining weight snap.

:class:`~repro.training.constrained.ConstraintProjector` runs after
**every** optimiser step of a constrained retrain: quantise each weight
tensor to its per-layer power-of-two grid, push the integer codes onto
the alphabet-supported grid (a signed lookup table), and dequantise back
to float.  That three-step round trip is the training hot loop, so it is
a kernel with two implementations behind the backend registry:

``reference``
    The original operation sequence — :func:`quantize_constrain` (also
    the single shared call site of ``project()``/``violations()``)
    followed by ``QFormat.to_float_array``.  Allocates fresh arrays per
    step, exactly as the projector always has.

``fast``
    One fused pass over preallocated per-layer buffers: the
    :class:`~repro.fixedpoint.qformat.QFormat` is memoized while the
    tensor's ``max|w|`` stays inside the format's power-of-two validity
    window, the quantise arithmetic runs in place (scale by the exact
    reciprocal of the power-of-two resolution, round half away from
    zero, saturate), the constrainer's signed lookup table is indexed
    directly, and the dequantised result is written back into the
    caller's float tensor — zero per-step allocations once warm.
    Bit-identical to ``reference`` on every input (asserted in
    ``tests/test_sim_backends.py``): the op values are the same, only
    buffer reuse differs, and the power-of-two scale makes the
    reciprocal multiply exact.

The *constrainer* argument is duck-typed (needs ``constrain_array``, the
``table`` lookup array and ``layout.max_magnitude``), keeping this
module free of ``repro.asm`` imports.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.qformat import QFormat, qformat_for_range

__all__ = ["quantize_constrain", "project_reference", "project_fast"]


def quantize_constrain(weights: np.ndarray, bits: int, constrainer,
                       ) -> tuple[QFormat, np.ndarray, np.ndarray]:
    """Quantise *weights* and constrain the codes (reference semantics).

    Returns ``(fmt, codes, constrained_codes)`` — the shared first two
    steps of projection and of the projector's ``violations()`` count.
    """
    max_abs = float(np.max(np.abs(weights))) if weights.size else 1.0
    fmt = qformat_for_range(bits, max(max_abs, 1e-12))
    codes = fmt.quantize_array(weights)
    return fmt, codes, constrainer.constrain_array(codes)


def project_reference(weights: np.ndarray, bits: int, constrainer,
                      cache: dict) -> np.ndarray:
    """The projector's original quantise -> constrain -> dequantise."""
    fmt, _, constrained = quantize_constrain(weights, bits, constrainer)
    return fmt.to_float_array(constrained).reshape(weights.shape)


def project_fast(weights: np.ndarray, bits: int, constrainer,
                 cache: dict) -> np.ndarray:
    """Fused in-place projection over memoized per-layer buffers.

    *cache* is a per-(layer, parameter) dict owned by the projector; it
    holds the scratch buffers, the signed lookup table offset and the
    memoized :class:`QFormat` with its validity window ``(lo, hi]`` —
    ``qformat_for_range`` returns the same format for every ``max_abs``
    in that window, so the format is only recomputed when the weight
    range crosses a power-of-two boundary.
    """
    if not weights.size or not weights.flags.c_contiguous \
            or weights.dtype != np.float64:
        # the fused pass writes float64 results through a flat view,
        # which needs a contiguous float64 tensor (layer parameters
        # always are); anything else takes the reference path rather
        # than silently downcasting
        return project_reference(weights, bits, constrainer, cache)
    if cache.get("shape") != weights.shape:
        n = weights.size
        cache["shape"] = weights.shape
        cache["scaled"] = np.empty(n, dtype=np.float64)
        cache["codes"] = np.empty(n, dtype=np.int64)
        cache["max_mag"] = constrainer.layout.max_magnitude
        cache["fmt"] = None
    flat = weights.reshape(-1)
    scaled = cache["scaled"]
    max_mag = cache["max_mag"]

    np.abs(flat, out=scaled)
    max_abs = max(float(scaled.max()), 1e-12)
    fmt = cache["fmt"]
    if fmt is None or not cache["lo"] < max_abs <= cache["hi"]:
        fmt = qformat_for_range(bits, max_abs)
        cache["fmt"] = fmt
        cache["hi"] = max_mag * 2.0 ** (-fmt.frac_bits)
        cache["lo"] = max_mag * 2.0 ** (-(fmt.frac_bits + 1))
        # magnitude code -> constrained dequantised float, fused into
        # one lookup (exact: |code| < 2**53 and the resolution is a
        # power of two).  Index max_mag + 1 is the most negative signed
        # code, which saturates to the constrained max_mag — exactly
        # the signed table's index-0 entry, mirrored positive.
        table = constrainer.table
        cache["mag_table"] = np.concatenate(
            [table[max_mag + 1:], table[-1:]]) * fmt.resolution

    # quantise in the magnitude domain (the sign rides along via
    # copysign below): |code| = floor(|w|/res + 0.5), saturated.  The
    # values are the same as QFormat.quantize_array's — dividing by a
    # power of two == multiplying by its exact reciprocal, saturating
    # before truncation == after (the bound is itself an integer), and
    # int64 truncation of a non-negative float == floor.
    scaled *= 1.0 / fmt.resolution
    scaled += 0.5
    np.clip(scaled, 0.0, max_mag + 1.0, out=scaled)
    codes = cache["codes"]
    np.copyto(codes, scaled, casting="unsafe")   # trunc == floor here

    # constrain + dequantise: one lookup through the pre-scaled
    # magnitude table (every index is in range after the clip above;
    # mode="clip" skips the bounds check numpy's default mode pays),
    # then re-apply the signs.  Adding 0.0 turns the -0.0 that copysign
    # leaves on negative-weight zeros into the +0.0 the reference
    # produces, and changes no other value.
    np.take(cache["mag_table"], codes, out=scaled, mode="clip")
    np.copysign(scaled, flat, out=flat)
    flat += 0.0
    return weights
