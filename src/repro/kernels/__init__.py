"""repro.kernels — the compute-kernel layer under every forward path.

One home for the dense / conv (im2col) / scaled-avg-pool / requantise
forward kernels, each with a **reference** implementation (exact integer
arithmetic — the bit-accurate software twin of the paper's processing
engine) and a **fast** implementation (BLAS in float64, provably exact
below the ``2**53`` accumulator bound, falling back per layer otherwise),
behind a small registry::

    from repro.kernels import get_backend
    backend = get_backend("auto")      # "reference" | "fast" | "auto"

Consumers select a backend rather than owning kernel code:
:class:`~repro.nn.quantized.QuantizedNetwork` dispatches its layer stack
to one (default ``reference``), :class:`~repro.serving.compiled
.CompiledModel` compiles by selecting ``fast``, and the pipeline /
explorer plumb a ``backend`` config field through every evaluate stage.
``backend="reference"`` and ``backend="fast"`` are bit-identical by
construction (see ``docs/backends.md`` and ``tests/test_kernels.py``).

Layering: this package depends only on numpy and ``repro.fixedpoint``
(conv helpers are imported lazily), so ``repro.nn`` can import it freely.
"""

from repro.kernels.evaluate import DEFAULT_EVAL_BATCH, batched_accuracy
from repro.kernels.registry import (
    BACKEND_NAMES,
    KernelBackend,
    KernelBackendError,
    get_backend,
    register_backend,
)

# importing the implementation modules registers the built-in backends
from repro.kernels import reference as _reference  # noqa: E402,F401
from repro.kernels import fast as _fast            # noqa: E402,F401
from repro.kernels.fast import blas_exact, quantize_codes_f64
from repro.kernels.projection import quantize_constrain
from repro.kernels.reference import requantize
from repro.kernels.simulate import SimCounts, TOGGLE_KEYS

__all__ = [
    "BACKEND_NAMES", "KernelBackend", "KernelBackendError",
    "get_backend", "register_backend",
    "DEFAULT_EVAL_BATCH", "batched_accuracy",
    "blas_exact", "quantize_codes_f64", "requantize",
    "SimCounts", "TOGGLE_KEYS", "quantize_constrain",
]
