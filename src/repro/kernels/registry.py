"""The kernel-backend registry.

A :class:`KernelBackend` bundles one implementation of every compute
kernel the engine models need — the forward kernels (input quantisation,
dense, conv (im2col), scaled-average pool, requantisation), the
cycle-accurate **simulation** kernel (toggle counting for the
:class:`~repro.hardware.simulator.CycleAccurateEngine`) and the
**projection** kernel (the constrained-retraining weight snap of
:class:`~repro.training.constrained.ConstraintProjector`).  Two are
built in:

``"reference"``
    Exact integer arithmetic: int64 accumulation, the bit-accurate
    software twin of the paper's Verilog processing engine.  This is the
    ground truth every other backend is measured against.
``"fast"``
    The BLAS lowering: activation codes and folded weights are carried as
    float64 integers and the accumulation runs through ``dgemm``, which is
    *bit-exact* whenever the layer's accumulator bound stays below
    ``2**53`` (see :mod:`repro.kernels.fast`).  Layers that fail the bound
    fall back to the reference kernels per layer, so the backend as a
    whole is always bit-identical to ``reference``.
``"auto"``
    The selection policy, not a third implementation: resolve to the
    fastest backend that preserves bit-exactness — today, ``fast``.

Backends are stateless singletons; per-layer precomputations (folded
float weight matrices, exactness decisions) are cached on the layer
objects themselves, so two networks sharing layers share the caches.

This module must stay import-light (no ``repro.nn`` / ``repro.asm``
imports): the layer stack in :mod:`repro.nn.quantized` imports it at
module level.
"""

from __future__ import annotations

__all__ = ["KernelBackend", "KernelBackendError", "BACKEND_NAMES",
           "register_backend", "get_backend"]

#: Names :func:`get_backend` accepts (``auto`` is the selection policy).
BACKEND_NAMES = ("reference", "fast", "auto")


class KernelBackendError(ValueError):
    """Unknown backend name or duplicate registration."""


class KernelBackend:
    """Interface of one compute-kernel implementation.

    The ``layer`` arguments are the quantised layer objects of
    :mod:`repro.nn.quantized` (``_QuantDense`` / ``_QuantConv`` /
    ``_QuantPool``); backends read their folded integer arrays, formats,
    activation and LUT but never mutate them (beyond attaching caches).
    Every kernel returns ``(codes, fmt)`` exactly like the layer
    ``forward`` contract: activation codes in the activation format, or
    ``(real_scores, None)`` for the output layer.
    """

    #: Registry name; also reported by :attr:`QuantizedNetwork.backend`.
    name = "base"

    def quantize_input(self, x, fmt):
        """Float inputs → activation codes in the backend's carrier dtype."""
        raise NotImplementedError

    def dense(self, layer, x, x_fmt):
        raise NotImplementedError

    def conv(self, layer, x, x_fmt):
        raise NotImplementedError

    def pool(self, layer, x, x_fmt):
        raise NotImplementedError

    def lowering(self, layer) -> str:
        """How this backend runs *layer*: ``"integer"`` or ``"blas"``."""
        return "integer"

    # -- simulation / projection kernel families -----------------------
    def simulate_layer(self, weights, inputs, units, bank_multiples):
        """Toggle-count one dense-layer evaluation on the CSHM cluster.

        *weights* is the ``(fan_in, neurons)`` effective-weight matrix,
        *inputs* a length-``fan_in`` int64 activation vector, *units*
        the MAC lane count and *bank_multiples* the pre-computer bank's
        alphabet entries ``> 1``.  Returns a
        :class:`~repro.kernels.simulate.SimCounts`; all backends count
        identical toggles (asserted in ``tests/test_sim_backends.py``).
        """
        raise NotImplementedError

    def project_weights(self, weights, bits, constrainer, cache):
        """Snap a float weight tensor onto its constrained grid.

        The quantise -> constrain-LUT -> dequantise round trip run after
        every optimiser step of a constrained retrain.  *cache* is a
        per-(layer, parameter) dict a backend may use for memoized
        formats and scratch buffers; *constrainer* is duck-typed
        (``constrain_array`` / ``table`` / ``layout.max_magnitude``).
        Returns the projected tensor (backends may write in place); all
        backends produce bit-identical values.
        """
        raise NotImplementedError

    # -- training kernel family ----------------------------------------
    def train_forward(self, network, x, training=True):
        """One float forward pass over a :class:`~repro.nn.network.
        Sequential` (training caches enabled when *training*).

        Dispatched by ``Sequential.forward`` per the network's train
        backend; all backends return bit-identical outputs and leave
        bit-identical backward state (see
        :mod:`repro.kernels.training`).
        """
        raise NotImplementedError

    def train_backward(self, network, grad):
        """Backpropagate *grad* through the last ``train_forward`` pass,
        filling every layer's ``grads`` and returning the input
        gradient."""
        raise NotImplementedError

    def sgd_update(self, network, velocity, rate, momentum):
        """Apply one momentum-SGD update from each layer's ``grads``.

        *velocity* is the optimiser's ``(layer index, key) -> array``
        state dict; backends may update the arrays in place but must
        produce bit-identical parameters and velocities.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<KernelBackend {self.name}>"


_REGISTRY: dict[str, KernelBackend] = {}


def register_backend(name: str, backend: KernelBackend,
                     replace: bool = False) -> None:
    """Register *backend* under *name* (``replace=True`` to override)."""
    if name in _REGISTRY and not replace:
        raise KernelBackendError(f"backend {name!r} is already registered")
    _REGISTRY[name] = backend


def get_backend(name: str | KernelBackend = "auto") -> KernelBackend:
    """Resolve a backend name (or pass an instance through).

    ``"auto"`` resolves to the fastest registered backend whose results
    are guaranteed bit-identical to ``"reference"`` — currently
    ``"fast"``, whose kernels fall back per layer wherever the float64
    exactness bound fails.
    """
    if isinstance(name, KernelBackend):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KernelBackendError(
            f"unknown kernel backend {name!r}; choose from "
            f"{sorted(_REGISTRY)}") from None
