"""Simulation kernels: toggle counting for the cycle-accurate engine.

:class:`~repro.hardware.simulator.CycleAccurateEngine` charges energy per
observed bit toggle on four net classes (input bus, pre-computer bank
outputs, product registers, accumulators).  The toggle counting itself is
a compute kernel like any other forward path, so it lives here in two
implementations behind the backend registry:

``reference``
    The original Python time loop — one broadcast input per iteration,
    kept as the bit-exact ground truth.  Its per-cycle scratch arrays are
    preallocated once per layer (an honest baseline should not pay
    allocator churn), but the O(fan_in x neuron-groups) Python iteration
    count is unchanged.

``fast``
    The vectorised lowering: the whole evaluation is laid out over the
    time axis at once — products as one ``(groups, fan_in, units)``
    integer product, bank values as an outer product with the alphabet,
    accumulators as a per-group cumulative sum — and all four toggle
    categories reduce to one batched XOR + popcount over consecutive
    rows of each stream.  Bit-identical by construction: the streams are
    exactly the per-cycle values the reference loop visits, in the same
    order, including the zero-padded tail lanes of a ragged final neuron
    group and the ``prev_*`` register state carried across group
    boundaries (asserted in ``tests/test_sim_backends.py``).

Kernels operate on plain data (weights already remapped to effective
values, int64 inputs, the lane count and the bank's alphabet multiples),
so this module stays free of ``repro.hardware`` / ``repro.asm`` imports —
the engine object owns validation and energy bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.binary import popcount_array

__all__ = ["ACC_BITS", "TOGGLE_KEYS", "SimCounts",
           "simulate_layer_reference", "simulate_layer_fast"]

#: Mask width so two's-complement values compare on a fixed word width
#: (the accumulator register width of the modelled engine).
ACC_BITS = 32

_MASK = (1 << ACC_BITS) - 1

#: Net classes whose toggles are counted, in reporting order.
TOGGLE_KEYS = ("input_bus", "bank_outputs", "products", "accumulators")


@dataclass(frozen=True)
class SimCounts:
    """Raw counts of one simulated layer evaluation (no energy model)."""

    cycles: int
    busy_lane_cycles: int
    toggles: dict[str, int]


def _toggles(previous: np.ndarray, current: np.ndarray) -> int:
    """Summed Hamming distance between register states on ``ACC_BITS``
    bits — elementwise for the reference loop's single-cycle buffers,
    over aligned rows for the fast kernel's whole-schedule streams.
    Both backends count through this one function, so the masking and
    popcount rule cannot silently diverge."""
    return int(popcount_array((previous ^ current) & _MASK).sum())


# ----------------------------------------------------------------------
# reference: the original per-cycle loop, scratch buffers hoisted
# ----------------------------------------------------------------------
def simulate_layer_reference(weights: np.ndarray, inputs: np.ndarray,
                             units: int,
                             bank_multiples: tuple[int, ...]) -> SimCounts:
    """Walk the schedule cycle by cycle, exactly like the hardware.

    *weights* is the ``(fan_in, neurons)`` effective-weight matrix,
    *inputs* the length-``fan_in`` int64 activation vector,
    *bank_multiples* the alphabet entries ``> 1`` the pre-computer bank
    recomputes each cycle (empty for conventional and multiplierless
    engines).
    """
    fan_in, neurons = weights.shape
    bank_base = np.asarray(bank_multiples, dtype=np.int64)

    cycles = 0
    busy_lane_cycles = 0
    toggles = dict.fromkeys(TOGGLE_KEYS, 0)
    # all per-cycle state lives in buffers allocated once per layer
    prev_input = np.zeros(1, dtype=np.int64)
    current_input = np.zeros(1, dtype=np.int64)
    prev_bank = np.zeros(bank_base.shape, dtype=np.int64)  # bank of x=0
    bank = np.zeros(bank_base.shape, dtype=np.int64)
    prev_products = np.zeros(units, dtype=np.int64)
    products = np.zeros(units, dtype=np.int64)
    accumulators = np.zeros(units, dtype=np.int64)
    previous_acc = np.zeros(units, dtype=np.int64)

    for group_start in range(0, neurons, units):
        group = weights[:, group_start:group_start + units]
        lanes = group.shape[1]
        accumulators[:] = 0          # group reset is not a charged toggle
        for t in range(fan_in):
            x = int(inputs[t])
            current_input[0] = x
            toggles["input_bus"] += _toggles(prev_input, current_input)
            prev_input[0] = x

            if bank.size:
                np.multiply(bank_base, x, out=bank)
                toggles["bank_outputs"] += _toggles(prev_bank, bank)
                prev_bank[:] = bank

            products[:] = 0
            np.multiply(group[t], x, out=products[:lanes])
            toggles["products"] += _toggles(prev_products, products)
            prev_products[:] = products

            previous_acc[:] = accumulators
            accumulators += products
            toggles["accumulators"] += _toggles(previous_acc, accumulators)
            cycles += 1
            busy_lane_cycles += lanes

    return SimCounts(cycles=cycles, busy_lane_cycles=busy_lane_cycles,
                     toggles=toggles)


# ----------------------------------------------------------------------
# fast: one batched pass over the whole time axis
# ----------------------------------------------------------------------
def simulate_layer_fast(weights: np.ndarray, inputs: np.ndarray,
                        units: int,
                        bank_multiples: tuple[int, ...]) -> SimCounts:
    """Vectorised toggle counting, bit-identical to the reference loop.

    Every net-class stream is materialised as an array whose rows are the
    per-cycle register values in schedule order (groups outer, time
    inner), with the register's initial state prepended; consecutive-row
    XOR + popcount then yields exactly the reference's toggle counts.
    """
    fan_in, neurons = weights.shape
    toggles = dict.fromkeys(TOGGLE_KEYS, 0)
    n_groups = -(-neurons // units) if neurons else 0
    cycles = n_groups * fan_in
    if cycles == 0:
        return SimCounts(cycles=0, busy_lane_cycles=0, toggles=toggles)
    tail_lanes = neurons - (n_groups - 1) * units
    busy_lane_cycles = fan_in * ((n_groups - 1) * units + tail_lanes)

    # products: (groups, fan_in, units) with the ragged tail zero-padded,
    # exactly the values the idle lanes of the last group register
    padded = np.zeros((fan_in, n_groups * units), dtype=np.int64)
    padded[:, :neurons] = weights
    grouped = padded.reshape(fan_in, n_groups, units).transpose(1, 0, 2)
    products = grouped * inputs[np.newaxis, :, np.newaxis]

    # input bus: the same activation stream is re-broadcast once per
    # group; the register starts at 0
    stream = np.concatenate([np.zeros(1, dtype=np.int64),
                             np.tile(inputs, n_groups)])
    toggles["input_bus"] = _toggles(stream[:-1], stream[1:])

    # bank outputs: outer(input stream, alphabet multiples); the leading
    # zero row is the bank's x=0 initial state
    if bank_multiples:
        bank = np.multiply.outer(
            stream, np.asarray(bank_multiples, dtype=np.int64))
        toggles["bank_outputs"] = _toggles(bank[:-1], bank[1:])

    # product registers carry across group boundaries (no reset), so the
    # stream is the flat schedule order with one initial zero row
    flat = products.reshape(cycles, units)
    toggles["products"] = _toggles(
        np.concatenate([np.zeros((1, units), dtype=np.int64), flat[:-1]]),
        flat)

    # accumulators reset to 0 at each group start (uncharged), then run a
    # cumulative sum of the group's products
    acc = np.cumsum(products, axis=1)
    prev_acc = np.concatenate(
        [np.zeros((n_groups, 1, units), dtype=np.int64), acc[:, :-1, :]],
        axis=1)
    toggles["accumulators"] = _toggles(prev_acc, acc)

    return SimCounts(cycles=cycles, busy_lane_cycles=busy_lane_cycles,
                     toggles=toggles)
