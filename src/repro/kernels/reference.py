"""Reference kernels: exact integer arithmetic, the engine's ground truth.

These are the forward kernels the quantised layer stack has always run —
int64 weights times int64 activation codes, exact integer accumulation,
float64 only for the bias/activation arithmetic between layers, and
round-half-away-from-zero requantisation.  Every other backend is defined
by being bit-identical to this one (asserted across widths, alphabet
sets, mixed plans and fallback policies in ``tests/test_kernels.py``).

Kernels accept activation codes as either ``int64`` or integer-valued
``float64`` (the carrier dtype of the fast backend): codes are coerced to
``int64`` on entry, which is exact because codes are bounded by the
activation word width.  That makes backends freely mixable layer-by-layer
within one forward pass.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.projection import project_reference
from repro.kernels.registry import KernelBackend, register_backend
from repro.kernels.simulate import simulate_layer_reference
from repro.kernels.training import (
    sgd_update_reference,
    train_backward_reference,
    train_forward_reference,
)

__all__ = ["apply_activation", "requantize", "dense_forward",
           "conv_forward", "pool_forward", "ReferenceBackend"]


def _as_int_codes(x: np.ndarray) -> np.ndarray:
    """Coerce activation codes to ``int64`` (exact: codes are integers)."""
    if x.dtype == np.int64:
        return x
    return x.astype(np.int64)


def apply_activation(real_values: np.ndarray, activation,
                     lut) -> np.ndarray:
    """Activation step shared by every requantiser.

    *lut* (a hardware :class:`~repro.nn.activations.SigmoidLUT`) takes
    precedence over the float activation; ``activation=None`` passes the
    values through.  One definition for all backends — the bit-identity
    guarantee rests on them never diverging here.
    """
    if lut is not None:
        return lut(real_values)
    if activation is not None:
        return activation.forward(real_values)
    return real_values


def requantize(real_values: np.ndarray, activation, act_fmt,
               lut) -> np.ndarray:
    """Apply the activation to real pre-activations and quantise."""
    return act_fmt.quantize_array(
        apply_activation(real_values, activation, lut))


def dense_forward(layer, x, x_fmt):
    """Dense layer: exact integer MACs, then bias/activation/requantise."""
    acc = _as_int_codes(x) @ layer.w_int
    scale = x_fmt.resolution * layer.w_fmt.resolution
    real = acc.astype(np.float64) * scale + layer.bias
    if layer.is_output:
        return real, None  # raw scores for argmax
    return requantize(real, layer.activation, layer.act_fmt,
                      layer.lut), layer.act_fmt


def conv_forward(layer, x, x_fmt):
    """Valid conv via im2col: exact integer GEMM per output patch."""
    # imported lazily: repro.kernels must not depend on repro.nn at
    # module level (repro.nn.quantized imports this package)
    from repro.nn.conv_utils import conv_output_size, im2col

    x = _as_int_codes(x)
    batch, _, height, width = x.shape
    out_h = conv_output_size(height, layer.kernel)
    out_w = conv_output_size(width, layer.kernel)
    cols = im2col(x, layer.kernel)
    kernels = layer.w_int.reshape(layer.out_channels, -1)
    acc = cols @ kernels.T                         # (b, p, oc), integer
    scale = x_fmt.resolution * layer.w_fmt.resolution
    real = acc.astype(np.float64) * scale + layer.bias
    real = real.transpose(0, 2, 1).reshape(
        batch, layer.out_channels, out_h, out_w)
    return requantize(real, layer.activation, layer.act_fmt,
                      layer.lut), layer.act_fmt


def pool_forward(layer, x, x_fmt):
    """Scaled average pool: integer window sums times the integer gain."""
    x = _as_int_codes(x)
    batch, channels, height, width = x.shape
    s = layer.size
    sums = x.reshape(batch, channels, height // s, s,
                     width // s, s).sum(axis=(3, 5))
    acc = sums * layer.gain_int[:, None, None]     # integer multiply
    scale = x_fmt.resolution * layer.gain_fmt.resolution / (s * s)
    real = acc.astype(np.float64) * scale + layer.bias[:, None, None]
    return requantize(real, layer.activation, layer.act_fmt,
                      layer.lut), layer.act_fmt


class ReferenceBackend(KernelBackend):
    """The exact integer backend (see module docstring)."""

    name = "reference"

    def quantize_input(self, x, fmt):
        return fmt.quantize_array(x)

    def dense(self, layer, x, x_fmt):
        return dense_forward(layer, x, x_fmt)

    def conv(self, layer, x, x_fmt):
        return conv_forward(layer, x, x_fmt)

    def pool(self, layer, x, x_fmt):
        return pool_forward(layer, x, x_fmt)

    def simulate_layer(self, weights, inputs, units, bank_multiples):
        return simulate_layer_reference(weights, inputs, units,
                                        bank_multiples)

    def project_weights(self, weights, bits, constrainer, cache):
        return project_reference(weights, bits, constrainer, cache)

    def train_forward(self, network, x, training=True):
        return train_forward_reference(network, x, training)

    def train_backward(self, network, grad):
        return train_backward_reference(network, grad)

    def sgd_update(self, network, velocity, rate, momentum):
        sgd_update_reference(network, velocity, rate, momentum)


REFERENCE = ReferenceBackend()
register_backend("reference", REFERENCE)
