"""Shared batched-evaluation helpers.

One home for the batched-accuracy loop that used to be copied across
``Sequential.accuracy``, ``QuantizedNetwork.accuracy`` and
``CompiledModel.accuracy``.  Batching exists purely to bound peak memory
(im2col buffers, activation matrices); predictions are per-sample
independent, so the result is bit-identical for every batch size — which
is also why ``eval_batch_size`` is deliberately *not* part of the
pipeline's stage cache keys.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

__all__ = ["DEFAULT_EVAL_BATCH", "batched_accuracy"]

#: Default evaluation batch size (overridable via
#: ``PipelineConfig.eval_batch_size`` and the ``batch_size`` arguments).
DEFAULT_EVAL_BATCH = 512


def batched_accuracy(predict: Callable[[np.ndarray], np.ndarray],
                     x: np.ndarray, labels: np.ndarray,
                     batch_size: int = DEFAULT_EVAL_BATCH) -> float:
    """Classification accuracy of *predict* over ``(x, integer labels)``.

    *predict* maps an input batch to integer class indices.  Inputs are
    fed in chunks of *batch_size* so large test sets do not blow up
    memory; the returned accuracy is independent of *batch_size*.
    """
    if len(x) != len(labels):
        raise ValueError("inputs and labels differ in length")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    correct = 0
    for start in range(0, len(x), batch_size):
        stop = start + batch_size
        correct += int(np.sum(predict(x[start:stop]) == labels[start:stop]))
    return correct / len(x) if len(x) else 0.0
