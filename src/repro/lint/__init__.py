"""repro.lint — domain-aware static analysis for the repro tree.

Most linters enforce style; this one enforces the *invariants the
reproduction's claims rest on*: seeded randomness everywhere results
flow (RPR001), cache keys that see every config field (RPR002), kernel
backends that stay complete and tested (RPR003), exact-integer
reference kernels free of float contamination (RPR004), journal records
that stay bit-identical across process boundaries (RPR005), and a
metric/span vocabulary that stays static and consistent (RPR006).
Each rule's rationale lives in ``docs/invariants.md``.

Usage::

    from repro.lint import lint_paths
    result = lint_paths(["src"], root="/path/to/repo")
    assert result.ok, [f.render() for f in result.errors]

or from the command line: ``repro lint src/ [--json]``.

Built on :mod:`ast` only — no third-party dependencies.  Suppressions
are per-line and per-rule (``# repro: noqa[RPR001]``); configuration
lives in ``[tool.repro.lint]`` in ``pyproject.toml``.
"""

from repro.lint.config import LintConfig, LintConfigError
from repro.lint.engine import (
    LintContext,
    LintResult,
    Linter,
    ModuleInfo,
    lint_paths,
)
from repro.lint.findings import SEVERITIES, Finding
from repro.lint.rules import (
    META_RULE_ID,
    Rule,
    all_rules,
    known_rule_ids,
    register_rule,
)

__all__ = [
    "SEVERITIES",
    "Finding",
    "LintConfig",
    "LintConfigError",
    "LintContext",
    "LintResult",
    "Linter",
    "META_RULE_ID",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "known_rule_ids",
    "lint_paths",
    "register_rule",
]
