"""Shared AST helpers for the lint rules.

The rules reason about *resolved dotted names*: ``np.random.default_rng``
is only meaningful once ``np`` is known to be ``numpy``.  An
:class:`ImportMap` collects every ``import`` / ``from ... import`` alias
in a module (at any nesting level — function-local imports count) and
:meth:`ImportMap.resolve` turns a ``Name`` / ``Attribute`` chain into the
fully-qualified dotted string the rules match against.  Unimported heads
resolve to themselves (``cfg.app`` -> ``"cfg.app"``), which is exactly
what the receiver-tracking rules want.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch

__all__ = ["dotted_parts", "ImportMap", "match_path", "iter_class_methods",
           "decorator_names"]


def dotted_parts(node: ast.AST) -> tuple[str, ...] | None:
    """``a.b.c`` as ``("a", "b", "c")``; ``None`` for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


class ImportMap:
    """Alias -> fully-qualified dotted name, from a module's imports."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.aliases[name] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:        # relative imports stay unresolved
                    continue
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    name = alias.asname or alias.name
                    self.aliases[name] = f"{module}.{alias.name}" \
                        if module else alias.name

    def resolve(self, node: ast.AST) -> str | None:
        """Fully-qualified dotted name of a ``Name``/``Attribute`` chain."""
        parts = dotted_parts(node)
        if parts is None:
            return None
        head = self.aliases.get(parts[0], parts[0])
        return ".".join((head,) + parts[1:])


def match_path(rel: str, patterns) -> bool:
    """Does posix path *rel* match any entry of *patterns*?

    An entry matches as an exact path, as a directory prefix (with or
    without a trailing ``/``) or as an ``fnmatch`` glob where ``*``
    crosses path separators (so ``*/kernels/reference.py`` matches at
    any depth).
    """
    for pattern in patterns:
        prefix = pattern if pattern.endswith("/") else pattern + "/"
        if rel == pattern or rel.startswith(prefix) \
                or fnmatch(rel, pattern):
            return True
    return False


def iter_class_methods(classdef: ast.ClassDef):
    """The directly-defined methods of a class body."""
    for node in classdef.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def decorator_names(node: ast.ClassDef | ast.FunctionDef) -> set[str]:
    """Trailing names of a definition's decorators (``dataclass`` for
    ``@dataclass``, ``@dataclasses.dataclass`` and
    ``@dataclass(frozen=True)`` alike)."""
    names: set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        parts = dotted_parts(target)
        if parts:
            names.add(parts[-1])
    return names
