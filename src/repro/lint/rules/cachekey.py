"""RPR002 — cache-key completeness for :class:`PipelineConfig`.

The stage cache (PR 3) keys every stage on a hash of *only the config
fields that stage's result depends on*, and PR 4 deliberately excluded
``backend`` / ``eval_batch_size`` (and PR 5 ``sim_backend``) because
backends are bit-identical.  That audit was done by hand; this rule
makes it mechanical, in three checks:

1. **Round-trip coverage** — every dataclass field of ``PipelineConfig``
   (or a subclass) must appear as a literal key in its ``to_dict()``.
   A subclass that adds a field without overriding ``to_dict`` is
   flagged on the field: the inherited ``to_dict``/``digest`` cannot
   see it, so two configs differing only in that field would share a
   digest and poison each other's cache entries.
2. **Digest drops are documented** — every ``data.pop("...")`` inside
   ``digest()`` must be listed in the ``digest_exclusions`` option.
3. **Stage-key coverage** (cross-file) — every field of the canonical
   ``PipelineConfig`` must either be read by
   ``Pipeline._stage_deps`` (directly, or through one of the
   ``aliases`` accessor methods) or be named in the documented
   ``stage_key_exclusions`` set.  A new config field that nobody
   routes into a stage key (or explicitly excludes) is exactly the
   silent cache poisoning this rule exists to stop.  Stale exclusion
   entries that no longer name a field are warned about.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import (
    decorator_names,
    dotted_parts,
    iter_class_methods,
)
from repro.lint.rules import Rule, register_rule

__all__ = ["CacheKeyRule"]


def _is_config_dataclass(node: ast.ClassDef, class_name: str) -> bool:
    if "dataclass" not in decorator_names(node):
        return False
    if node.name == class_name:
        return True
    for base in node.bases:
        parts = dotted_parts(base)
        if parts and parts[-1] == class_name:
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> list[tuple[str, ast.AST]]:
    """``(name, node)`` of the class body's annotated fields."""
    fields = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name) \
                and not stmt.target.id.startswith("_"):
            annotation = ast.unparse(stmt.annotation)
            if "ClassVar" in annotation:
                continue
            fields.append((stmt.target.id, stmt))
    return fields


def _literal_dict_keys(fn: ast.FunctionDef) -> set[str]:
    """String keys built by *fn*: dict literals plus ``x["k"] = ...``."""
    keys: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) \
                        and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(node, ast.Subscript) \
                and isinstance(node.ctx, ast.Store) \
                and isinstance(node.slice, ast.Constant) \
                and isinstance(node.slice.value, str):
            keys.add(node.slice.value)
    return keys


def _popped_keys(fn: ast.FunctionDef) -> list[tuple[str, ast.AST]]:
    popped = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "pop" and node.args \
                and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            popped.append((node.args[0].value, node))
    return popped


class CacheKeyRule(Rule):
    rule_id = "RPR002"
    title = "PipelineConfig field invisible to digest / stage cache key"
    severity = "error"
    default_options = {
        "config_class": "PipelineConfig",
        "stage_deps_function": "_stage_deps",
        # digest() may drop these from the config hash (location, not
        # content — see PipelineConfig.digest)
        "digest_exclusions": ["cache_dir"],
        # fields deliberately absent from every stage-key slice:
        # backends are bit-identical (PR 4/5), eval_batch_size is a
        # memory knob, cache_dir is location, and the stage list enters
        # each key structurally (stage name + executed plan)
        "stage_key_exclusions": [
            "backend", "sim_backend", "train_backend", "eval_batch_size",
            "cache_dir", "stages",
        ],
        # accessor methods _stage_deps uses instead of raw fields
        "aliases": {
            "word_bits": "bits",
            "tier": "budget",
            "resolved_export_design": "export_design",
        },
    }

    # ------------------------------------------------------------------
    def check_module(self, module, ctx):
        options = ctx.options(self)
        class_name = options["config_class"]
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) \
                    or not _is_config_dataclass(node, class_name):
                continue
            is_canonical = node.name == class_name
            if is_canonical:
                ctx.cache.setdefault("rpr002.canonical", []).append(
                    (module, node))
            fields = _dataclass_fields(node)
            to_dict = next((fn for fn in iter_class_methods(node)
                            if fn.name == "to_dict"), None)
            if to_dict is not None:
                keys = _literal_dict_keys(to_dict)
                for name, field_node in fields:
                    if name not in keys:
                        yield self.emit(
                            ctx, module.rel, field_node,
                            f"field {name!r} of {node.name} is missing "
                            f"from to_dict(): the config digest and "
                            f"every stage cache key will silently "
                            f"ignore it")
            elif not is_canonical:
                for name, field_node in fields:
                    yield self.emit(
                        ctx, module.rel, field_node,
                        f"field {name!r} added by {class_name} subclass "
                        f"{node.name} is invisible to the inherited "
                        f"to_dict()/digest(): override to_dict() to "
                        f"include it, or the stage cache will treat "
                        f"differing configs as identical")
            digest = next((fn for fn in iter_class_methods(node)
                           if fn.name == "digest"), None)
            if digest is not None:
                allowed = set(options["digest_exclusions"])
                for key, pop_node in _popped_keys(digest):
                    if key not in allowed:
                        yield self.emit(
                            ctx, module.rel, pop_node,
                            f"digest() drops {key!r} from the config "
                            f"hash without listing it in the RPR002 "
                            f"digest_exclusions allowlist")

    # ------------------------------------------------------------------
    def finish(self, ctx):
        options = ctx.options(self)
        canonical = ctx.cache.get("rpr002.canonical", [])
        if len(canonical) != 1:
            return  # no (or ambiguous) canonical config in this run
        config_module, config_class = canonical[0]
        deps_site = self._find_stage_deps(
            ctx, options["stage_deps_function"])
        if deps_site is None:
            return
        deps_module, deps_fn = deps_site
        accessed = self._accessed_fields(deps_fn, options["aliases"])
        exclusions = set(options["stage_key_exclusions"])
        field_names = [name for name, _ in
                       _dataclass_fields(config_class)]
        for name in field_names:
            if name not in accessed and name not in exclusions:
                yield self.emit(
                    ctx, deps_module.rel, deps_fn,
                    f"PipelineConfig field {name!r} is neither hashed "
                    f"by {deps_fn.name}() nor named in the documented "
                    f"stage_key_exclusions set — a config change in it "
                    f"would silently reuse stale cache entries")
        for name in sorted(exclusions):
            if name not in field_names:
                yield self.emit(
                    ctx, deps_module.rel, deps_fn,
                    f"stage_key_exclusions entry {name!r} does not "
                    f"name a PipelineConfig field (stale allowlist?)",
                    severity="warning")

    # ------------------------------------------------------------------
    @staticmethod
    def _find_stage_deps(ctx, fn_name: str):
        for module in ctx.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.FunctionDef) \
                        and node.name == fn_name:
                    return module, node
        return None

    @staticmethod
    def _accessed_fields(fn: ast.FunctionDef,
                         aliases: dict[str, str]) -> set[str]:
        """Config fields *fn* reads, directly or via alias accessors."""
        receivers = {"cfg"}
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and dotted_parts(node.value) == ("self", "config"):
                receivers.add(node.targets[0].id)
        accessed: set[str] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Attribute):
                continue
            base = dotted_parts(node.value)
            if base is None:
                continue
            if base == ("self", "config") \
                    or (len(base) == 1 and base[0] in receivers):
                accessed.add(aliases.get(node.attr, node.attr))
        return accessed


register_rule(CacheKeyRule())
