"""RPR005 — journal purity across the explore multiprocessing boundary.

PR 3's exploration journals are *order-independent and bit-identical*
between serial and parallel runs: records are keyed by config digest and
contain nothing timing-, process- or host-dependent.  PR 6 added worker
telemetry without breaking that by the out-of-band wrapper pattern —
``{"record": <pure>, "elapsed_s": <telemetry>}`` — where the impure
value rides *next to* the record and is stripped before journaling.

This rule pins the invariant down for the files that build journal
records or cross the worker boundary: wall-clock stamps, PIDs,
hostnames, UUIDs and datetime "now" calls are findings there.  Interval
clocks (``time.perf_counter`` / ``time.monotonic``) stay legal — they
are how the out-of-band telemetry is measured — and the atomic-write
helper's ``os.getpid()`` temp-file suffix lives in
``repro.utils.serialization``, outside the covered set, because it
never enters record *content*.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import match_path
from repro.lint.rules import Rule, register_rule

__all__ = ["JournalPurityRule"]

_IMPURE = {
    "time.time", "time.time_ns",
    "os.getpid", "os.getppid", "os.uname",
    "socket.gethostname", "socket.getfqdn",
    "platform.node", "platform.uname",
    "uuid.uuid1", "uuid.uuid4",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
}


class JournalPurityRule(Rule):
    rule_id = "RPR005"
    title = "process/host/wall-clock state in the journal path"
    severity = "error"
    default_options = {
        "files": ["*/explore/journal.py", "*/explore/executor.py"],
    }

    def check_module(self, module, ctx):
        options = ctx.options(self)
        if not match_path(module.rel, options["files"]):
            return
        resolve = module.imports.resolve
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Attribute, ast.Name)) \
                    and isinstance(getattr(node, "ctx", None), ast.Load):
                if isinstance(node, ast.Name) \
                        and node.id not in module.imports.aliases:
                    continue
                name = resolve(node)
                if name in _IMPURE:
                    yield self.emit(
                        ctx, module.rel, node,
                        f"{name} in a journal-path module: records "
                        f"crossing the worker boundary must stay "
                        f"bit-identical between serial and parallel "
                        f"runs — keep telemetry out-of-band "
                        f"(the {{record, elapsed_s}} wrapper pattern)")


register_rule(JournalPurityRule())
