"""RPR006 — metric and span naming hygiene.

``repro.obs`` (PR 6) exports every metric to Prometheus and keys metric
instances by ``(name, labels)``; ``docs/observability.md`` documents the
vocabulary.  That only stays a vocabulary while call sites keep names
static and label schemas consistent:

* metric names at ``counter()`` / ``gauge()`` / ``histogram()`` call
  sites must be **string literals** matching
  ``[A-Za-z_][A-Za-z0-9_.:]*`` — a computed name is unbounded
  cardinality and may collide after Prometheus sanitisation;
* label keys must be valid Prometheus label names and **consistent per
  metric name across the whole tree** (a ``kernels.calls{backend,...}``
  here and a ``kernels.calls{device,...}`` there would split the series);
* span names must be literals, or f-strings with a literal dotted
  prefix (``f"stage.{stage}"`` keeps the namespace enumerable even
  though the leaf is dynamic).

Forwarding shims whose *callers* hold the literal (``repro.obs.span``
itself) carry a ``# repro: noqa[RPR006]``.
"""

from __future__ import annotations

import ast
import re

from repro.lint.astutil import match_path
from repro.lint.rules import Rule, register_rule

__all__ = ["MetricHygieneRule"]

_METRIC_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.:]*$")
_LABEL_KEY_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class MetricHygieneRule(Rule):
    rule_id = "RPR006"
    title = "non-literal or inconsistent metric/span naming"
    severity = "error"
    default_options = {
        "metric_methods": ["counter", "gauge", "histogram"],
        "span_methods": ["span"],
        # constructor kwargs that are configuration, not labels
        "non_label_kwargs": ["window"],
        "skip": [],
    }

    def check_module(self, module, ctx):
        options = ctx.options(self)
        if match_path(module.rel, options["skip"]):
            return
        metric_methods = set(options["metric_methods"])
        span_methods = set(options["span_methods"])
        non_label = set(options["non_label_kwargs"])
        sites = ctx.cache.setdefault("rpr006.sites", {})
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            if method in metric_methods:
                yield from self._check_metric(ctx, module, node, method,
                                              non_label, sites)
            elif method in span_methods:
                yield from self._check_span(ctx, module, node)

    # ------------------------------------------------------------------
    def _check_metric(self, ctx, module, node, method, non_label, sites):
        name_arg = node.args[0] if node.args else None
        if name_arg is None:
            return
        if not (isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)):
            yield self.emit(
                ctx, module.rel, node,
                f"metric name passed to .{method}() must be a string "
                f"literal — computed names are unbounded cardinality "
                f"and undiscoverable from docs/observability.md")
            return
        name = name_arg.value
        if not _METRIC_NAME_RE.match(name):
            yield self.emit(
                ctx, module.rel, node,
                f"metric name {name!r} is not cleanly "
                f"Prometheus-sanitizable (want "
                f"[A-Za-z_][A-Za-z0-9_.:]*)")
            return
        dynamic = False
        keys = []
        for kw in node.keywords:
            if kw.arg is None:          # **labels: schema not static
                dynamic = True
            elif kw.arg not in non_label:
                keys.append(kw.arg)
                if not _LABEL_KEY_RE.match(kw.arg):
                    yield self.emit(
                        ctx, module.rel, kw.value,
                        f"label key {kw.arg!r} on metric {name!r} is "
                        f"not a valid Prometheus label name")
        if not dynamic:
            sites.setdefault(name, []).append(
                (module.rel, node.lineno, frozenset(keys)))

    def _check_span(self, ctx, module, node):
        name_arg = node.args[0] if node.args else None
        if name_arg is None:
            return
        if isinstance(name_arg, ast.Constant) \
                and isinstance(name_arg.value, str):
            if not _METRIC_NAME_RE.match(name_arg.value):
                yield self.emit(
                    ctx, module.rel, node,
                    f"span name {name_arg.value!r} is not a dotted "
                    f"identifier")
            return
        if isinstance(name_arg, ast.JoinedStr):
            first = name_arg.values[0] if name_arg.values else None
            if isinstance(first, ast.Constant) \
                    and isinstance(first.value, str) \
                    and first.value.endswith(".") \
                    and _METRIC_NAME_RE.match(first.value[:-1]):
                return  # literal dotted prefix: namespace stays bounded
            yield self.emit(
                ctx, module.rel, node,
                "span name f-string must start with a literal dotted "
                "prefix (e.g. f\"stage.{name}\") so the span namespace "
                "stays enumerable")
            return
        yield self.emit(
            ctx, module.rel, node,
            "span name must be a string literal (or an f-string with "
            "a literal dotted prefix)")

    # ------------------------------------------------------------------
    def finish(self, ctx):
        sites = ctx.cache.get("rpr006.sites", {})
        for name in sorted(sites):
            entries = sorted(sites[name],
                             key=lambda e: (e[0], e[1]))
            baseline_path, baseline_line, baseline_keys = entries[0]
            for path, line, keys in entries[1:]:
                if keys != baseline_keys:
                    yield self.emit(
                        ctx, path, line,
                        f"metric {name!r} is recorded with label keys "
                        f"{{{', '.join(sorted(keys)) or ''}}} here but "
                        f"{{{', '.join(sorted(baseline_keys)) or ''}}} "
                        f"at {baseline_path}:{baseline_line} — one "
                        f"metric name, one label schema")


register_rule(MetricHygieneRule())
