"""RPR001 — determinism: no hidden randomness or wall-clock values.

The paper's methodology (and every bit-identity guarantee stacked on it
since PR 1) only holds while *all* stochasticity is seeded and explicit:
an unseeded generator or a wall-clock-derived value silently turns a
characterized error source into an uncharacterized one, exactly the
failure mode an unmodelled approximate multiplier would be.

Flagged:

* ``np.random.default_rng()`` / ``np.random.RandomState()`` /
  ``random.Random()`` constructed **without a seed**;
* any call into the stdlib ``random`` module's global-state functions
  (``random.random()``, ``random.seed()``, ...);
* numpy's legacy global-state API (``np.random.seed``, ``np.random.rand``,
  ``np.random.shuffle``, ...);
* ``time.time`` / ``time.time_ns`` — called *or* referenced (a
  ``default_factory=time.time`` is just as wall-clock-derived).

``time.perf_counter`` / ``time.monotonic`` / ``time.process_time`` are
interval clocks and stay legal — they measure, they do not stamp.

The documented exceptions live in ``[tool.repro.lint.RPR001] allow`` in
``pyproject.toml`` (trace metadata and serving registration stamps are
telemetry, not results); one-off exceptions use
``# repro: noqa[RPR001]``.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import match_path
from repro.lint.rules import Rule, register_rule

__all__ = ["DeterminismRule"]

#: Constructors that are fine seeded but flagged bare.
_UNSEEDED = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
}

#: numpy's legacy global-state functions (module-level RNG).
_NUMPY_LEGACY = {
    "numpy.random." + name for name in (
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "shuffle", "permutation", "choice", "normal",
        "uniform", "standard_normal", "bytes",
    )
}

#: members of the stdlib ``random`` module that do NOT touch the hidden
#: global generator when used as constructors
_RANDOM_MODULE_OK = {"random.Random", "random.SystemRandom"}

#: wall-clock sources; referencing one is as bad as calling it
_WALL_CLOCK = {"time.time", "time.time_ns"}


class DeterminismRule(Rule):
    rule_id = "RPR001"
    title = "unseeded randomness or wall-clock-derived value"
    severity = "error"
    default_options = {
        # documented exceptions (see docs/invariants.md): trace metadata
        # and serving registration stamps are telemetry, not results
        "allow": [
            "src/repro/obs/tracing.py",
            "src/repro/serving/registry.py",
            "benchmarks/",
        ],
    }

    def check_module(self, module, ctx):
        options = ctx.options(self)
        if match_path(module.rel, options["allow"]):
            return
        resolve = module.imports.resolve
        call_funcs = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                call_funcs.add(id(node.func))
                name = resolve(node.func)
                if name is None:
                    continue
                if name in _UNSEEDED and not node.args \
                        and not node.keywords:
                    yield self.emit(
                        ctx, module.rel, node,
                        f"unseeded {name}() — results become "
                        f"run-dependent; pass an explicit seed "
                        f"(convention: default_rng(0))")
                elif name in _NUMPY_LEGACY:
                    yield self.emit(
                        ctx, module.rel, node,
                        f"{name}() uses numpy's hidden global RNG "
                        f"state; thread a seeded np.random.Generator "
                        f"through instead")
                elif name.startswith("random.") \
                        and name not in _RANDOM_MODULE_OK \
                        and name.count(".") == 1:
                    yield self.emit(
                        ctx, module.rel, node,
                        f"{name}() uses the stdlib random module's "
                        f"hidden global state; use a seeded "
                        f"np.random.Generator")
        # wall-clock references (calls were collected above, so a call's
        # func attribute reports once, here)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Attribute, ast.Name)) \
                    and isinstance(getattr(node, "ctx", None), ast.Load):
                if isinstance(node, ast.Name) \
                        and node.id not in module.imports.aliases:
                    continue
                name = resolve(node)
                if name in _WALL_CLOCK:
                    verb = "call" if id(node) in call_funcs \
                        else "reference"
                    yield self.emit(
                        ctx, module.rel, node,
                        f"{verb} to {name} derives a value from the "
                        f"wall clock; results and cached artifacts "
                        f"must not depend on when they were computed")


register_rule(DeterminismRule())
