"""RPR004 — float contamination of the exact-integer reference kernels.

``repro/kernels/reference.py`` is the ground truth every other backend
is measured against (PR 4): int64 codes, exact integer accumulation,
and float64 *only* at the documented real-domain transition (the
``real = acc.astype(np.float64) * scale + bias`` step before
requantisation).  A stray float division or a ``float32`` dtype in the
integer path would not crash — it would silently shift low-order bits
and every "bit-identical" assertion downstream would be comparing two
wrong numbers that happen to agree.

Inside the files this rule covers, the following are findings unless
they occur in an assignment to one of the allowlisted *carrier* names
(``real`` / ``scale`` by default — the explicit, reviewed
integer-to-real transition points):

* true division (``/`` — floor division ``//`` stays legal),
* numpy float dtype references (``np.float64``, ``np.float32``, ...),
* ``float(...)`` construction.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import match_path
from repro.lint.rules import Rule, register_rule

__all__ = ["FloatContaminationRule"]

_FLOAT_DTYPES = {
    "numpy." + name for name in (
        "float16", "float32", "float64", "float128", "half", "single",
        "double", "longdouble", "float_",
    )
}


class FloatContaminationRule(Rule):
    rule_id = "RPR004"
    title = "float arithmetic in an exact-integer kernel"
    severity = "error"
    default_options = {
        "files": ["*/kernels/reference.py"],
        # reviewed integer->real transition variables
        "carriers": ["real", "scale"],
    }

    def check_module(self, module, ctx):
        options = ctx.options(self)
        if not match_path(module.rel, options["files"]):
            return
        carriers = set(options["carriers"])
        resolve = module.imports.resolve
        findings = []

        def carrier_assign(node: ast.AST) -> bool:
            if isinstance(node, ast.Assign):
                return all(isinstance(t, ast.Name) and t.id in carriers
                           for t in node.targets)
            if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                return isinstance(node.target, ast.Name) \
                    and node.target.id in carriers
            return False

        def scan(node: ast.AST) -> None:
            if carrier_assign(node):
                return  # reviewed transition point; subtree is allowed
            if isinstance(node, ast.BinOp) \
                    and isinstance(node.op, ast.Div):
                findings.append(self.emit(
                    ctx, module.rel, node,
                    "true division in an exact-integer kernel — use "
                    "integer arithmetic (// ) or route the value "
                    "through an allowlisted carrier assignment"))
            elif isinstance(node, ast.Attribute):
                name = resolve(node)
                if name in _FLOAT_DTYPES:
                    findings.append(self.emit(
                        ctx, module.rel, node,
                        f"{name} in an exact-integer kernel outside a "
                        f"carrier assignment — float dtypes may only "
                        f"enter at the documented real-domain "
                        f"transition"))
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "float":
                findings.append(self.emit(
                    ctx, module.rel, node,
                    "float() construction in an exact-integer kernel "
                    "outside a carrier assignment"))
            for child in ast.iter_child_nodes(node):
                scan(child)

        scan(module.tree)
        return findings


register_rule(FloatContaminationRule())
