"""The lint rule registry.

Every rule is a stateless singleton registered under its id.  A rule
implements one or both hooks:

``check_module(module, ctx)``
    Per-file pass; yields :class:`~repro.lint.findings.Finding`.
``finish(ctx)``
    Cross-file pass after every module was visited — for invariants
    that live between files (backend parity, stage-key coverage,
    metric-label consistency).

Rule ids follow ``RPR<NNN>``.  ``RPR000`` is reserved for the linter
itself (parse failures, malformed ``noqa`` suppressions) and cannot be
suppressed.
"""

from __future__ import annotations

from repro.lint.findings import SEVERITIES, Finding

__all__ = ["Rule", "META_RULE_ID", "register_rule", "all_rules",
           "known_rule_ids"]

#: The linter's own findings (parse errors, bad suppressions).
META_RULE_ID = "RPR000"


class Rule:
    """Base class: identity, severity, options, finding helper."""

    rule_id = "RPR000"
    title = ""
    #: default severity; ``[tool.repro.lint.<id>] severity`` overrides
    severity = "error"
    #: per-rule option defaults; the pyproject table is merged over them
    default_options: dict = {}

    def check_module(self, module, ctx):
        """Per-file hook; default: nothing."""
        return ()

    def finish(self, ctx):
        """Cross-file hook after all modules; default: nothing."""
        return ()

    # ------------------------------------------------------------------
    def emit(self, ctx, rel: str, node, message: str,
             severity: str | None = None) -> Finding:
        """Build a finding at *node* (an AST node or a line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(path=rel, line=line, col=col, rule=self.rule_id,
                       severity=severity or ctx.severity(self.rule_id),
                       message=message)


_REGISTRY: dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Register a rule instance (import-time, one per id)."""
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"rule {rule.rule_id} is already registered")
    if rule.severity not in SEVERITIES:
        raise ValueError(f"rule {rule.rule_id} has bad severity "
                         f"{rule.severity!r}")
    _REGISTRY[rule.rule_id] = rule
    return rule


def all_rules() -> dict[str, Rule]:
    """Registered rules by id (sorted), importing the built-ins once."""
    _load_builtin_rules()
    return dict(sorted(_REGISTRY.items()))


def known_rule_ids() -> set[str]:
    """Every valid rule id, including the reserved meta id."""
    _load_builtin_rules()
    return set(_REGISTRY) | {META_RULE_ID}


def _load_builtin_rules() -> None:
    # import side effect registers each rule exactly once
    from repro.lint.rules import (  # noqa: F401
        cachekey,
        determinism,
        floatcontam,
        journalpurity,
        metric_hygiene,
        parity,
    )
