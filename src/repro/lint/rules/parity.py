"""RPR003 — backend parity on :class:`KernelBackend`.

Since PR 4 every compute kernel lives behind the backend registry with
the contract "all backends are bit-identical to ``reference``".  That
contract has two mechanical prerequisites this rule enforces:

1. every abstract method of ``KernelBackend`` (a method whose body is
   ``raise NotImplementedError``) is implemented by **both** the
   ``reference`` and ``fast`` backend classes — a kernel added to the
   interface but only one backend would make ``auto`` silently
   incomplete;
2. every abstract method name is referenced by at least one test under
   ``tests/`` — the identity suites (``test_kernels.py``,
   ``test_sim_backends.py``) are what *makes* the bit-identity claim
   true, so an untested kernel family has no claim at all.

The test scan reads ``tests/`` (the ``test_paths`` option) even when it
is not part of the linted path set: the rule is about ``src`` code
whose proof obligations live elsewhere.
"""

from __future__ import annotations

import ast
import os

from repro.lint.astutil import dotted_parts, iter_class_methods, match_path
from repro.lint.rules import Rule, register_rule

__all__ = ["BackendParityRule"]


def _is_abstract(fn: ast.FunctionDef) -> bool:
    """Body is (docstring +) ``raise NotImplementedError``."""
    body = list(fn.body)
    if body and isinstance(body[0], ast.Expr) \
            and isinstance(body[0].value, ast.Constant) \
            and isinstance(body[0].value.value, str):
        body = body[1:]
    if len(body) != 1 or not isinstance(body[0], ast.Raise):
        return False
    exc = body[0].exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    return isinstance(exc, ast.Name) and exc.id == "NotImplementedError"


def _backend_name(node: ast.ClassDef) -> str | None:
    """The class's ``name = "..."`` registry attribute."""
    for stmt in node.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and stmt.targets[0].id == "name" \
                and isinstance(stmt.value, ast.Constant) \
                and isinstance(stmt.value.value, str):
            return stmt.value.value
    return None


class BackendParityRule(Rule):
    rule_id = "RPR003"
    title = "KernelBackend method unimplemented or untested"
    severity = "error"
    default_options = {
        "base_class": "KernelBackend",
        "backends": ["reference", "fast"],
        "test_paths": ["tests"],
    }

    def check_module(self, module, ctx):
        base_class = ctx.options(self)["base_class"]
        store = ctx.cache.setdefault(
            "rpr003", {"bases": [], "impls": []})
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name == base_class:
                abstract = [fn for fn in iter_class_methods(node)
                            if _is_abstract(fn)]
                store["bases"].append((module, node, abstract))
            else:
                for base in node.bases:
                    parts = dotted_parts(base)
                    if parts and parts[-1] == base_class:
                        store["impls"].append((module, node))
                        break
        return ()

    # ------------------------------------------------------------------
    def finish(self, ctx):
        options = ctx.options(self)
        store = ctx.cache.get("rpr003", {"bases": [], "impls": []})
        if len(store["bases"]) != 1:
            return  # no (or ambiguous) backend interface in this run
        base_module, base_node, abstract = store["bases"][0]
        if not abstract:
            return
        by_name: dict[str, tuple] = {}
        for module, node in store["impls"]:
            name = _backend_name(node)
            if name is not None:
                methods = {fn.name for fn in iter_class_methods(node)}
                by_name[name] = (module, node, methods)
        for backend in options["backends"]:
            if backend not in by_name:
                yield self.emit(
                    ctx, base_module.rel, base_node,
                    f"no {base_node.name} subclass with "
                    f"name = {backend!r} found — the {backend} backend "
                    f"is unimplemented")
                continue
            module, node, methods = by_name[backend]
            for fn in abstract:
                if fn.name not in methods:
                    yield self.emit(
                        ctx, module.rel, node,
                        f"backend {backend!r} ({node.name}) does not "
                        f"implement abstract kernel method "
                        f"{fn.name!r}; 'auto' dispatch would raise "
                        f"NotImplementedError at runtime")
        yield from self._check_test_references(
            ctx, base_module, abstract, options["test_paths"])

    # ------------------------------------------------------------------
    def _check_test_references(self, ctx, base_module, abstract,
                               test_paths):
        identifiers = self._test_identifiers(ctx, test_paths)
        if identifiers is None:
            return  # no test tree next to this run; nothing to prove
        for fn in abstract:
            if fn.name not in identifiers:
                yield self.emit(
                    ctx, base_module.rel, fn,
                    f"abstract kernel method {fn.name!r} is referenced "
                    f"by no test under {', '.join(test_paths)}/ — the "
                    f"backend bit-identity contract for it is "
                    f"unverified")

    def _test_identifiers(self, ctx, test_paths) -> set[str] | None:
        cache_key = ("rpr003.test_idents", tuple(test_paths))
        if cache_key in ctx.cache:
            return ctx.cache[cache_key]
        identifiers: set[str] | None = None
        for entry in test_paths:
            root = entry if os.path.isabs(entry) \
                else os.path.join(ctx.root, entry)
            if not os.path.isdir(root):
                continue
            identifiers = set() if identifiers is None else identifiers
            for dirpath, dirnames, filenames in os.walk(root):
                dirnames.sort()
                for filename in sorted(filenames):
                    if not filename.endswith(".py"):
                        continue
                    path = os.path.join(dirpath, filename)
                    rel = os.path.relpath(path, ctx.root).replace(
                        os.sep, "/")
                    if match_path(rel, ctx.config.exclude):
                        continue
                    identifiers |= self._identifiers_of(path)
        ctx.cache[cache_key] = identifiers
        return identifiers

    @staticmethod
    def _identifiers_of(path: str) -> set[str]:
        try:
            with open(path, encoding="utf-8") as handle:
                tree = ast.parse(handle.read())
        except (OSError, SyntaxError):
            return set()
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                names.add(node.name)
        return names


register_rule(BackendParityRule())
