"""The lint engine: file collection, parsing, suppression, rule runs.

A :class:`Linter` run is two passes over the collected modules — every
enabled rule's ``check_module`` per file, then every rule's ``finish``
across files — followed by ``# repro: noqa[RULE-ID]`` suppression.
Suppressions are strict: a bare ``noqa`` or an unknown rule id is itself
a finding (:data:`~repro.lint.rules.META_RULE_ID`, unsuppressible),
because a suppression nobody can attribute to a rule is a suppression
nobody can audit.

Explicitly named files are always linted; configured ``exclude``
patterns apply only while walking directories.  That split is what lets
the test fixtures under ``tests/fixtures/lint/`` hold deliberate
violations without tripping ``repro lint .``: the directory walk skips
them, the fixture tests pass them by name.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.astutil import ImportMap, match_path
from repro.lint.config import LintConfig, LintConfigError
from repro.lint.findings import Finding
from repro.lint.rules import META_RULE_ID, all_rules, known_rule_ids

__all__ = ["ModuleInfo", "LintContext", "LintResult", "Linter",
           "lint_paths"]

#: the suppression marker, with or without a bracketed rule-id list
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([^\]]*)\])?")


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source file, as the rules see it."""

    path: str          # absolute path on disk
    rel: str           # posix path relative to the lint root
    source: str
    tree: ast.Module
    imports: ImportMap


class LintContext:
    """Shared state for one :meth:`Linter.run`."""

    def __init__(self, config: LintConfig, root: str,
                 modules: list[ModuleInfo]) -> None:
        self.config = config
        self.root = root
        self.modules = modules
        #: scratch space for cross-file/cross-rule accumulation
        self.cache: dict = {}
        self._rules = all_rules()

    def options(self, rule) -> dict:
        """*rule*'s ``default_options`` merged with the config table."""
        return self.config.options(rule.rule_id, rule.default_options)

    def severity(self, rule_id: str) -> str:
        """Effective severity: config override, else rule default."""
        override = self.config.severity_override(rule_id)
        if override is not None:
            return override
        rule = self._rules.get(rule_id)
        return rule.severity if rule is not None else "error"


@dataclass
class LintResult:
    """Everything one run produced."""

    findings: list[Finding] = field(default_factory=list)
    checked_files: list[str] = field(default_factory=list)
    suppressed: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when nothing error-severity survived suppression."""
        return not self.errors


class Linter:
    """Collect files under a root, run the enabled rules over them."""

    def __init__(self, config: LintConfig | None = None,
                 root: str | None = None) -> None:
        self.config = config if config is not None else LintConfig()
        self.root = os.path.abspath(root or os.getcwd())
        rules = all_rules()
        if self.config.select is not None:
            unknown = sorted(set(self.config.select) - set(rules))
            if unknown:
                raise LintConfigError(
                    f"unknown rule id(s) in select: {', '.join(unknown)}"
                    f" (known: {', '.join(sorted(rules))})")
        self.rules = [rule for rule_id, rule in rules.items()
                      if self.config.selected(rule_id)]

    # ------------------------------------------------------------------
    def run(self, paths) -> LintResult:
        result = LintResult()
        modules: list[ModuleInfo] = []
        suppressions: dict[str, dict[int, set[str]]] = {}
        for path in self.collect_files(paths):
            rel = self._rel(path)
            result.checked_files.append(rel)
            try:
                with open(path, encoding="utf-8") as handle:
                    source = handle.read()
                tree = ast.parse(source, filename=path)
            except (OSError, SyntaxError, ValueError) as error:
                line = getattr(error, "lineno", None) or 1
                result.findings.append(Finding(
                    path=rel, line=line, col=0, rule=META_RULE_ID,
                    severity="error",
                    message=f"cannot parse: {error}"))
                continue
            modules.append(ModuleInfo(path=path, rel=rel, source=source,
                                      tree=tree, imports=ImportMap(tree)))
            suppressions[rel] = self._scan_noqa(
                rel, source, result.findings)

        ctx = LintContext(self.config, self.root, modules)
        for module in modules:
            for rule in self.rules:
                result.findings.extend(
                    rule.check_module(module, ctx) or ())
        for rule in self.rules:
            result.findings.extend(rule.finish(ctx) or ())

        kept: list[Finding] = []
        for finding in result.findings:
            lines = suppressions.get(finding.path, {})
            if finding.rule != META_RULE_ID \
                    and finding.rule in lines.get(finding.line, ()):
                result.suppressed += 1
            else:
                kept.append(finding)
        result.findings = sorted(kept)
        return result

    # ------------------------------------------------------------------
    def collect_files(self, paths) -> list[str]:
        """Absolute file paths to lint, sorted and deduplicated.

        Files named explicitly are always included; directories are
        walked recursively with the configured ``exclude`` patterns
        applied (relative to the lint root).
        """
        collected: set[str] = set()
        for entry in paths:
            path = entry if os.path.isabs(entry) \
                else os.path.join(self.root, entry)
            path = os.path.abspath(path)
            if os.path.isfile(path):
                collected.add(path)
            elif os.path.isdir(path):
                for dirpath, dirnames, filenames in os.walk(path):
                    dirnames.sort()
                    dirnames[:] = [
                        d for d in dirnames
                        if not match_path(
                            self._rel(os.path.join(dirpath, d)),
                            self.config.exclude)]
                    for filename in sorted(filenames):
                        if not filename.endswith(".py"):
                            continue
                        candidate = os.path.join(dirpath, filename)
                        if not match_path(self._rel(candidate),
                                          self.config.exclude):
                            collected.add(candidate)
            else:
                raise FileNotFoundError(f"no such file or directory: "
                                        f"{entry}")
        return sorted(collected)

    def _rel(self, path: str) -> str:
        return os.path.relpath(path, self.root).replace(os.sep, "/")

    # ------------------------------------------------------------------
    def _scan_noqa(self, rel: str, source: str,
                   findings: list[Finding]) -> dict[int, set[str]]:
        """Per-line suppressed rule ids; malformed noqas become
        :data:`META_RULE_ID` findings appended to *findings*."""
        known = known_rule_ids()
        by_line: dict[int, set[str]] = {}
        for lineno, col, text in self._comments(source):
            for match in _NOQA_RE.finditer(text):
                body = match.group(1)
                if body is None or not body.strip():
                    findings.append(Finding(
                        path=rel, line=lineno, col=col + match.start(),
                        rule=META_RULE_ID, severity="error",
                        message="bare 'repro: noqa' — every suppression "
                                "must name the rule it silences, e.g. "
                                "'# repro: noqa[RPR001]'"))
                    continue
                ids = {part.strip().upper()
                       for part in body.split(",") if part.strip()}
                unknown = sorted(ids - known)
                if unknown:
                    findings.append(Finding(
                        path=rel, line=lineno, col=col + match.start(),
                        rule=META_RULE_ID, severity="error",
                        message=f"noqa names unknown rule id(s): "
                                f"{', '.join(unknown)}"))
                ids &= known
                ids.discard(META_RULE_ID)   # the meta rule never yields
                if ids:
                    by_line.setdefault(lineno, set()).update(ids)
        return by_line

    @staticmethod
    def _comments(source: str):
        """``(line, col, text)`` of every comment token.

        Tokenizing (rather than regex-scanning raw lines) keeps noqa
        markers quoted inside docstrings or string literals — like the
        ones in this module's own docs — from acting as suppressions.
        """
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(source).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    yield token.start[0], token.start[1], token.string
        except (tokenize.TokenError, IndentationError,
                SyntaxError):  # pragma: no cover - ast.parse ran first
            return


def lint_paths(paths, root: str | None = None,
               config: LintConfig | None = None) -> LintResult:
    """One-call façade: configure, collect, run."""
    resolved_root = os.path.abspath(root or os.getcwd())
    if config is None:
        config = LintConfig.discover(root=resolved_root)
    return Linter(config=config, root=resolved_root).run(paths)
