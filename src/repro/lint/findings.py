"""Lint findings: one frozen record per rule violation.

A :class:`Finding` is the unit every rule emits and every output format
renders — ``path:line:col RULE severity message``.  Severities are a
two-level scale: ``error`` findings fail ``repro lint`` (exit code 1),
``warning`` findings are reported but do not gate.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SEVERITIES", "Finding"]

#: Ordered from most to least severe.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str          # posix path relative to the lint root
    line: int          # 1-based
    col: int           # 0-based (ast convention)
    rule: str          # e.g. "RPR001"
    severity: str      # "error" | "warning"
    message: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, "
                f"got {self.severity!r}")

    def to_dict(self) -> dict:
        """JSON row of the ``repro lint --json`` output."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        """The one-line text form."""
        return (f"{self.path}:{self.line}:{self.col} "
                f"{self.rule} {self.severity}: {self.message}")
