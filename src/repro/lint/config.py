"""``[tool.repro.lint]`` configuration.

The linter runs with built-in defaults that keep the shipped tree at
zero findings; ``pyproject.toml`` both *documents* those defaults (the
allowlists are invariants, so they belong in a reviewed file) and can
override them::

    [tool.repro.lint]
    exclude = ["tests/fixtures/lint/"]

    [tool.repro.lint.RPR001]
    allow = ["src/repro/obs/tracing.py"]

    [tool.repro.lint.RPR006]
    severity = "warning"

Each ``[tool.repro.lint.<RULE-ID>]`` table is merged over that rule's
``default_options``; the reserved ``severity`` key overrides the rule's
severity and ``enabled = false`` drops it from the default selection.
"""

from __future__ import annotations

import os

__all__ = ["LintConfigError", "LintConfig"]


class LintConfigError(ValueError):
    """Invalid or unreadable lint configuration."""


#: Keys of the top-level ``[tool.repro.lint]`` table.
_TOP_KEYS = {"select", "exclude"}
#: Reserved keys inside a per-rule table (everything else is an option).
_RULE_META_KEYS = {"severity", "enabled"}


class LintConfig:
    """Merged lint settings: selection, excludes, per-rule options."""

    def __init__(self, select: list[str] | None = None,
                 exclude: list[str] | None = None,
                 rules: dict[str, dict] | None = None) -> None:
        #: explicit rule-id selection (``None`` = every enabled rule)
        self.select = list(select) if select is not None else None
        #: path patterns skipped while walking directories
        self.exclude = list(exclude) if exclude is not None \
            else ["tests/fixtures/lint/"]
        #: per-rule tables (options + optional severity/enabled)
        self.rules = {key: dict(value)
                      for key, value in (rules or {}).items()}

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "LintConfig":
        """Build from a ``[tool.repro.lint]``-shaped mapping."""
        if not isinstance(data, dict):
            raise LintConfigError(
                f"[tool.repro.lint] must be a table, "
                f"got {type(data).__name__}")
        rules: dict[str, dict] = {}
        select = data.get("select")
        exclude = data.get("exclude")
        for key, value in data.items():
            if key in _TOP_KEYS:
                continue
            if not isinstance(value, dict):
                raise LintConfigError(
                    f"[tool.repro.lint.{key}] must be a table, "
                    f"got {type(value).__name__}")
            rules[key.upper()] = dict(value)
        if select is not None:
            if not isinstance(select, list):
                raise LintConfigError("lint 'select' must be a list of "
                                      "rule ids")
            select = [str(s).upper() for s in select]
        if exclude is not None and not isinstance(exclude, list):
            raise LintConfigError("lint 'exclude' must be a list of "
                                  "path patterns")
        return cls(select=select, exclude=exclude, rules=rules)

    @classmethod
    def from_pyproject(cls, path: str) -> "LintConfig":
        """Load the ``[tool.repro.lint]`` table of a pyproject file."""
        try:
            import tomllib
        except ImportError:  # pragma: no cover - Python 3.10
            raise LintConfigError(
                "reading lint config from pyproject.toml needs Python "
                "3.11+ (tomllib); the built-in defaults apply without it")
        try:
            with open(path, "rb") as handle:
                data = tomllib.load(handle)
        except OSError as error:
            raise LintConfigError(f"cannot read {path}: {error}")
        except tomllib.TOMLDecodeError as error:
            raise LintConfigError(f"{path} is not valid TOML: {error}")
        section = data.get("tool", {}).get("repro", {}).get("lint", {})
        return cls.from_dict(section)

    @classmethod
    def discover(cls, explicit_path: str | None = None,
                 root: str | None = None) -> "LintConfig":
        """The config to use: *explicit_path*, else ``pyproject.toml``
        under *root* (when present and parseable), else defaults."""
        if explicit_path is not None:
            return cls.from_pyproject(explicit_path)
        candidate = os.path.join(root or os.getcwd(), "pyproject.toml")
        if os.path.isfile(candidate):
            try:
                return cls.from_pyproject(candidate)
            except LintConfigError:
                # a 3.10 interpreter (no tomllib) falls back to the
                # built-in defaults, which mirror the checked-in table
                return cls()
        return cls()

    # ------------------------------------------------------------------
    def rule_table(self, rule_id: str) -> dict:
        return self.rules.get(rule_id.upper(), {})

    def options(self, rule_id: str, defaults: dict) -> dict:
        """*defaults* overlaid with this config's per-rule table."""
        merged = dict(defaults)
        for key, value in self.rule_table(rule_id).items():
            if key not in _RULE_META_KEYS:
                merged[key] = value
        return merged

    def severity_override(self, rule_id: str) -> str | None:
        return self.rule_table(rule_id).get("severity")

    def rule_enabled(self, rule_id: str) -> bool:
        return bool(self.rule_table(rule_id).get("enabled", True))

    def selected(self, rule_id: str) -> bool:
        if self.select is not None:
            return rule_id.upper() in self.select
        return self.rule_enabled(rule_id)
