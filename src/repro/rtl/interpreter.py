"""A minimal evaluator for the generated MAC datapaths.

Not a Verilog simulator — a purpose-built interpreter for the exact
combinational idioms :mod:`repro.rtl.generator` emits (magnitude split,
``<<<`` shifts, case-selected lanes, signed products).  It re-executes the
*emitted text* on integer operands, which lets the tests prove the Verilog
says what the Python functional model does without any external tooling.
"""

from __future__ import annotations

import re

__all__ = ["evaluate_mac_product"]

_CASE_ARM = re.compile(
    r"^\s*(\d+)'d(\d+):\s*lane(\d+)\s*=\s*(.+);\s*$")
_MULT_WIRE = re.compile(
    r"wire signed \[\d+:0\] (mult_\d+)\s*=\s*(.+);")
_QUARTET_WIRE = re.compile(
    r"wire \[(\d+):0\] q(\d+) = mag\[(\d+):(\d+)\];")
_LANE_COMBINE = re.compile(
    r"wire signed \[\d+:0\] unsigned_product =\s*(.+);")


def _eval_expr(expression: str, env: dict[str, int]) -> int:
    """Evaluate an emitted right-hand side on the integer environment."""
    text = expression.strip().rstrip(";")
    text = text.replace("<<<", "<<")
    text = re.sub(r"(\d+)'sd(\d+)", r"\2", text)
    # identifiers come from the generator's closed vocabulary
    for name in sorted(env, key=len, reverse=True):
        text = re.sub(rf"\b{name}\b", str(env[name]), text)
    if re.search(r"[A-Za-z_]", text):
        raise ValueError(f"unresolved identifier in {expression!r}")
    return eval(text, {"__builtins__": {}})  # arithmetic only


def evaluate_mac_product(source: str, weight: int, act: int,
                         bits: int) -> int:
    """Execute the combinational product logic of a generated ASM module.

    Returns the value of the ``product`` net for the given operands —
    what the accumulator would add on the next clock edge.
    """
    sign_w = 1 if weight < 0 else 0
    mag = min(abs(weight), (1 << (bits - 1)) - 1)
    env: dict[str, int] = {"ext_act": act}

    # quartet wires
    for match in _QUARTET_WIRE.finditer(source):
        high, index, msb, lsb = (int(match.group(1)), int(match.group(2)),
                                 int(match.group(3)), int(match.group(4)))
        width = msb - lsb + 1
        env[f"q{index}"] = (mag >> lsb) & ((1 << width) - 1)

    # bank wires
    for match in _MULT_WIRE.finditer(source):
        env[match.group(1)] = _eval_expr(match.group(2), env)

    # case-selected lanes
    lanes: dict[int, int] = {}
    for line in source.splitlines():
        match = _CASE_ARM.match(line)
        if not match:
            continue
        value = int(match.group(2))
        lane_index = int(match.group(3))
        if env.get(f"q{lane_index}") == value:
            lanes[lane_index] = _eval_expr(match.group(4), env)
    for lane_index, value in lanes.items():
        env[f"lane{lane_index}"] = value

    combine = _LANE_COMBINE.search(source)
    if combine is None:
        raise ValueError("no unsigned_product net in source")
    unsigned_product = _eval_expr(combine.group(1), env)
    return -unsigned_product if sign_w else unsigned_product
