"""Verilog RTL generation for the ASM/MAN/conventional MAC datapaths."""

from repro.rtl.generator import (
    generate_asm_mac,
    generate_conventional_mac,
    generate_precompute_bank,
    module_name,
)
from repro.rtl.interpreter import evaluate_mac_product

__all__ = [
    "generate_asm_mac",
    "generate_conventional_mac",
    "generate_precompute_bank",
    "module_name",
    "evaluate_mac_product",
]
