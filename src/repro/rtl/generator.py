"""Synthesisable Verilog generation for the neuron datapaths.

The paper's processing engine was "implemented at the Register-Transfer
Level (RTL) in Verilog and mapped to the IBM 45nm technology".  This module
regenerates that artifact: given a word width and an alphabet set it emits
a self-contained Verilog module for the MAC datapath — pre-computer bank,
per-quartet select/shift case logic, lane adder, sign restore and
accumulator.

The select/shift case arms are generated *from the same quartet maps the
Python functional model uses* (:class:`AlphabetSetMultiplier`), so the RTL
is semantically tied to the tested behaviour: every case arm realises
exactly the effective quartet value the simulator predicts, including the
fallback rounding for unsupported values.  The tests parse the emitted case
arms back and check them against the model.

No simulator or synthesis tool is required here; the output is plain
IEEE-1364 Verilog-2001 a downstream user can drop into their flow.
"""

from __future__ import annotations

from repro.asm.alphabet import AlphabetSet
from repro.asm.decompose import decompose_quartet
from repro.asm.multiplier import AlphabetSetMultiplier
from repro.fixedpoint.binary import clog2
from repro.fixedpoint.quartet import QuartetLayout

__all__ = ["generate_asm_mac", "generate_conventional_mac",
           "generate_precompute_bank", "module_name"]


def module_name(bits: int, alphabet_set: AlphabetSet | None) -> str:
    """Verilog module name for a datapath configuration.

    >>> from repro.asm.alphabet import ALPHA_1
    >>> module_name(8, ALPHA_1)
    'man_mac_8b'
    >>> module_name(8, None)
    'conv_mac_8b'
    """
    if alphabet_set is None:
        return f"conv_mac_{bits}b"
    if alphabet_set.is_multiplierless:
        return f"man_mac_{bits}b"
    return f"asm{len(alphabet_set)}_mac_{bits}b"


def _header(name: str, bits: int, acc_bits: int) -> list[str]:
    return [
        f"module {name} (",
        "    input  wire                     clk,",
        "    input  wire                     rst,",
        "    input  wire                     en,",
        f"    input  wire signed [{bits - 1}:0]  weight,",
        f"    input  wire signed [{bits - 1}:0]  act,",
        f"    output reg  signed [{acc_bits - 1}:0] acc",
        ");",
    ]


def _accumulator(acc_bits: int) -> list[str]:
    return [
        "    always @(posedge clk) begin",
        "        if (rst)",
        f"            acc <= {acc_bits}'sd0;",
        "        else if (en)",
        "            acc <= acc + product;",
        "    end",
        "",
        "endmodule",
    ]


def generate_precompute_bank(bits: int,
                             alphabet_set: AlphabetSet) -> str:
    """Standalone shared pre-computer bank (one output per alphabet > 1)."""
    lane = bits + 4
    lines = [
        f"// pre-computer bank: alphabets {alphabet_set} of a "
        f"{bits}-bit input",
        f"module precompute_bank_{bits}b_{len(alphabet_set)}a (",
        f"    input  wire signed [{bits - 1}:0] act,",
    ]
    ports = [f"    output wire signed [{lane - 1}:0] mult_{a}"
             for a in alphabet_set if a > 1]
    lines.append(",\n".join(ports))
    lines.append(");")
    for a in alphabet_set:
        if a == 1:
            continue
        # CSD-style shift-add expression for a*act
        terms = _csd_terms(a)
        expr = " + ".join(
            f"(act <<< {shift})" if sign > 0 else f"- (act <<< {shift})"
            for shift, sign in terms)
        lines.append(f"    assign mult_{a} = {expr};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _csd_terms(value: int) -> list[tuple[int, int]]:
    """CSD digits of *value* as (shift, sign) pairs, LSB first."""
    terms = []
    shift = 0
    while value:
        if value & 1:
            residue = -1 if (value & 3) == 3 else 1
            terms.append((shift, residue))
            value -= residue
        value >>= 1
        shift += 1
    return terms


def _lane_case(layout: QuartetLayout, quartet_index: int,
               alphabet_set: AlphabetSet, model: AlphabetSetMultiplier,
               lane_bits: int, bits: int) -> list[str]:
    """Case statement mapping a quartet value to its shifted alphabet."""
    width = layout.quartet_widths[quartet_index]
    q = f"q{quartet_index}"
    lane = f"lane{quartet_index}"
    lines = [f"    always @(*) begin", f"        case ({q})"]
    quartet_map = model._quartet_maps[width]
    for value in range(1 << width):
        realised = quartet_map[value]
        if realised is None:  # pragma: no cover - error policy not emitted
            raise ValueError("generate RTL with a non-error fallback")
        if realised == 0:
            rhs = f"{lane_bits}'sd0"
        else:
            alphabet, shift = decompose_quartet(realised, alphabet_set,
                                                width=width)
            source = "ext_act" if alphabet == 1 else f"mult_{alphabet}"
            rhs = f"{source} <<< {shift}" if shift else source
        lines.append(f"            {width}'d{value}: {lane} = {rhs};")
    lines.append(f"            default: {lane} = {lane_bits}'sd0;")
    lines.append("        endcase")
    lines.append("    end")
    return lines


def generate_asm_mac(bits: int, alphabet_set: AlphabetSet,
                     fallback: str = "nearest",
                     acc_guard_bits: int = 8) -> str:
    """Complete ASM (or MAN) MAC module for *bits*-bit operands.

    The generated logic: magnitude extraction, in-module alphabet bank,
    per-quartet select/shift (one combinational case per quartet, arms
    derived from the functional model under *fallback*), lane summation,
    sign restore, accumulate on ``en``.
    """
    layout = QuartetLayout(bits)
    model = AlphabetSetMultiplier(bits, alphabet_set, fallback=fallback)
    name = module_name(bits, alphabet_set)
    acc_bits = 2 * bits + acc_guard_bits
    lane_bits = 2 * bits
    mag_bits = bits - 1

    lines = [f"// generated by repro.rtl - {name}, alphabets "
             f"{alphabet_set}, fallback '{fallback}'"]
    lines += _header(name, bits, acc_bits)
    lines += [
        "",
        "    // magnitude of the weight (sign handled after the lanes)",
        f"    wire sign_w = weight[{bits - 1}];",
        f"    wire [{mag_bits - 1}:0] mag = sign_w ? "
        f"(~weight[{mag_bits - 1}:0] + 1'b1) : weight[{mag_bits - 1}:0];",
        f"    wire signed [{lane_bits - 1}:0] ext_act = act;",
    ]

    # quartet extraction
    for index, width in enumerate(layout.quartet_widths):
        low = layout.shift_of(index)
        high = low + width - 1
        lines.append(f"    wire [{width - 1}:0] q{index} = "
                     f"mag[{high}:{low}];")

    # alphabet bank (inline, shared across lanes)
    for a in alphabet_set:
        if a == 1:
            continue
        terms = _csd_terms(a)
        expr = " + ".join(
            f"(ext_act <<< {shift})" if sign > 0
            else f"- (ext_act <<< {shift})"
            for shift, sign in terms)
        lines.append(f"    wire signed [{lane_bits - 1}:0] mult_{a} "
                     f"= {expr};")

    # per-quartet select/shift lanes
    lines.append("")
    for index in range(layout.num_quartets):
        lines.append(f"    reg signed [{lane_bits - 1}:0] lane{index};")
    for index in range(layout.num_quartets):
        lines += _lane_case(layout, index, alphabet_set, model,
                            lane_bits, bits)

    # combine lanes with their quartet offsets, restore sign
    parts = [f"(lane{index} <<< {layout.shift_of(index)})"
             for index in range(layout.num_quartets)]
    lines += [
        "",
        f"    wire signed [{lane_bits - 1}:0] unsigned_product = "
        + " + ".join(parts) + ";",
        f"    wire signed [{lane_bits - 1}:0] product = "
        "sign_w ? -unsigned_product : unsigned_product;",
        "",
    ]
    lines += _accumulator(acc_bits)
    return "\n".join(lines) + "\n"


def generate_conventional_mac(bits: int, acc_guard_bits: int = 8) -> str:
    """Baseline MAC: a behavioural ``*`` the synthesis tool maps to an
    array multiplier."""
    name = module_name(bits, None)
    acc_bits = 2 * bits + acc_guard_bits
    lines = [f"// generated by repro.rtl - {name} (conventional multiplier)"]
    lines += _header(name, bits, acc_bits)
    lines += [
        "",
        f"    wire signed [{2 * bits - 1}:0] product = weight * act;",
        "",
    ]
    lines += _accumulator(acc_bits)
    return "\n".join(lines) + "\n"
