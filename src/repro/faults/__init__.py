"""repro.faults — deterministic fault injection and resiliency curves.

Two faces:

* **Model-level** (:mod:`~repro.faults.models`,
  :mod:`~repro.faults.inject`): seeded, hash-driven fault models (weight
  bit flips, stuck-at table entries, activation upsets, requantize
  saturation) injected at the kernels dispatch layer, so every backend
  sees bit-identical faulted values.  Reduced into accuracy-vs-fault-rate
  curves by :mod:`~repro.faults.resiliency` / the pipeline ``faults``
  stage / the ``repro faults`` CLI.
* **System-level** (:mod:`~repro.faults.chaos`): a chaos harness that
  deterministically crashes, stalls, or IO-faults explore workers, used
  by the tests and CI to exercise the hardened executor and serving
  stack.

See ``docs/robustness.md`` for the methodology.
"""

from repro.faults.chaos import ChaosConfig, ChaosCrash, ChaosIOFault
from repro.faults.inject import FaultSession, fault_network, \
    fault_session, faulted_accuracy
from repro.faults.models import ACTIVATION_FAULT_KINDS, FAULT_KINDS, \
    FaultModelError, FaultSpec, WEIGHT_FAULT_KINDS
from repro.faults.resiliency import ResiliencyPoint, ResiliencyReport, \
    format_resiliency_report

__all__ = [
    "FAULT_KINDS", "WEIGHT_FAULT_KINDS", "ACTIVATION_FAULT_KINDS",
    "FaultModelError", "FaultSpec", "FaultSession",
    "fault_network", "fault_session", "faulted_accuracy",
    "ChaosConfig", "ChaosCrash", "ChaosIOFault",
    "ResiliencyPoint", "ResiliencyReport", "format_resiliency_report",
]
