"""Fault injection into :class:`~repro.nn.quantized.QuantizedNetwork`.

Two injection faces, one per fault family:

* **Weight faults** (``weight_bitflip`` / ``weight_stuck``) perturb the
  stored effective-weight words once: :func:`fault_network` returns a
  faulted clone sharing everything but the synapse arrays.
* **Activation faults** (``activation_upset`` /
  ``requantize_saturation``) perturb inter-layer traffic:
  :func:`fault_session` installs a hook at the kernels dispatch layer
  (:func:`repro.nn.quantized.set_fault_hook`), so *whatever backend*
  computes a layer, its output codes pass through the same deterministic
  corruption — reference and fast backends see bit-identical faulted
  values.

:func:`faulted_accuracy` is the one entry point the resiliency curve,
the pipeline ``faults`` stage and the tests share.  Injection volume is
accounted in the ``faults.injected`` counter (labelled by kind) when
observability is enabled.
"""

from __future__ import annotations

import copy
from contextlib import contextmanager

import numpy as np

from repro import obs
from repro.faults.models import ACTIVATION_FAULT_KINDS, FaultModelError, \
    FaultSpec, WEIGHT_FAULT_KINDS, fault_activation_array, \
    fault_weight_array
from repro.kernels import DEFAULT_EVAL_BATCH
from repro.nn import quantized as _quantized
from repro.nn.quantized import QuantizedNetwork

__all__ = ["FaultSession", "fault_network", "fault_session",
           "faulted_accuracy"]


class FaultSession:
    """Activation-fault scope bound to one network's layer order.

    The dispatch hook receives the *layer object*; faults must be keyed
    by the layer's stable position in the network (not ``id()``, which
    is process-specific), so the session maps layer identity -> index at
    construction.  Layers of other networks pass through untouched, and
    the output layer is never corrupted (its raw scores are the
    decision, not bus traffic).
    """

    def __init__(self, spec: FaultSpec, network: QuantizedNetwork) -> None:
        self.spec = spec
        self._layer_index = {id(layer): index
                             for index, layer in enumerate(network.layers)}
        self.injected = 0

    def __call__(self, layer, codes, fmt):
        index = self._layer_index.get(id(layer))
        if index is None or getattr(layer, "is_output", False) \
                or fmt is None:
            return codes
        faulted, count = fault_activation_array(
            np.asarray(codes), fmt.total_bits, self.spec, index)
        if count:
            self.injected += count
            if obs.enabled():
                obs.registry().counter(
                    "faults.injected", kind=self.spec.kind).inc(count)
        return faulted


@contextmanager
def fault_session(spec: FaultSpec, network: QuantizedNetwork):
    """Install the activation-fault dispatch hook for *network*.

    Not reentrant and not thread-safe — one faulted evaluation at a
    time, which is how the resiliency sweep uses it.
    """
    if spec.kind not in ACTIVATION_FAULT_KINDS:
        raise FaultModelError(
            f"fault_session needs an activation fault kind, "
            f"got {spec.kind!r}")
    session = FaultSession(spec, network)
    _quantized.set_fault_hook(session)
    try:
        yield session
    finally:
        _quantized.set_fault_hook(None)


def fault_network(network: QuantizedNetwork, spec: FaultSpec,
                  ) -> tuple[QuantizedNetwork, int]:
    """A clone of *network* with faulted effective-weight words.

    Only synapse-carrying layers (dense / conv) are perturbed; their
    ``w_int`` arrays hold the *effective* weights, so for ASM designs
    this faults exactly the remapped CSHM table values.  Returns the
    clone and the total number of faulted words.
    """
    if spec.kind not in WEIGHT_FAULT_KINDS:
        raise FaultModelError(
            f"fault_network needs a weight fault kind, got {spec.kind!r}")
    clone = copy.copy(network)
    layers = []
    injected = 0
    for index, layer in enumerate(network.layers):
        if hasattr(layer, "w_int"):
            faulted = copy.copy(layer)
            faulted.w_int, count = fault_weight_array(
                layer.w_int, layer.w_fmt.total_bits, spec, index)
            injected += count
            layers.append(faulted)
        else:
            layers.append(layer)
    clone.layers = layers
    if injected and obs.enabled():
        obs.registry().counter(
            "faults.injected", kind=spec.kind).inc(injected)
    return clone, injected


def faulted_accuracy(network: QuantizedNetwork, spec: FaultSpec,
                     x: np.ndarray, labels: np.ndarray,
                     batch_size: int = DEFAULT_EVAL_BATCH,
                     ) -> tuple[float, int]:
    """Accuracy of *network* under *spec*; returns ``(accuracy, injected)``.

    Deterministic in ``(network, spec, x, labels)`` alone: independent
    of *batch_size* and of the network's kernel backend.
    """
    if spec.rate == 0.0:
        return network.accuracy(x, labels, batch_size=batch_size), 0
    if spec.kind in WEIGHT_FAULT_KINDS:
        faulted, injected = fault_network(network, spec)
        return faulted.accuracy(x, labels, batch_size=batch_size), injected
    with fault_session(spec, network) as session:
        accuracy = network.accuracy(x, labels, batch_size=batch_size)
    return accuracy, session.injected
