"""Chaos harness: deterministic system-fault injection for tests and CI.

Where :mod:`repro.faults.models` perturbs *values*, this module perturbs
the *machinery*: explore workers crash, stall, or hit IO errors — on
purpose, deterministically — so the hardened executor's retry /
timeout / quarantine paths are exercised by real process pools instead
of mocks.

A :class:`ChaosConfig` names per-candidate curse probabilities.  Which
candidate is cursed is a pure hash of ``(seed, candidate digest)`` —
**no RNG, no clock** — so a chaos-injected sweep is reproducible and a
test can predict exactly which candidates will be hit.  ``max_attempt``
bounds the curse to early attempts: with the default of 1 only a
candidate's first attempt can fail, every retry succeeds, and the
journal the sweep leaves behind is byte-identical to a fault-free run's
(the acceptance property pinned by ``tests/test_faults.py``).

Activation is either in-process (:func:`install`, inherited by
fork-start pool workers) or via the ``REPRO_CHAOS`` environment variable
holding the config as JSON — the cross-process face the CI
``faults-smoke`` job uses.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, fields

from repro.faults.models import mix64

__all__ = ["ENV_VAR", "ChaosConfig", "ChaosCrash", "ChaosIOFault",
           "install", "uninstall", "active", "maybe_strike"]

#: Environment variable carrying a JSON :class:`ChaosConfig` into
#: worker processes (and whole CI steps).
ENV_VAR = "REPRO_CHAOS"


class ChaosCrash(RuntimeError):
    """An injected worker crash."""


class ChaosIOFault(OSError):
    """An injected IO fault."""


@dataclass(frozen=True)
class ChaosConfig:
    """Per-candidate curse rates; disjoint bands of one uniform draw."""

    crash_rate: float = 0.0
    slow_rate: float = 0.0
    slow_s: float = 0.2
    io_fault_rate: float = 0.0
    seed: int = 0
    #: attempts >= this are never cursed (1 = first attempt only, so
    #: every retry succeeds; use a large value to exhaust retries).
    max_attempt: int = 1

    def __post_init__(self) -> None:
        for name in ("crash_rate", "slow_rate", "io_fault_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.crash_rate + self.slow_rate + self.io_fault_rate > 1.0:
            raise ValueError("curse rates must sum to <= 1")

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosConfig":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown chaos key(s): {', '.join(unknown)}")
        return cls(**data)

    # ------------------------------------------------------------------
    def curse(self, digest: str) -> str | None:
        """The deterministic curse for candidate *digest*
        (``"crash"`` / ``"slow"`` / ``"io"`` / ``None``)."""
        draw = mix64((self.seed * 0x9E3779B97F4A7C15
                      & 0xFFFFFFFFFFFFFFFF)
                     ^ int(digest[:16], 16)) / 2.0 ** 64
        if draw < self.crash_rate:
            return "crash"
        if draw < self.crash_rate + self.slow_rate:
            return "slow"
        if draw < self.crash_rate + self.slow_rate + self.io_fault_rate:
            return "io"
        return None


_ACTIVE: ChaosConfig | None = None


def install(config: ChaosConfig) -> None:
    """Activate chaos in this process (fork-start workers inherit it)."""
    global _ACTIVE
    _ACTIVE = config


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def active() -> ChaosConfig | None:
    """The installed config, else one parsed from ``REPRO_CHAOS``."""
    if _ACTIVE is not None:
        return _ACTIVE
    payload = os.environ.get(ENV_VAR)
    if not payload:
        return None
    return ChaosConfig.from_dict(json.loads(payload))


def maybe_strike(digest: str, attempt: int) -> None:
    """Apply the active curse (if any) to *digest*'s *attempt*.

    Called by the explore worker before it evaluates a candidate.  A
    no-op when chaos is inactive, when the attempt is past
    ``max_attempt``, or when the candidate drew no curse.
    """
    config = active()
    if config is None or attempt >= config.max_attempt:
        return
    curse = config.curse(digest)
    if curse == "crash":
        raise ChaosCrash(
            f"chaos: injected worker crash (candidate {digest[:12]}, "
            f"attempt {attempt})")
    if curse == "slow":
        time.sleep(config.slow_s)
    elif curse == "io":
        raise ChaosIOFault(
            f"chaos: injected io fault (candidate {digest[:12]}, "
            f"attempt {attempt})")
