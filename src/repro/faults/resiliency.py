"""Accuracy-vs-fault-rate resiliency curves.

The measurable form of the paper's error-resiliency claim: sweep fault
rate x design, record accuracy, and compare how fast each deployment
degrades.  A :class:`ResiliencyReport` is the reduced artifact — built
from a pipeline run whose ``faults`` stage executed (see
``repro.pipeline.stages.stage_faults``), rendered by the ``repro
faults`` CLI and checked into ``BENCH_faults.json`` by
``benchmarks/bench_faults_resiliency.py``.

The headline scalar is ``worst_excess_degradation_pp``: over every ASM
design and fault rate, the worst accuracy drop *beyond* what the
conventional deployment suffers at the same rate, in percentage points.
<= 0 means ASM designs degrade no worse than conventional — the CI gate
bounds it from above.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.report import format_table

__all__ = ["ResiliencyPoint", "ResiliencyReport",
           "format_resiliency_report"]


@dataclass(frozen=True)
class ResiliencyPoint:
    """One (design, fault rate) sample of the curve."""

    design: str
    rate: float
    accuracy: float
    #: clean accuracy minus faulted accuracy (positive = worse).
    degradation: float
    #: fault sites hit during the evaluation (0 at rate 0).
    injected: int


@dataclass(frozen=True)
class ResiliencyReport:
    """One resiliency sweep, serialisable and self-describing."""

    app: str
    bits: int
    kind: str
    seed: int
    budget: str
    rates: tuple[float, ...]
    designs: tuple[str, ...]
    clean: dict[str, float]
    points: tuple[ResiliencyPoint, ...]

    # ------------------------------------------------------------------
    def curve(self, design: str) -> list[ResiliencyPoint]:
        """The points of *design*, in rate order."""
        return sorted((p for p in self.points if p.design == design),
                      key=lambda p: p.rate)

    def worst_excess_degradation_pp(self) -> float:
        """Worst ASM degradation beyond conventional, in accuracy points.

        0.0 when no conventional baseline (or no ASM design) is present.
        """
        if "conventional" not in self.clean:
            return 0.0
        conventional = {p.rate: p.degradation
                        for p in self.curve("conventional")}
        worst = 0.0
        for point in self.points:
            if point.design == "conventional":
                continue
            base = conventional.get(point.rate)
            if base is None:
                continue
            worst = max(worst, (point.degradation - base) * 100.0)
        return worst

    def min_clean_accuracy(self) -> float:
        return min(self.clean.values()) if self.clean else 0.0

    # ------------------------------------------------------------------
    @classmethod
    def from_pipeline_report(cls, report) -> "ResiliencyReport":
        """Reduce a pipeline report whose ``faults`` stage ran."""
        faults = report.require("faults")
        evaluate = report.require("evaluate")
        config = report.config
        clean = {row.design: row.accuracy for row in evaluate.rows
                 if row.design in config.designs}
        points = tuple(ResiliencyPoint(
            design=row.design, rate=row.rate, accuracy=row.accuracy,
            degradation=row.degradation, injected=row.injected)
            for row in faults.rows)
        return cls(app=config.app, bits=config.word_bits(),
                   kind=faults.kind, seed=faults.seed,
                   budget=config.tier().name,
                   rates=tuple(config.fault_rates),
                   designs=tuple(config.designs),
                   clean=clean, points=points)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "app": self.app, "bits": self.bits, "kind": self.kind,
            "seed": self.seed, "budget": self.budget,
            "rates": list(self.rates), "designs": list(self.designs),
            "clean": dict(self.clean),
            "points": [{"design": p.design, "rate": p.rate,
                        "accuracy": p.accuracy,
                        "degradation": p.degradation,
                        "injected": p.injected} for p in self.points],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResiliencyReport":
        return cls(app=data["app"], bits=data["bits"], kind=data["kind"],
                   seed=data["seed"], budget=data["budget"],
                   rates=tuple(data["rates"]),
                   designs=tuple(data["designs"]),
                   clean=dict(data["clean"]),
                   points=tuple(ResiliencyPoint(**p)
                                for p in data["points"]))

    def bench_results(self) -> dict:
        """The ``BENCH_faults.json`` results section.

        The gate metrics are deliberately *top-level scalars*
        (``min_clean_accuracy``, ``worst_excess_degradation_pp``) —
        per-rate keys would contain dots, which the dotted-path gate
        resolver cannot address.
        """
        curves = {design: {"rates": [p.rate for p in self.curve(design)],
                           "accuracy": [p.accuracy
                                        for p in self.curve(design)]}
                  for design in self.designs}
        return {
            "app": self.app, "bits": self.bits, "kind": self.kind,
            "seed": self.seed, "budget": self.budget,
            "min_clean_accuracy": self.min_clean_accuracy(),
            "worst_excess_degradation_pp":
                self.worst_excess_degradation_pp(),
            "clean": dict(self.clean),
            "curves": curves,
        }


# ----------------------------------------------------------------------
def format_resiliency_report(report: ResiliencyReport) -> str:
    """Human-readable resiliency table (one row per design x rate)."""
    rows = []
    for design in report.designs:
        clean = report.clean.get(design)
        rows.append([design, "clean",
                     "--" if clean is None else f"{clean * 100:.2f}",
                     "--", "--"])
        for point in report.curve(design):
            rows.append([design, f"{point.rate:g}",
                         f"{point.accuracy * 100:.2f}",
                         f"{point.degradation * 100:+.2f}",
                         str(point.injected)])
    table = format_table(
        ["Design", "Fault rate", "Accuracy (%)", "Degradation (pp)",
         "Faults injected"], rows,
        title=f"Resiliency - {report.app} ({report.bits} bit, "
              f"{report.kind}, seed {report.seed})")
    summary = format_table(
        ["Field", "Value"],
        [["min clean accuracy (%)",
          f"{report.min_clean_accuracy() * 100:.2f}"],
         ["worst excess degradation vs conventional (pp)",
          f"{report.worst_excess_degradation_pp():+.2f}"]],
        title="Resiliency summary")
    return table + "\n\n" + summary
