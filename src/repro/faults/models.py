"""Deterministic seeded fault models for the error-resiliency study.

The paper's argument is that neural networks *tolerate* multiplier error;
this module makes that claim measurable by perturbing the integer engine
the same way a defective or upset device would:

``weight_bitflip``
    A random bit of a stored synapse word flips (SEU in the weight
    SRAM).  Applied to the *effective* weights — for ASM designs these
    are the remapped alphabet values the CSHM banks actually hold.
``weight_stuck``
    A stuck-at fault in the ASM effective-weight / multiplier table: the
    selected table entry drives 0 regardless of the downloaded weight
    (the classic stuck-at-zero manufacturing defect).
``activation_upset``
    A random bit of an activation word flips on the inter-layer bus.
``requantize_saturation``
    The requantize/rounding stage saturates: the selected activation
    word is driven to the format extreme of its sign.

Every decision is a pure function of ``(seed, layer index, position in
the sample, stored code)`` via a vectorised splitmix64 hash — **no RNG
state** — so faulted values are bit-identical across kernel backends,
evaluation batch sizes and processes.  That is the property that lets
the ``faults`` pipeline stage cache its curves and lets reference/fast
backends cross-check each other under fault.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.binary import signed_range

__all__ = [
    "FAULT_KINDS", "WEIGHT_FAULT_KINDS", "ACTIVATION_FAULT_KINDS",
    "FaultModelError", "FaultSpec",
    "element_hash", "fault_mask", "flip_bit", "saturate_codes",
    "fault_weight_array", "fault_activation_array",
]

#: Every fault model, model-level sweep vocabulary.
FAULT_KINDS = ("weight_bitflip", "weight_stuck", "activation_upset",
               "requantize_saturation")

#: Kinds applied once to a network's stored weights.
WEIGHT_FAULT_KINDS = ("weight_bitflip", "weight_stuck")

#: Kinds applied to activation words as they leave each kernel.
ACTIVATION_FAULT_KINDS = ("activation_upset", "requantize_saturation")

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


class FaultModelError(ValueError):
    """Invalid fault specification."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault model at one rate, fully seeded.

    ``rate`` is the per-element fault probability (per weight word for
    the weight kinds, per activation word per layer for the activation
    kinds).  Identical specs produce identical faulted values — the spec
    is the *entire* source of nondeterminism.
    """

    kind: str
    rate: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultModelError(
                f"unknown fault kind {self.kind!r}; choose from "
                f"{FAULT_KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise FaultModelError(
                f"fault rate must be in [0, 1], got {self.rate}")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "rate": self.rate, "seed": self.seed}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(kind=data["kind"], rate=data["rate"],
                   seed=data.get("seed", 0))


# ----------------------------------------------------------------------
# the hash core: splitmix64, vectorised
# ----------------------------------------------------------------------
def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser over a ``uint64`` array."""
    with np.errstate(over="ignore"):
        z = (x + np.uint64(_GOLDEN)) & _MASK64
        z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX1)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX2)
        return z ^ (z >> np.uint64(31))


def mix64(value: int) -> int:
    """Scalar splitmix64 finaliser (pure-Python; used by the chaos
    harness, where importing numpy into curse decisions would be
    overkill)."""
    z = (value + _GOLDEN) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * _MIX1) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * _MIX2) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


def element_hash(seed: int, layer_index: int, positions: np.ndarray,
                 codes: np.ndarray) -> np.ndarray:
    """Per-element 64-bit hash of ``(seed, layer, position, code)``.

    *positions* index elements **within one sample** (weights: within the
    layer), never within the batch — that is what makes activation fault
    decisions independent of ``eval_batch_size`` (which the pipeline
    deliberately keeps out of its cache keys).
    """
    stream = np.uint64(mix64((seed & 0xFFFFFFFFFFFFFFFF)
                             ^ ((layer_index + 1) * _GOLDEN
                                & 0xFFFFFFFFFFFFFFFF)))
    mixed = _splitmix64(positions.astype(np.uint64) ^ stream)
    return _splitmix64(mixed ^ codes.astype(np.uint64))


def fault_mask(hashes: np.ndarray, rate: float) -> np.ndarray:
    """Boolean fault-site mask: hash below the rate threshold."""
    if rate >= 1.0:
        return np.ones(hashes.shape, dtype=bool)
    if rate <= 0.0:
        return np.zeros(hashes.shape, dtype=bool)
    return hashes < np.uint64(int(rate * 2.0 ** 64))


# ----------------------------------------------------------------------
# fault mechanics on integer code arrays
# ----------------------------------------------------------------------
def flip_bit(codes: np.ndarray, bits: np.ndarray,
             total_bits: int) -> np.ndarray:
    """Flip bit *bits* of each signed code in *total_bits*-bit two's
    complement; results stay in the representable range by construction."""
    offset = np.int64(1 << (total_bits - 1))
    unsigned = codes.astype(np.int64) + offset
    return (unsigned ^ (np.int64(1) << bits.astype(np.int64))) - offset


def saturate_codes(codes: np.ndarray, total_bits: int) -> np.ndarray:
    """Drive each code to the format extreme of its sign."""
    low, high = signed_range(total_bits)
    return np.where(codes < 0, np.int64(low), np.int64(high))


def fault_weight_array(w_int: np.ndarray, total_bits: int, spec: FaultSpec,
                       layer_index: int) -> tuple[np.ndarray, int]:
    """Faulted copy of one layer's effective-weight words.

    Returns ``(faulted int64 array, number of faulted words)``.
    """
    if spec.kind not in WEIGHT_FAULT_KINDS:
        raise FaultModelError(
            f"{spec.kind!r} is not a weight fault kind "
            f"(choose from {WEIGHT_FAULT_KINDS})")
    flat = w_int.reshape(-1).astype(np.int64)
    positions = np.arange(flat.size, dtype=np.uint64)
    hashes = element_hash(spec.seed, layer_index, positions, flat)
    mask = fault_mask(hashes, spec.rate)
    count = int(mask.sum())
    if not count:
        return w_int.astype(np.int64, copy=True), 0
    faulted = flat.copy()
    if spec.kind == "weight_bitflip":
        bits = (_splitmix64(hashes ^ np.uint64(_GOLDEN))
                % np.uint64(total_bits))
        faulted[mask] = flip_bit(flat[mask], bits[mask], total_bits)
    else:  # weight_stuck: the CSHM table entry drives 0
        faulted[mask] = 0
    return faulted.reshape(w_int.shape), count


def fault_activation_array(codes: np.ndarray, total_bits: int,
                           spec: FaultSpec, layer_index: int,
                           ) -> tuple[np.ndarray, int]:
    """Faulted copy of one layer's output activation codes.

    *codes* has a leading batch axis; fault decisions depend only on the
    position **within** each sample and the code value, so splitting the
    same samples into different batches faults the same elements.
    """
    if spec.kind not in ACTIVATION_FAULT_KINDS:
        raise FaultModelError(
            f"{spec.kind!r} is not an activation fault kind "
            f"(choose from {ACTIVATION_FAULT_KINDS})")
    per_sample = int(np.prod(codes.shape[1:], dtype=np.int64)) \
        if codes.ndim > 1 else 1
    positions = np.arange(per_sample, dtype=np.uint64).reshape(
        (1,) + codes.shape[1:]) if codes.ndim > 1 \
        else np.zeros(codes.shape, dtype=np.uint64)
    hashes = element_hash(spec.seed, layer_index,
                          np.broadcast_to(positions, codes.shape), codes)
    mask = fault_mask(hashes, spec.rate)
    count = int(mask.sum())
    if not count:
        return codes, 0
    faulted = codes.astype(np.int64, copy=True)
    if spec.kind == "activation_upset":
        bits = (_splitmix64(hashes ^ np.uint64(_GOLDEN))
                % np.uint64(total_bits))
        faulted[mask] = flip_bit(faulted[mask], bits[mask], total_bits)
    else:  # requantize_saturation
        faulted[mask] = saturate_codes(faulted[mask], total_bits)
    return faulted, count
