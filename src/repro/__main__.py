"""``python -m repro`` — the unified CLI (same as the ``repro`` script)."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
