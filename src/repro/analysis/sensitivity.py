"""Per-layer sensitivity to ASM approximation.

The paper's §VI.E mixed-alphabet scheme rests on a claim borrowed from
AxNN [29]: neurons in the concluding layers influence the output more than
neurons in the initial layers.  This module measures that directly — each
layer is constrained (or fallback-approximated) *alone* while the rest of
the network stays exact, and the accuracy drop is recorded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.asm.alphabet import AlphabetSet
from repro.asm.constraints import WeightConstrainer
from repro.nn.network import Sequential
from repro.nn.quantized import QuantizationSpec, QuantizedNetwork
from repro.training.constrained import weight_param_name

__all__ = ["LayerSensitivity", "layer_sensitivity"]


@dataclass(frozen=True)
class LayerSensitivity:
    """Accuracy effect of approximating one layer in isolation."""

    layer_index: int
    layer_name: str
    accuracy: float
    drop: float                 # baseline - accuracy


def layer_sensitivity(network: Sequential, x_test: np.ndarray,
                      labels: np.ndarray, bits: int,
                      alphabet_set: AlphabetSet,
                      constrain: bool = True,
                      backend: str = "reference",
                      eval_batch_size: int | None = None,
                      ) -> list[LayerSensitivity]:
    """Approximate each parameterised layer alone; report accuracy drops.

    ``constrain=True`` snaps the layer's weights with Algorithm 1 (the
    deployment the paper retrains for, minus the retraining);
    ``constrain=False`` uses the hardware ``nearest`` fallback instead.
    Either way the *other* layers run with the exact conventional engine,
    isolating each layer's contribution.  ``backend`` selects the compute
    kernels for the probe passes (bit-identical across backends; the
    sensitivity-guided explorer passes ``fast``).
    """
    from repro.kernels import DEFAULT_EVAL_BATCH

    batch = eval_batch_size or DEFAULT_EVAL_BATCH
    param_layers = [(index, layer) for index, layer
                    in enumerate(network.layers)
                    if weight_param_name(layer) is not None]
    baseline_spec = QuantizationSpec(bits)
    baseline = QuantizedNetwork.from_float(
        network, baseline_spec, backend=backend).accuracy(
            x_test, labels, batch_size=batch)

    if constrain:
        approx_spec = QuantizationSpec(
            bits, alphabet_set,
            constrainer=WeightConstrainer(bits, alphabet_set))
    else:
        approx_spec = QuantizationSpec(bits, alphabet_set,
                                       fallback="nearest")

    results = []
    for position, (index, layer) in enumerate(param_layers):
        layer_specs = [baseline_spec] * len(param_layers)
        layer_specs[position] = approx_spec
        quantized = QuantizedNetwork.from_float(
            network, baseline_spec, layer_specs=layer_specs,
            backend=backend)
        accuracy = quantized.accuracy(x_test, labels, batch_size=batch)
        results.append(LayerSensitivity(
            layer_index=index,
            layer_name=layer.name,
            accuracy=accuracy,
            drop=baseline - accuracy,
        ))
    return results
