"""Quartet-usage analysis and data-driven alphabet selection.

The paper fixes its alphabet ladder to {1}, {1,3}, {1,3,5,7} a priori.
These tools measure which quartet values a *trained* network actually uses
and select the alphabet set that covers the observed distribution best —
a data-driven extension of the paper's design flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.asm.alphabet import AlphabetSet
from repro.fixedpoint.qformat import qformat_for_range
from repro.fixedpoint.quartet import QuartetLayout

__all__ = ["QuartetUsage", "quartet_usage", "weighted_coverage",
           "select_alphabets"]

_ODD_ALPHABETS = (1, 3, 5, 7, 9, 11, 13, 15)


@dataclass(frozen=True)
class QuartetUsage:
    """Histogram of quartet values across a weight tensor."""

    counts: tuple[int, ...]        # index = quartet value 0..15
    num_weights: int
    num_quartets: int

    @property
    def frequencies(self) -> np.ndarray:
        total = max(1, sum(self.counts))
        return np.asarray(self.counts, dtype=np.float64) / total

    def supported_fraction(self, alphabet_set: AlphabetSet) -> float:
        """Fraction of observed quartets the set can generate exactly."""
        supported = alphabet_set.supported_values(4)
        hit = sum(count for value, count in enumerate(self.counts)
                  if value in supported)
        return hit / max(1, sum(self.counts))


def quartet_usage(weights: np.ndarray, bits: int) -> QuartetUsage:
    """Quantise float *weights* to *bits* and histogram their quartets.

    The MSB (sign-carrying) quartet is histogrammed over its narrower
    range; all quartet positions are pooled, matching how a single shared
    alphabet set serves every quartet lane.
    """
    layout = QuartetLayout(bits)
    weights = np.asarray(weights, dtype=np.float64).ravel()
    max_abs = float(np.max(np.abs(weights))) if weights.size else 1.0
    fmt = qformat_for_range(bits, max(max_abs, 1e-12))
    magnitudes = np.abs(fmt.quantize_array(weights))
    magnitudes = np.minimum(magnitudes, layout.max_magnitude)
    counts = [0] * 16
    for magnitude in magnitudes:
        for value in layout.split(int(magnitude)):
            counts[value] += 1
    return QuartetUsage(counts=tuple(counts), num_weights=weights.size,
                        num_quartets=layout.num_quartets)


def weighted_coverage(usage: QuartetUsage,
                      alphabet_set: AlphabetSet) -> float:
    """Usage-weighted coverage: probability a random observed quartet is
    exactly representable under *alphabet_set*."""
    return usage.supported_fraction(alphabet_set)


def select_alphabets(usage: QuartetUsage, k: int) -> AlphabetSet:
    """Best *k*-alphabet set for the observed quartet distribution.

    Exhaustive over the 8-choose-k odd candidates (at most 70 sets) —
    exact, not greedy.

    >>> u = QuartetUsage(counts=(4, 4, 2, 0, 1, 8, 0, 0, 1, 0, 2, 0, 0,
    ...                          0, 0, 0), num_weights=11, num_quartets=2)
    >>> str(select_alphabets(u, 2))   # 5s and 10s dominate -> pick 5
    '{1,5}'
    """
    if not 1 <= k <= len(_ODD_ALPHABETS):
        raise ValueError(f"k must be in [1, 8], got {k}")
    best_set = None
    best_score = -1.0
    for combo in combinations(_ODD_ALPHABETS, k):
        candidate = AlphabetSet(combo)
        score = weighted_coverage(usage, candidate)
        if score > best_score:
            best_score = score
            best_set = candidate
    return best_set
