"""Analysis tools: quartet usage, alphabet selection, layer sensitivity."""

from repro.analysis.quartets import (
    QuartetUsage,
    quartet_usage,
    select_alphabets,
    weighted_coverage,
)
from repro.analysis.sensitivity import LayerSensitivity, layer_sensitivity

__all__ = [
    "QuartetUsage", "quartet_usage", "select_alphabets",
    "weighted_coverage",
    "LayerSensitivity", "layer_sensitivity",
]
