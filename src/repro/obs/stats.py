"""Read back ``repro-trace/1`` files: span trees, metric tables, Chrome.

``repro stats out.jsonl`` is a thin CLI over this module:

* :func:`load_trace` parses a trace JSONL file into a :class:`TraceFile`
  (meta header, span-event forest, final metrics snapshot);
* :func:`format_span_tree` renders the forest as an indented table of
  wall / CPU / RSS per span;
* :func:`format_metric_table` renders the metrics snapshot;
* :func:`write_chrome_trace` converts the span lines into the Chrome
  trace-event JSON **array** format that ``chrome://tracing`` and
  Perfetto load directly.

The line schema is documented in :mod:`repro.obs.tracing` and
``docs/observability.md``; :func:`load_trace` validates it and raises
:class:`TraceError` with the offending line number on any violation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.tracing import TRACE_FORMAT

__all__ = ["TraceError", "SpanNode", "TraceFile", "load_trace",
           "format_span_tree", "format_metric_table", "write_chrome_trace"]

#: Keys every span line must carry (the documented schema).
SPAN_KEYS = ("name", "id", "parent", "ph", "ts", "dur", "pid", "tid",
             "cpu_ms", "rss_peak_kb", "args")


class TraceError(ValueError):
    """A trace file does not match the ``repro-trace/1`` schema."""


@dataclass
class SpanNode:
    """One span event, re-linked into a tree."""

    event: dict
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.event["name"]

    @property
    def wall_ms(self) -> float:
        return self.event["dur"] / 1e3

    @property
    def cpu_ms(self) -> float:
        return self.event["cpu_ms"]


@dataclass
class TraceFile:
    """A fully parsed trace: header, span forest, metrics snapshot."""

    meta: dict
    roots: list[SpanNode]
    events: list[dict]              # span events in file order
    metrics: list[dict]             # rows of the final metrics snapshot

    def span_names(self) -> set[str]:
        return {event["name"] for event in self.events}


def load_trace(path: str) -> TraceFile:
    """Parse and validate one ``repro-trace/1`` JSONL file."""
    meta: dict | None = None
    events: list[dict] = []
    metrics: list[dict] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceError(
                    f"{path}:{lineno}: not valid JSON: {error}") from None
            kind = payload.get("type")
            if lineno == 1:
                if kind != "meta" or payload.get("format") != TRACE_FORMAT:
                    raise TraceError(
                        f"{path}:1: expected a {TRACE_FORMAT!r} meta line, "
                        f"got {line[:80]!r}")
                meta = payload
            elif kind == "span":
                missing = [key for key in SPAN_KEYS if key not in payload]
                if missing:
                    raise TraceError(
                        f"{path}:{lineno}: span line missing {missing}")
                events.append(payload)
            elif kind == "metrics":
                metrics = payload.get("metrics", [])
            else:
                raise TraceError(
                    f"{path}:{lineno}: unknown line type {kind!r}")
    if meta is None:
        raise TraceError(f"{path}: empty trace file")
    return TraceFile(meta=meta, roots=_link(events), events=events,
                     metrics=metrics)


def _link(events: list[dict]) -> list[SpanNode]:
    """Rebuild the span forest from ``id``/``parent`` references."""
    nodes = {event["id"]: SpanNode(event) for event in events}
    roots: list[SpanNode] = []
    for event in events:               # file order = finish order
        node = nodes[event["id"]]
        parent = nodes.get(event["parent"])
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():        # children run (and finish) first
        node.children.sort(key=lambda child: child.event["ts"])
    roots.sort(key=lambda root: root.event["ts"])
    return roots


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _attr_text(args: dict) -> str:
    if not args:
        return ""
    inner = ", ".join(f"{key}={value}" for key, value in args.items())
    return f"  [{inner}]"


def format_span_tree(trace: TraceFile, max_depth: int | None = None) -> str:
    """Indented per-span table: wall ms, CPU ms, peak RSS, attributes."""
    lines = [f"{'span':<44} {'wall_ms':>10} {'cpu_ms':>10} "
             f"{'rss_peak_mb':>12}",
             "-" * 78]

    def walk(node: SpanNode, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        event = node.event
        label = "  " * depth + event["name"]
        if event.get("error"):
            label += f" !{event['error']}"
        lines.append(
            f"{label:<44} {event['dur'] / 1e3:>10.2f} "
            f"{event['cpu_ms']:>10.2f} "
            f"{event['rss_peak_kb'] / 1024:>12.1f}"
            f"{_attr_text(event.get('args', {}))}")
        for child in node.children:
            walk(child, depth + 1)

    for root in trace.roots:
        walk(root, 0)
    if len(lines) == 2:
        lines.append("(no spans)")
    return "\n".join(lines)


def format_metric_table(trace: TraceFile) -> str:
    """The final metrics snapshot as an aligned name/labels/value table."""
    if not trace.metrics:
        return "(no metrics snapshot in trace)"
    lines = [f"{'metric':<34} {'labels':<34} {'value':>14}", "-" * 84]
    for row in trace.metrics:
        labels = ",".join(f"{key}={value}"
                          for key, value in sorted(row["labels"].items()))
        if row["kind"] == "histogram":
            value = (f"n={row['count']} mean={row['mean']:.4g} "
                     f"p50={row['p50']:.4g} p95={row['p95']:.4g} "
                     f"p99={row['p99']:.4g}")
            lines.append(f"{row['name']:<34} {labels:<34} {value}")
        else:
            lines.append(f"{row['name']:<34} {labels:<34} "
                         f"{row['value']:>14.6g}")
    return "\n".join(lines)


def write_chrome_trace(trace: TraceFile, out_path: str) -> str:
    """Write the span events as a Chrome trace-event JSON array.

    The output opens directly in ``chrome://tracing`` / Perfetto: each
    span becomes a complete ("ph": "X") event; the extra repro keys ride
    along inside ``args`` where the viewers display them.
    """
    chrome_events = []
    for event in trace.events:
        args = dict(event.get("args", {}))
        args.update({"cpu_ms": event["cpu_ms"],
                     "rss_peak_kb": event["rss_peak_kb"]})
        if event.get("error"):
            args["error"] = event["error"]
        chrome_events.append({
            "name": event["name"], "ph": "X", "ts": event["ts"],
            "dur": event["dur"], "pid": event["pid"], "tid": event["tid"],
            "cat": "repro", "args": args,
        })
    with open(out_path, "w") as handle:
        json.dump({"traceEvents": chrome_events,
                   "displayTimeUnit": "ms"}, handle)
    return out_path
