"""Read back ``repro-trace/1`` files: span trees, metrics, Chrome, diffs.

``repro stats out.jsonl`` is a thin CLI over this module:

* :func:`load_trace` parses a trace JSONL file into a :class:`TraceFile`
  (meta header, span-event forest, final metrics snapshot);
* :func:`format_span_tree` renders the forest as an indented table of
  wall / CPU / RSS per span;
* :func:`format_metric_table` renders the metrics snapshot;
* :func:`write_chrome_trace` converts the span lines into the Chrome
  trace-event JSON **array** format that ``chrome://tracing`` and
  Perfetto load directly;
* :func:`diff_traces` / :func:`format_trace_diff` align two traces by
  span *path* and report wall/CPU/RSS and metric deltas past a
  significance threshold (``repro stats --diff A.jsonl B.jsonl`` —
  "did PR N slow the energy stage?" as one command).

The line schema is documented in :mod:`repro.obs.tracing` and
``docs/observability.md``; :func:`load_trace` validates it and raises
:class:`TraceError` with the offending line number on any violation.
Worker shards of a multi-process trace are stitched back in by
:mod:`repro.obs.merge`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.tracing import TRACE_FORMAT

__all__ = ["TraceError", "SpanNode", "TraceFile", "load_trace",
           "format_span_tree", "format_metric_table", "write_chrome_trace",
           "span_paths", "PathStats", "TraceDiff", "diff_traces",
           "format_trace_diff"]

#: Keys every span line must carry (the documented schema).
SPAN_KEYS = ("name", "id", "parent", "ph", "ts", "dur", "pid", "tid",
             "cpu_ms", "rss_peak_kb", "args")


class TraceError(ValueError):
    """A trace file does not match the ``repro-trace/1`` schema."""


@dataclass
class SpanNode:
    """One span event, re-linked into a tree."""

    event: dict
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.event["name"]

    @property
    def wall_ms(self) -> float:
        return self.event["dur"] / 1e3

    @property
    def cpu_ms(self) -> float:
        return self.event["cpu_ms"]


@dataclass
class TraceFile:
    """A fully parsed trace: header, span forest, metrics snapshot."""

    meta: dict
    roots: list[SpanNode]
    events: list[dict]              # span events in file order
    metrics: list[dict]             # rows of the final metrics snapshot
    dropped: int = 0                # spans the in-memory forest refused

    def span_names(self) -> set[str]:
        return {event["name"] for event in self.events}


def load_trace(path: str) -> TraceFile:
    """Parse and validate one ``repro-trace/1`` JSONL file."""
    meta: dict | None = None
    events: list[dict] = []
    metrics: list[dict] = []
    dropped = 0
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceError(
                    f"{path}:{lineno}: not valid JSON: {error}") from None
            kind = payload.get("type")
            if lineno == 1:
                if kind != "meta" or payload.get("format") != TRACE_FORMAT:
                    raise TraceError(
                        f"{path}:1: expected a {TRACE_FORMAT!r} meta line, "
                        f"got {line[:80]!r}")
                meta = payload
            elif kind == "span":
                missing = [key for key in SPAN_KEYS if key not in payload]
                if missing:
                    raise TraceError(
                        f"{path}:{lineno}: span line missing {missing}")
                events.append(payload)
            elif kind == "metrics":
                metrics = payload.get("metrics", [])
                dropped = payload.get("dropped", 0)
            else:
                raise TraceError(
                    f"{path}:{lineno}: unknown line type {kind!r}")
    if meta is None:
        raise TraceError(f"{path}: empty trace file")
    return TraceFile(meta=meta, roots=_link(events), events=events,
                     metrics=metrics, dropped=dropped)


def _link(events: list[dict]) -> list[SpanNode]:
    """Rebuild the span forest from ``id``/``parent`` references."""
    nodes = {event["id"]: SpanNode(event) for event in events}
    roots: list[SpanNode] = []
    for event in events:               # file order = finish order
        node = nodes[event["id"]]
        parent = nodes.get(event["parent"])
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():        # children run (and finish) first
        node.children.sort(key=lambda child: child.event["ts"])
    roots.sort(key=lambda root: root.event["ts"])
    return roots


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _attr_text(args: dict) -> str:
    if not args:
        return ""
    inner = ", ".join(f"{key}={value}" for key, value in args.items())
    return f"  [{inner}]"


def format_span_tree(trace: TraceFile, max_depth: int | None = None) -> str:
    """Indented per-span table: wall ms, CPU ms, peak RSS, attributes."""
    lines = [f"{'span':<44} {'wall_ms':>10} {'cpu_ms':>10} "
             f"{'rss_peak_mb':>12}",
             "-" * 78]

    def walk(node: SpanNode, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        event = node.event
        label = "  " * depth + event["name"]
        if event.get("error"):
            label += f" !{event['error']}"
        lines.append(
            f"{label:<44} {event['dur'] / 1e3:>10.2f} "
            f"{event['cpu_ms']:>10.2f} "
            f"{event['rss_peak_kb'] / 1024:>12.1f}"
            f"{_attr_text(event.get('args', {}))}")
        for child in node.children:
            walk(child, depth + 1)

    for root in trace.roots:
        walk(root, 0)
    if len(lines) == 2:
        lines.append("(no spans)")
    return "\n".join(lines)


def format_metric_table(trace: TraceFile) -> str:
    """The final metrics snapshot as an aligned name/labels/value table."""
    if not trace.metrics:
        return "(no metrics snapshot in trace)"
    lines = [f"{'metric':<34} {'labels':<34} {'value':>14}", "-" * 84]
    for row in trace.metrics:
        labels = ",".join(f"{key}={value}"
                          for key, value in sorted(row["labels"].items()))
        if row["kind"] == "histogram":
            value = (f"n={row['count']} mean={row['mean']:.4g} "
                     f"p50={row['p50']:.4g} p95={row['p95']:.4g} "
                     f"p99={row['p99']:.4g}")
            lines.append(f"{row['name']:<34} {labels:<34} {value}")
        else:
            lines.append(f"{row['name']:<34} {labels:<34} "
                         f"{row['value']:>14.6g}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# trace diffing (repro stats --diff A.jsonl B.jsonl)
# ----------------------------------------------------------------------
@dataclass
class PathStats:
    """Aggregated cost of every span sharing one root-to-node path."""

    count: int = 0
    wall_ms: float = 0.0
    cpu_ms: float = 0.0
    rss_peak_kb: float = 0.0        # max, not sum: RSS is a level

    def add(self, event: dict) -> None:
        self.count += 1
        self.wall_ms += event["dur"] / 1e3
        self.cpu_ms += event["cpu_ms"]
        self.rss_peak_kb = max(self.rss_peak_kb, event["rss_peak_kb"])


def span_paths(trace: TraceFile) -> dict[str, PathStats]:
    """Aggregate the forest by span *path* (``a.b/c.d/...`` from root).

    Spans with the same path — every ``train.epoch`` under the same
    stage, every worker's ``explore.candidate`` under ``explore.map`` —
    fold into one row, which is what makes two runs of the same workload
    alignable even when counts and interleavings differ.
    """
    paths: dict[str, PathStats] = {}

    def walk(node: SpanNode, prefix: str) -> None:
        path = f"{prefix}/{node.name}" if prefix else node.name
        paths.setdefault(path, PathStats()).add(node.event)
        for child in node.children:
            walk(child, path)

    for root in trace.roots:
        walk(root, "")
    return paths


@dataclass
class DiffRow:
    """One aligned span path (or metric) across the two traces."""

    path: str
    a: PathStats
    b: PathStats

    @property
    def wall_delta_ms(self) -> float:
        return self.b.wall_ms - self.a.wall_ms

    @property
    def wall_pct(self) -> float | None:
        """Relative wall change vs. A (None when A has no such span)."""
        if self.a.count == 0 or self.a.wall_ms == 0.0:
            return None
        return 100.0 * self.wall_delta_ms / self.a.wall_ms


@dataclass
class MetricDelta:
    name: str
    labels: str
    value_a: float | None
    value_b: float | None

    @property
    def delta(self) -> float:
        return (self.value_b or 0.0) - (self.value_a or 0.0)


@dataclass
class TraceDiff:
    """The full alignment; ``significant`` applies the threshold."""

    rows: list[DiffRow]             # every aligned span path
    metrics: list[MetricDelta]      # counter/gauge deltas (nonzero only)
    threshold_pct: float

    def significant(self) -> list[DiffRow]:
        picked = []
        for row in self.rows:
            if row.a.count == 0 or row.b.count == 0:
                picked.append(row)          # appeared / disappeared
            elif row.wall_pct is not None \
                    and abs(row.wall_pct) >= self.threshold_pct:
                picked.append(row)
        return picked


def diff_traces(a: TraceFile, b: TraceFile,
                threshold_pct: float = 5.0) -> TraceDiff:
    """Align *a* and *b* by span path; collect wall and metric deltas."""
    paths_a = span_paths(a)
    paths_b = span_paths(b)
    rows = [DiffRow(path, paths_a.get(path, PathStats()),
                    paths_b.get(path, PathStats()))
            for path in sorted(set(paths_a) | set(paths_b))]

    def scalar_values(trace: TraceFile) -> dict:
        values = {}
        for row in trace.metrics:
            key = (row["name"],
                   ",".join(f"{k}={v}"
                            for k, v in sorted(row["labels"].items())))
            if row["kind"] == "histogram":
                values[key] = row["count"]
            else:
                values[key] = row["value"]
        return values

    metrics_a = scalar_values(a)
    metrics_b = scalar_values(b)
    deltas = []
    for name, labels in sorted(set(metrics_a) | set(metrics_b)):
        delta = MetricDelta(name, labels,
                            metrics_a.get((name, labels)),
                            metrics_b.get((name, labels)))
        if delta.delta != 0.0 or delta.value_a is None \
                or delta.value_b is None:
            deltas.append(delta)
    return TraceDiff(rows=rows, metrics=deltas,
                     threshold_pct=threshold_pct)


def format_trace_diff(diff: TraceDiff) -> str:
    """Render the significant rows of a :class:`TraceDiff` as a table."""
    lines = [f"{'span path':<52} {'wall_a_ms':>10} {'wall_b_ms':>10} "
             f"{'delta_ms':>10} {'delta%':>8}",
             "-" * 94]
    for row in diff.significant():
        if row.a.count == 0:
            pct = "new"
        elif row.b.count == 0:
            pct = "gone"
        else:
            pct = f"{row.wall_pct:+.1f}%"
        label = row.path if len(row.path) <= 52 else "…" + row.path[-51:]
        lines.append(f"{label:<52} {row.a.wall_ms:>10.2f} "
                     f"{row.b.wall_ms:>10.2f} {row.wall_delta_ms:>+10.2f} "
                     f"{pct:>8}")
    if len(lines) == 2:
        lines.append(f"(no span path moved by >= {diff.threshold_pct:g}%)")
    lines.append("")
    lines.append(f"{len(diff.rows)} span paths aligned, "
                 f"{len(diff.significant())} past the "
                 f"{diff.threshold_pct:g}% threshold")
    if diff.metrics:
        lines.append("")
        lines.append(f"{'metric':<38} {'labels':<26} {'a':>10} {'b':>10} "
                     f"{'delta':>10}")
        lines.append("-" * 98)
        for delta in diff.metrics:
            a_txt = "-" if delta.value_a is None else f"{delta.value_a:g}"
            b_txt = "-" if delta.value_b is None else f"{delta.value_b:g}"
            lines.append(f"{delta.name:<38} {delta.labels:<26} "
                         f"{a_txt:>10} {b_txt:>10} {delta.delta:>+10g}")
    return "\n".join(lines)


def write_chrome_trace(trace: TraceFile, out_path: str) -> str:
    """Write the span events as a Chrome trace-event JSON array.

    The output opens directly in ``chrome://tracing`` / Perfetto: each
    span becomes a complete ("ph": "X") event; the extra repro keys ride
    along inside ``args`` where the viewers display them.
    """
    chrome_events = []
    for event in trace.events:
        args = dict(event.get("args", {}))
        args.update({"cpu_ms": event["cpu_ms"],
                     "rss_peak_kb": event["rss_peak_kb"]})
        if event.get("error"):
            args["error"] = event["error"]
        chrome_events.append({
            "name": event["name"], "ph": "X", "ts": event["ts"],
            "dur": event["dur"], "pid": event["pid"], "tid": event["tid"],
            "cat": "repro", "args": args,
        })
    with open(out_path, "w") as handle:
        json.dump({"traceEvents": chrome_events,
                   "displayTimeUnit": "ms"}, handle)
    return out_path
