"""Benchmark-trajectory ledger: ``BENCH_HISTORY.jsonl`` + trend gates.

The checked-in ``BENCH_*.json`` files are point-in-time snapshots; the
paper's claims, and the repo's performance story, are *trends* (energy
savings vs. accuracy degradation across alphabet sets, kernel speedups
across PRs).  This module gives those trends a ledger:

* one JSONL file (``BENCH_HISTORY.jsonl`` at the repo root, checked in)
  with one entry per ``(git_sha, bench)`` pair — re-running a bench at
  the same commit *replaces* its entry instead of appending a duplicate;
* each entry wraps the bench's ``emit_json`` payload (``results`` plus
  the attribution stamps ``host`` / ``repro_version`` / ``git_sha``);
* :class:`Gate` rules that fail the trajectory when a tracked metric
  falls past its absolute floor/ceiling **or** drifts beyond a tolerance
  against the trailing same-host median — drift across different hosts
  is machine noise, never a regression.

``repro bench`` runs the suites, appends entries and gates; ``repro
bench --check`` replays the gates over the checked-in history (the CI
step).  Entry schema (one JSON object per line)::

    {"format": "repro-bench-history/1", "bench": "kernels",
     "git_sha": "<full sha or 'unknown'>", "host": "...",
     "repro_version": "1.9.0", "bench_format": "repro-bench/kernels/1",
     "results": {...}}                  # the emit_json results verbatim
"""

from __future__ import annotations

import json
import os
import subprocess
from dataclasses import dataclass

__all__ = ["HISTORY_FORMAT", "DEFAULT_HISTORY", "SUITES", "HistoryError",
           "Gate", "DEFAULT_GATES", "Violation", "git_sha",
           "entry_from_payload", "load_history", "append_entry",
           "resolve_metric", "check_gates", "format_trend"]

#: Schema tag every ledger line carries.
HISTORY_FORMAT = "repro-bench-history/1"

#: Default ledger location (repo root, next to the BENCH_*.json files).
DEFAULT_HISTORY = "BENCH_HISTORY.jsonl"

#: Bench suites the ledger tracks: name -> bench module filenames, run
#: in order.  Each script's ``emit_json`` writes (or merges into)
#: ``BENCH_<name>.json`` next to the benchmarks directory; ``repro
#: bench`` ledgers the combined payload after the last script.  The
#: training suite is two scripts: the per-step projection kernel bench
#: plus the whole-epoch training-kernel bench (PR 9), both landing in
#: ``BENCH_training.json``.
SUITES: dict[str, tuple[str, ...]] = {
    "kernels": ("bench_kernels_backends.py",),
    "simulator": ("bench_simulator_backends.py",),
    "training": ("bench_training_projection.py",
                 "bench_training_epoch.py"),
    "obs": ("bench_obs_overhead.py",),
    "faults": ("bench_faults_resiliency.py",),
}


class HistoryError(ValueError):
    """The ledger file does not match ``repro-bench-history/1``."""


def git_sha(cwd: str | None = None) -> str:
    """The commit to attribute a bench run to.

    ``GIT_COMMIT`` (CI convention) wins, then ``git rev-parse HEAD``,
    then ``"unknown"`` — never an exception.  The value is attribution
    metadata only; it must stay out of every cache key (RPR001/RPR002
    territory ends where the ledger begins).
    """
    sha = os.environ.get("GIT_COMMIT", "").strip()
    if sha:
        return sha
    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"], cwd=cwd,
                              capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0 or not proc.stdout.strip():
        return "unknown"
    return proc.stdout.strip()


def entry_from_payload(bench: str, payload: dict,
                       sha: str | None = None) -> dict:
    """Wrap one ``BENCH_<bench>.json`` payload as a ledger entry."""
    if "results" not in payload:
        raise HistoryError(f"bench payload for {bench!r} has no 'results'")
    return {
        "format": HISTORY_FORMAT,
        "bench": bench,
        "git_sha": sha or payload.get("git_sha") or git_sha(),
        "host": payload.get("host", "unknown"),
        "repro_version": payload.get("repro_version", "unknown"),
        "bench_format": payload.get("format"),
        "results": payload["results"],
    }


# ----------------------------------------------------------------------
# ledger file
# ----------------------------------------------------------------------
def load_history(path: str) -> list[dict]:
    """Parse the ledger; a missing file is an empty history."""
    entries: list[dict] = []
    try:
        handle = open(path)
    except FileNotFoundError:
        return entries
    with handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as error:
                raise HistoryError(
                    f"{path}:{lineno}: not valid JSON: {error}") from None
            if entry.get("format") != HISTORY_FORMAT:
                raise HistoryError(
                    f"{path}:{lineno}: expected format {HISTORY_FORMAT!r},"
                    f" got {entry.get('format')!r}")
            for key in ("bench", "git_sha", "results"):
                if key not in entry:
                    raise HistoryError(
                        f"{path}:{lineno}: entry missing {key!r}")
            entries.append(entry)
    return entries


def append_entry(path: str, entry: dict) -> list[dict]:
    """Append *entry*, replacing any prior ``(git_sha, bench)`` twin.

    Returns the new history.  The rewrite goes through a temp file +
    atomic rename so a crashed bench run never truncates the ledger.
    """
    if entry.get("format") != HISTORY_FORMAT:
        raise HistoryError(f"entry is not {HISTORY_FORMAT!r}: {entry}")
    key = (entry["git_sha"], entry["bench"])
    entries = [e for e in load_history(path)
               if (e["git_sha"], e["bench"]) != key]
    entries.append(entry)
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w") as handle:
        for line_entry in entries:
            handle.write(json.dumps(line_entry, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return entries


def resolve_metric(results: dict, dotted: str):
    """Walk ``a.b.c`` into a results dict; ``None`` when absent."""
    node = results
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


# ----------------------------------------------------------------------
# gates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Gate:
    """One tracked metric: an absolute bound plus a drift tolerance.

    ``floor`` means higher-is-better (speedups), ``ceiling`` means
    lower-is-better (overhead percentages); exactly one of the two also
    fixes the direction the drift check guards.  Drift compares the
    latest entry against the median of the previous ``window`` entries
    *from the same host* and fails when it is worse by more than
    ``tolerance_pct``.
    """

    bench: str
    metric: str                     # dotted path inside entry["results"]
    floor: float | None = None
    ceiling: float | None = None
    tolerance_pct: float = 30.0
    window: int = 5

    def __post_init__(self) -> None:
        if (self.floor is None) == (self.ceiling is None):
            raise ValueError(
                f"gate {self.bench}/{self.metric}: set exactly one of "
                f"floor/ceiling (it also fixes the drift direction)")
        if self.tolerance_pct <= 0:
            raise ValueError("tolerance_pct must be > 0")
        if self.window < 1:
            raise ValueError("window must be >= 1")

    @property
    def higher_is_better(self) -> bool:
        return self.floor is not None


#: The repo's tracked trajectory: the same metrics the CI smoke jobs
#: floor-check on single snapshots, now gated over their history.
DEFAULT_GATES: tuple[Gate, ...] = (
    Gate("kernels", "dense_mlp_8b_asm2.speedup", floor=3.0),
    Gate("simulator", "dense_400x120_8b_asm2.speedup", floor=20.0),
    Gate("training", "mlp_1024x100x10_8b_asm2.speedup", floor=3.0),
    Gate("training", "train_epoch_mlp_8b.speedup", floor=2.0),
    Gate("obs", "overhead_pct", ceiling=1.0),
    Gate("faults", "min_clean_accuracy", floor=0.70),
    # ASM designs must degrade no more than ~3pp beyond conventional at
    # matched fault rates; pp excesses are tiny and noisy at the tiny
    # budget, so the drift tolerance is wide and the ceiling does the work.
    Gate("faults", "worst_excess_degradation_pp", ceiling=3.0,
         tolerance_pct=400.0),
)


@dataclass(frozen=True)
class Violation:
    """One failed gate, printable as a single line."""

    bench: str
    metric: str
    kind: str                       # floor | ceiling | drift | missing
    message: str

    def render(self) -> str:
        return f"{self.bench}.{self.metric}: {self.kind} — {self.message}"


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def check_gates(entries: list[dict],
                gates: tuple[Gate, ...] = DEFAULT_GATES) -> list[Violation]:
    """Every gate violation in *entries* (empty means the ledger is ok).

    A bench with no entries passes vacuously (suites run selectively);
    a gated metric missing from the latest entry of a tracked bench is
    itself a violation — silently losing a tracked metric is exactly the
    regression-shaped hole this ledger exists to close.
    """
    violations: list[Violation] = []
    for gate in gates:
        tracked = [e for e in entries if e["bench"] == gate.bench]
        if not tracked:
            continue
        latest = tracked[-1]
        value = resolve_metric(latest["results"], gate.metric)
        if value is None:
            violations.append(Violation(
                gate.bench, gate.metric, "missing",
                f"latest entry ({latest['git_sha'][:12]}) does not carry "
                f"the tracked metric"))
            continue
        if gate.floor is not None and value < gate.floor:
            violations.append(Violation(
                gate.bench, gate.metric, "floor",
                f"{value:g} fell below the floor {gate.floor:g} "
                f"at {latest['git_sha'][:12]}"))
        if gate.ceiling is not None and value > gate.ceiling:
            violations.append(Violation(
                gate.bench, gate.metric, "ceiling",
                f"{value:g} exceeded the ceiling {gate.ceiling:g} "
                f"at {latest['git_sha'][:12]}"))
        prior = [resolve_metric(e["results"], gate.metric)
                 for e in tracked[:-1]
                 if e.get("host") == latest.get("host")]
        prior = [v for v in prior if v is not None][-gate.window:]
        if not prior:
            continue
        baseline = _median(prior)
        if baseline == 0:
            continue
        if gate.higher_is_better:
            drift_pct = 100.0 * (baseline - value) / baseline
        else:
            drift_pct = 100.0 * (value - baseline) / baseline
        if drift_pct > gate.tolerance_pct:
            violations.append(Violation(
                gate.bench, gate.metric, "drift",
                f"{value:g} is {drift_pct:.1f}% worse than the trailing "
                f"same-host median {baseline:g} (tolerance "
                f"{gate.tolerance_pct:g}%, window {len(prior)})"))
    return violations


def format_trend(entries: list[dict],
                 gates: tuple[Gate, ...] = DEFAULT_GATES,
                 last: int = 8) -> str:
    """The tracked metrics' trajectories as an aligned text table."""
    lines = [f"{'gate':<44} {'bound':>10} {'trend (oldest -> latest)'}",
             "-" * 92]
    for gate in gates:
        tracked = [e for e in entries if e["bench"] == gate.bench]
        values = [(e["git_sha"][:8],
                   resolve_metric(e["results"], gate.metric))
                  for e in tracked[-last:]]
        bound = (f">={gate.floor:g}" if gate.floor is not None
                 else f"<={gate.ceiling:g}")
        if values:
            trend = "  ".join(
                f"{sha}:{'?' if value is None else format(value, 'g')}"
                for sha, value in values)
        else:
            trend = "(no entries)"
        lines.append(f"{gate.bench + '.' + gate.metric:<44} "
                     f"{bound:>10} {trend}")
    return "\n".join(lines)
