"""repro.obs — unified tracing, metrics and profiling for the whole repo.

One zero-dependency telemetry layer shared by the pipeline, the
explorer, the kernel layer, the cycle-accurate simulator, constrained
retraining and the serving stack:

* :class:`MetricsRegistry` — thread-safe counters, gauges and histograms
  (linear-interpolation quantiles), exported as JSON rows and as the
  Prometheus text format (serving's ``GET /metrics``);
* :func:`span` — nestable tracing spans recording wall time, process CPU
  time and peak RSS into an in-memory tree, optionally streamed to a
  Chrome-trace-compatible JSONL file (``repro run --trace out.jsonl``);
* profiling hooks at the hot boundaries — pipeline stages (duration +
  cache hit/miss counters), explore candidates (spans + journal
  counters + worker utilization), kernel dispatch (per-backend /
  per-kernel call counts and cumulative seconds), the toggle simulator,
  per-epoch retraining spans and the serving request path.

Everything is **off by default** and the disabled path is a no-op — one
boolean check per instrumented call, benchmarked at well under 1%
overhead on the kernels micro-bench (``BENCH_obs.json``,
``benchmarks/bench_obs_overhead.py``).  Enable per process::

    from repro import obs
    obs.enable(trace_path="results/trace.jsonl")   # path optional
    ...instrumented work...
    obs.disable()                                   # flush + close

or from the CLI: ``repro run cfg.json --trace out.jsonl`` /
``repro explore space.toml --trace out.jsonl``, then render with
``repro stats out.jsonl``.

The serving stack's :class:`~repro.serving.metrics.ServingMetrics` is
always on; it owns a private :class:`MetricsRegistry` rather than the
global one, because a server wants request metrics regardless of the
process-wide tracing switch.

Metric names and the span naming convention are documented in
``docs/observability.md``.
"""

from __future__ import annotations

import os
import threading

from repro.obs.metrics import (
    DEFAULT_WINDOW,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    prometheus_name,
    quantile,
)
from repro.obs.tracing import (
    MAX_KEPT_SPANS,
    NULL_SPAN,
    TRACE_FORMAT,
    Span,
    Tracer,
)

__all__ = [
    "quantile", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_WINDOW", "prometheus_name", "escape_label_value",
    "Span", "Tracer", "TRACE_FORMAT", "MAX_KEPT_SPANS",
    "enable", "disable", "enabled", "span", "registry", "tracer",
    "spans", "record_kernel", "reset",
]


class _State:
    """Process-global switch + the objects it guards."""

    # __weakref__: multiprocessing's register_after_fork keeps its
    # subjects in a WeakValueDictionary
    __slots__ = ("enabled", "tracer", "registry", "__weakref__")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer: Tracer | None = None
        self.registry = MetricsRegistry()


_STATE = _State()
_LOCK = threading.Lock()


def enable(trace_path: str | None = None) -> None:
    """Turn instrumentation on for this process.

    *trace_path* (optional) streams finished spans to a
    ``repro-trace/1`` JSONL file; :func:`disable` appends the final
    metrics snapshot and closes it.  Calling :func:`enable` while
    already enabled restarts the tracer (the metrics registry is kept).
    """
    with _LOCK:
        if _STATE.tracer is not None:
            _STATE.tracer.close()
        _STATE.tracer = Tracer(trace_path)
        _STATE.enabled = True
        if trace_path is not None:
            _hook_multiprocessing_children()


def disable() -> None:
    """Turn instrumentation off; flush and close any trace file."""
    with _LOCK:
        _STATE.enabled = False
        if _STATE.tracer is not None:
            dropped = _STATE.tracer.dropped
            if dropped:
                # the in-memory forest cap must never be silent: count it
                # and stamp it into the trace's closing metrics line
                _STATE.registry.counter("obs.spans_dropped").inc(dropped)
            _STATE.tracer.write_metrics(_STATE.registry.to_dict(),
                                        dropped=dropped)
            _STATE.tracer.close()


def enabled() -> bool:
    """Is instrumentation on?  The one check every hot path makes."""
    return _STATE.enabled


def span(name: str, **attrs):
    """A context-managed tracing span (no-op singleton when disabled)."""
    if not _STATE.enabled:
        return NULL_SPAN
    # forwarding shim: the literal span name lives at the caller
    return _STATE.tracer.span(name, attrs)  # repro: noqa[RPR006]


def registry() -> MetricsRegistry:
    """The process-global metrics registry (usable even when disabled)."""
    return _STATE.registry


def tracer() -> Tracer | None:
    """The live tracer, or ``None`` before the first :func:`enable`."""
    return _STATE.tracer


def spans() -> list[Span]:
    """Finished root spans of the current tracer (empty when none)."""
    return list(_STATE.tracer.roots) if _STATE.tracer is not None else []


def record_kernel(backend: str, kernel: str, seconds: float,
                  calls: int = 1) -> None:
    """Account one (or *calls*) kernel dispatches to *backend*.

    Callers guard with :func:`enabled` so the disabled path never pays
    the registry lookup::

        if obs.enabled():
            t0 = time.perf_counter()
            out = be.dense(self, x, x_fmt)
            obs.record_kernel(be.name, "dense",
                              time.perf_counter() - t0)
    """
    reg = _STATE.registry
    reg.counter("kernels.calls", backend=backend, kernel=kernel).inc(calls)
    reg.counter("kernels.seconds", backend=backend, kernel=kernel,
                ).inc(seconds)


def reset() -> None:
    """Full teardown: disable, drop spans and metrics (test isolation)."""
    with _LOCK:
        _STATE.enabled = False
        if _STATE.tracer is not None:
            _STATE.tracer.close()
        _STATE.tracer = None
        _STATE.registry.clear()


def _close_shard_at_exit(shard, registry: MetricsRegistry) -> None:
    """Cleanly finish a worker shard when the child exits normally.

    Pool teardown usually SIGTERMs workers (no ``atexit``), which is
    fine — shards are line-buffered and valid without a closing line —
    but a child that *does* exit cleanly gets its metrics snapshot.
    Bypasses :func:`disable` on purpose: the module lock it takes was
    inherited across fork and may be held forever.
    """
    if _STATE.tracer is shard:
        _STATE.enabled = False
        _STATE.tracer = None
    shard.write_metrics(registry.to_dict(), dropped=shard.dropped)
    shard.close()


_MP_HOOKED = False


def _hook_multiprocessing_children() -> None:
    """Arrange for multiprocessing children to finish their shards.

    mp children skip ``atexit`` (``Process._bootstrap`` ends in
    ``os._exit``) and clear the inherited finalizer registry *after* the
    ``os.register_at_fork`` hooks ran — so the shard's closing metrics
    line needs a finalizer registered from inside ``_run_after_forkers``,
    which ``_bootstrap`` runs after that clear.  Registered once, from
    the parent, at the first file-backed :func:`enable`.
    """
    global _MP_HOOKED
    if _MP_HOOKED:
        return
    from multiprocessing.util import Finalize, register_after_fork

    def finalize_shard_at_exit(state: _State) -> None:
        # runs in every mp child; only sharded children have work to do
        shard = state.tracer
        if state.enabled and shard is not None and \
                getattr(shard, "shard_index", None) is not None:
            Finalize(None, _close_shard_at_exit,
                     args=(shard, state.registry), exitpriority=10)

    register_after_fork(_STATE, finalize_shard_at_exit)
    _MP_HOOKED = True


def _shard_in_child() -> None:
    """``after_in_child`` hook: re-point tracing at a worker shard.

    A child of a tracing, file-backed parent opens its own
    ``<trace>.shard-<n>.jsonl`` (see :mod:`repro.obs.shard`) and keeps
    instrumenting; its metrics start from a fresh registry so a clean
    exit snapshots only child-side numbers.  A child of an in-memory
    tracer still self-disables — it has no file to report into, and it
    must never touch the parent's in-memory forest.  Locks are replaced,
    not taken: any inherited lock may have been mid-acquire at fork.
    """
    global _LOCK
    _LOCK = threading.Lock()
    tracer = _STATE.tracer
    if tracer is None:
        return
    if not _STATE.enabled or tracer.path is None:
        _STATE.enabled = False
        _STATE.tracer = None
        return
    import atexit

    from repro.obs.shard import fork_shard

    try:
        shard = fork_shard(tracer)
    except (OSError, RuntimeError):     # pragma: no cover - defensive
        # a failed shard open must not break the worker: run dark instead
        _STATE.enabled = False
        _STATE.tracer = None
        return
    _STATE.tracer = shard
    _STATE.registry = MetricsRegistry()
    atexit.register(_close_shard_at_exit, shard, _STATE.registry)


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_shard_in_child)
