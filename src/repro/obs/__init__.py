"""repro.obs — unified tracing, metrics and profiling for the whole repo.

One zero-dependency telemetry layer shared by the pipeline, the
explorer, the kernel layer, the cycle-accurate simulator, constrained
retraining and the serving stack:

* :class:`MetricsRegistry` — thread-safe counters, gauges and histograms
  (linear-interpolation quantiles), exported as JSON rows and as the
  Prometheus text format (serving's ``GET /metrics``);
* :func:`span` — nestable tracing spans recording wall time, process CPU
  time and peak RSS into an in-memory tree, optionally streamed to a
  Chrome-trace-compatible JSONL file (``repro run --trace out.jsonl``);
* profiling hooks at the hot boundaries — pipeline stages (duration +
  cache hit/miss counters), explore candidates (spans + journal
  counters + worker utilization), kernel dispatch (per-backend /
  per-kernel call counts and cumulative seconds), the toggle simulator,
  per-epoch retraining spans and the serving request path.

Everything is **off by default** and the disabled path is a no-op — one
boolean check per instrumented call, benchmarked at well under 1%
overhead on the kernels micro-bench (``BENCH_obs.json``,
``benchmarks/bench_obs_overhead.py``).  Enable per process::

    from repro import obs
    obs.enable(trace_path="results/trace.jsonl")   # path optional
    ...instrumented work...
    obs.disable()                                   # flush + close

or from the CLI: ``repro run cfg.json --trace out.jsonl`` /
``repro explore space.toml --trace out.jsonl``, then render with
``repro stats out.jsonl``.

The serving stack's :class:`~repro.serving.metrics.ServingMetrics` is
always on; it owns a private :class:`MetricsRegistry` rather than the
global one, because a server wants request metrics regardless of the
process-wide tracing switch.

Metric names and the span naming convention are documented in
``docs/observability.md``.
"""

from __future__ import annotations

import os
import threading

from repro.obs.metrics import (
    DEFAULT_WINDOW,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    prometheus_name,
    quantile,
)
from repro.obs.tracing import (
    MAX_KEPT_SPANS,
    NULL_SPAN,
    TRACE_FORMAT,
    Span,
    Tracer,
)

__all__ = [
    "quantile", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_WINDOW", "prometheus_name", "escape_label_value",
    "Span", "Tracer", "TRACE_FORMAT", "MAX_KEPT_SPANS",
    "enable", "disable", "enabled", "span", "registry", "tracer",
    "spans", "record_kernel", "reset",
]


class _State:
    """Process-global switch + the objects it guards."""

    __slots__ = ("enabled", "tracer", "registry")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer: Tracer | None = None
        self.registry = MetricsRegistry()


_STATE = _State()
_LOCK = threading.Lock()


def enable(trace_path: str | None = None) -> None:
    """Turn instrumentation on for this process.

    *trace_path* (optional) streams finished spans to a
    ``repro-trace/1`` JSONL file; :func:`disable` appends the final
    metrics snapshot and closes it.  Calling :func:`enable` while
    already enabled restarts the tracer (the metrics registry is kept).
    """
    with _LOCK:
        if _STATE.tracer is not None:
            _STATE.tracer.close()
        _STATE.tracer = Tracer(trace_path)
        _STATE.enabled = True


def disable() -> None:
    """Turn instrumentation off; flush and close any trace file."""
    with _LOCK:
        _STATE.enabled = False
        if _STATE.tracer is not None:
            _STATE.tracer.write_metrics(_STATE.registry.to_dict())
            _STATE.tracer.close()


def enabled() -> bool:
    """Is instrumentation on?  The one check every hot path makes."""
    return _STATE.enabled


def span(name: str, **attrs):
    """A context-managed tracing span (no-op singleton when disabled)."""
    if not _STATE.enabled:
        return NULL_SPAN
    # forwarding shim: the literal span name lives at the caller
    return _STATE.tracer.span(name, attrs)  # repro: noqa[RPR006]


def registry() -> MetricsRegistry:
    """The process-global metrics registry (usable even when disabled)."""
    return _STATE.registry


def tracer() -> Tracer | None:
    """The live tracer, or ``None`` before the first :func:`enable`."""
    return _STATE.tracer


def spans() -> list[Span]:
    """Finished root spans of the current tracer (empty when none)."""
    return list(_STATE.tracer.roots) if _STATE.tracer is not None else []


def record_kernel(backend: str, kernel: str, seconds: float,
                  calls: int = 1) -> None:
    """Account one (or *calls*) kernel dispatches to *backend*.

    Callers guard with :func:`enabled` so the disabled path never pays
    the registry lookup::

        if obs.enabled():
            t0 = time.perf_counter()
            out = be.dense(self, x, x_fmt)
            obs.record_kernel(be.name, "dense",
                              time.perf_counter() - t0)
    """
    reg = _STATE.registry
    reg.counter("kernels.calls", backend=backend, kernel=kernel).inc(calls)
    reg.counter("kernels.seconds", backend=backend, kernel=kernel,
                ).inc(seconds)


def reset() -> None:
    """Full teardown: disable, drop spans and metrics (test isolation)."""
    with _LOCK:
        _STATE.enabled = False
        if _STATE.tracer is not None:
            _STATE.tracer.close()
        _STATE.tracer = None
        _STATE.registry.clear()


def _disable_in_child() -> None:           # pragma: no cover - fork path
    # a forked worker must not write to the parent's trace file
    _STATE.enabled = False
    _STATE.tracer = None


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_disable_in_child)
