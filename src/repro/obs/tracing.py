"""Nestable tracing spans: wall time, CPU time, peak RSS, span trees.

A span measures one named region of work::

    with obs.span("stage.train", app="mnist_mlp") as sp:
        ...
        sp.set(epochs=history.epochs_run)

Spans nest through a per-thread stack, so a traced pipeline run yields a
tree — ``pipeline.run`` > ``stage.constrain`` > ``constrain.asm2`` >
``train.epoch`` — each node carrying wall milliseconds, process CPU
milliseconds, the peak RSS observed at exit and how much it grew during
the span.  Exceptions are recorded (the span notes the exception type)
and re-raised; the stack always unwinds.

When tracing is enabled (:func:`repro.obs.enable`) finished spans are
kept in an in-memory forest (bounded, see ``MAX_KEPT_SPANS``) and, when
a trace path was given, appended to a JSONL file — one JSON object per
line, schema ``repro-trace/1``:

* first line: ``{"type": "meta", "format": "repro-trace/1", ...}``
* one ``{"type": "span", ...}`` line per finished span, carrying the
  Chrome trace-event keys (``name``/``ph``/``ts``/``dur``/``pid``/
  ``tid``/``args``) plus ``id``/``parent``/``cpu_ms``/``rss_peak_kb``;
* a final ``{"type": "metrics", ...}`` snapshot written by
  :func:`repro.obs.disable`.

``repro stats trace.jsonl`` renders the tree; ``repro stats --chrome
out.json`` converts the span lines into the Chrome trace-event JSON
array that ``chrome://tracing`` / Perfetto load directly (see
``docs/observability.md``).

Fork safety: a forked child (the explore worker pool under the ``fork``
start method) must not write to the parent's inherited file handle.  A
child of a *file-backed* tracer re-opens its own shard file instead
(``<trace>.shard-<n>.jsonl``, see :mod:`repro.obs.shard`) and the
inherited parent handle is abandoned unflushed via :meth:`Tracer.abandon`;
a child of an in-memory-only tracer still self-disables — it has nowhere
to report spans to.  Both paths hang off ``os.register_at_fork`` in
:mod:`repro.obs`.
"""

from __future__ import annotations

import json
import os
import threading
import time

try:                                   # POSIX; absent on some platforms
    import resource
except ImportError:                    # pragma: no cover - non-POSIX
    resource = None  # type: ignore[assignment]

__all__ = ["TRACE_FORMAT", "MAX_KEPT_SPANS", "Span", "Tracer"]

#: Inherited-across-fork file objects a child abandoned.  Kept alive on
#: purpose: letting the garbage collector close them would flush any
#: parent bytes still sitting in the inherited userspace buffer into the
#: parent's file — from the wrong process.
_ABANDONED_FILES: list = []

#: Schema tag of the first line of every trace file.
TRACE_FORMAT = "repro-trace/1"

#: Upper bound on finished spans kept in memory (a runaway-loop guard;
#: the JSONL file keeps everything).
MAX_KEPT_SPANS = 100_000


# ru_maxrss is KiB on Linux but bytes on macOS
_RSS_DIVISOR = 1024.0 if (hasattr(os, "uname")
                          and os.uname().sysname == "Darwin") else 1.0


def _peak_rss_kb() -> float:
    """Peak RSS of this process in KiB (0.0 where unsupported)."""
    if resource is None:
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak / _RSS_DIVISOR


class Span:
    """One timed region; also its own context manager.

    Only the owning :class:`Tracer` creates these (via
    :func:`repro.obs.span`).  Attributes are filled at ``__exit__``;
    ``children`` makes the finished spans a tree.
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "thread_id",
                 "wall_ms", "cpu_ms", "rss_peak_kb", "rss_grew_kb",
                 "error", "children", "_tracer", "_t0", "_cpu0", "_rss0",
                 "_ts_us")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id: int = 0
        self.parent_id: int | None = None
        self.thread_id: int = 0
        self.wall_ms: float = 0.0
        self.cpu_ms: float = 0.0
        self.rss_peak_kb: float = 0.0
        self.rss_grew_kb: float = 0.0
        self.error: str | None = None
        self.children: list[Span] = []
        self._tracer = tracer

    # ------------------------------------------------------------------
    def set(self, **attrs) -> "Span":
        """Attach result attributes discovered while the span runs."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.span_id = tracer.next_id()
        self.thread_id = threading.get_ident()
        stack = tracer.stack()
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self._ts_us = (time.perf_counter() - tracer.epoch) * 1e6
        self._rss0 = _peak_rss_kb()
        self._cpu0 = time.process_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_ms = (time.perf_counter() - self._t0) * 1e3
        self.cpu_ms = (time.process_time() - self._cpu0) * 1e3
        self.rss_peak_kb = _peak_rss_kb()
        self.rss_grew_kb = self.rss_peak_kb - self._rss0
        if exc_type is not None:
            self.error = exc_type.__name__
        tracer = self._tracer
        stack = tracer.stack()
        # unwind to (and past) this span even if an inner span leaked
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        parent = stack[-1] if stack else None
        tracer.finish(self, parent)
        return False                            # never swallow

    # ------------------------------------------------------------------
    def to_event(self, pid: int) -> dict:
        """This span as one trace-file line (Chrome keys + extras)."""
        return {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "ph": "X",
            "ts": round(self._ts_us, 1),
            "dur": round(self.wall_ms * 1e3, 1),
            "pid": pid,
            "tid": self.thread_id,
            "cpu_ms": round(self.cpu_ms, 3),
            "rss_peak_kb": round(self.rss_peak_kb, 1),
            "rss_grew_kb": round(self.rss_grew_kb, 1),
            "error": self.error,
            "args": dict(self.attrs),
        }


class _NullSpan:
    """The disabled path: one shared, do-nothing span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Owns the span forest, the id counter and the trace file."""

    def __init__(self, trace_path: str | None = None) -> None:
        self.epoch = time.perf_counter()
        self.pid = os.getpid()
        self.roots: list[Span] = []
        self.dropped = 0
        self._kept = 0
        self._ids = 0
        self._id_lock = threading.Lock()
        self._local = threading.local()
        self._file = None
        self._file_lock = threading.Lock()
        self.path = trace_path
        if trace_path is not None:
            directory = os.path.dirname(os.path.abspath(trace_path))
            os.makedirs(directory, exist_ok=True)
            # line buffered: every span line hits the OS as it is written,
            # so shards survive worker SIGTERM and a fork never inherits a
            # half-filled userspace buffer (see Tracer.abandon)
            self._file = open(trace_path, "w", buffering=1)
            self._write_line(self.meta_line())

    # ------------------------------------------------------------------
    def meta_line(self) -> dict:
        from repro import __version__
        return {"type": "meta", "format": TRACE_FORMAT,
                "repro_version": __version__, "pid": self.pid,
                "created_unix": time.time()}

    def next_id(self) -> int:
        with self._id_lock:
            self._ids += 1
            return self._ids

    def stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, attrs: dict) -> Span:
        return Span(self, name, attrs)

    # ------------------------------------------------------------------
    def finish(self, span: Span, parent: Span | None) -> None:
        """File a finished span into the forest and the trace file."""
        if self._kept < MAX_KEPT_SPANS:
            self._kept += 1
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)
        else:
            self.dropped += 1
        if self._file is not None:
            self._write_line(span.to_event(self.pid))

    def _write_line(self, payload: dict) -> None:
        with self._file_lock:
            if self._file is None:          # closed concurrently
                return
            self._file.write(json.dumps(payload) + "\n")

    def write_metrics(self, rows: list[dict], dropped: int = 0) -> None:
        """Append the closing metrics snapshot line.

        *dropped* > 0 stamps how many finished spans the in-memory
        forest refused past :data:`MAX_KEPT_SPANS` — the cap must never
        be silent (the JSONL file itself keeps every span regardless).
        """
        if self._file is not None:
            payload: dict = {"type": "metrics", "metrics": rows}
            if dropped:
                payload["dropped"] = dropped
            self._write_line(payload)

    def close(self) -> None:
        with self._file_lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def abandon(self) -> None:
        """Forget an inherited file handle without flushing or closing.

        Called in a freshly forked child on the tracer it inherited: the
        handle (and any buffered parent bytes in it) belongs to the
        parent process, so the child must neither write, flush nor close
        it — it is parked in :data:`_ABANDONED_FILES` so garbage
        collection cannot flush it either.  The child is single-threaded
        at this point, so the (possibly mid-write-locked) inherited
        ``_file_lock`` is deliberately not taken.
        """
        file = self._file
        self._file = None
        if file is not None:
            _ABANDONED_FILES.append(file)
