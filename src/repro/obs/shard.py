"""Worker trace shards: tracing that survives the fork boundary.

Before this module, a forked child of a tracing parent simply went dark
(``os.register_at_fork`` disabled instrumentation), so the workloads
that fan out over processes — ``repro explore --jobs N``, multi-config
``repro run --jobs N`` — traced only their parent.  Now a child of a
*file-backed* tracer opens its own shard file next to the parent's::

    out.jsonl                # parent trace
    out.jsonl.shard-1.jsonl  # first forked worker
    out.jsonl.shard-2.jsonl  # second forked worker
    ...

Each shard is itself a valid ``repro-trace/1`` file whose meta line
additionally carries:

* ``shard`` — the 1-based shard index (claimed atomically via
  ``open(..., "x")``, so concurrently forked workers never collide);
* ``parent_pid`` — the pid of the process that forked this one;
* ``forked_under`` — the span id (in the parent's trace) that was open
  on the forking thread at fork time, or ``None``.  This is the graft
  point: :mod:`repro.obs.merge` re-attaches the shard's root spans under
  that parent span, so a traced ``repro explore --jobs 4`` merges into
  one coherent tree with per-candidate worker spans under
  ``explore.map``.

A shard tracer re-uses the parent's ``time.perf_counter`` epoch —
``CLOCK_MONOTONIC`` is system-wide, so parent and worker timestamps
land on one comparable timeline — but starts a fresh span-id counter
(ids are only unique *per shard*; the merge re-numbers them globally).
Shards are line-buffered and valid without a closing metrics line,
because pool teardown SIGTERMs idle workers without running ``atexit``.

Only the ``fork`` start method shards; ``spawn`` children re-import from
scratch and simply run untraced.  A worker that forks again shards off
its own trace file one more level; :func:`repro.obs.merge.find_shards`
only stitches the first level — none of the repo's pools nest.
"""

from __future__ import annotations

from repro.obs.tracing import Tracer

__all__ = ["MAX_SHARDS", "shard_path", "ShardTracer", "fork_shard"]

#: Sanity bound on the shard-index claim loop (a pool has ~cpu workers;
#: thousands of shards of one trace means something is forking wild).
MAX_SHARDS = 10_000


def shard_path(parent_path: str, index: int) -> str:
    """The shard file of *parent_path* with 1-based index *index*."""
    return f"{parent_path}.shard-{index}.jsonl"


class ShardTracer(Tracer):
    """A child process's tracer, writing one shard of the parent trace."""

    def __init__(self, parent: Tracer, handle, path: str, index: int,
                 forked_under: int | None) -> None:
        # meta_line() runs inside super().__init__ on the file-backed
        # path only; here the shard fields must exist before the first
        # _write_line below, and super() is called with no path so it
        # opens nothing.
        self.shard_index = index
        self.parent_pid = parent.pid
        self.forked_under = forked_under
        super().__init__(None)
        self.epoch = parent.epoch       # one timeline across processes
        self.path = path
        self._file = handle
        self._write_line(self.meta_line())

    def meta_line(self) -> dict:
        line = super().meta_line()
        line.update({"shard": self.shard_index,
                     "parent_pid": self.parent_pid,
                     "forked_under": self.forked_under})
        return line


def fork_shard(parent: Tracer) -> ShardTracer:
    """Turn an inherited parent tracer into this child's shard tracer.

    Must be called exactly once, immediately after fork, in the child
    (the ``after_in_child`` hook in :mod:`repro.obs` does).  Reads the
    forking thread's span stack for the graft point, abandons the
    inherited parent file handle unflushed, then claims the lowest free
    shard index with an exclusive create.
    """
    if parent.path is None:
        raise ValueError("cannot shard an in-memory tracer (no file)")
    stack = parent.stack()
    forked_under = stack[-1].span_id if stack else None
    parent.abandon()
    for index in range(1, MAX_SHARDS + 1):
        path = shard_path(parent.path, index)
        try:
            handle = open(path, "x", buffering=1)
        except FileExistsError:
            continue
        return ShardTracer(parent, handle, path, index, forked_under)
    raise RuntimeError(
        f"no free shard slot under {parent.path} after {MAX_SHARDS} tries")
