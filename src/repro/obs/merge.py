"""Stitch worker trace shards into one unified span forest.

A traced multi-process run leaves a parent trace plus one shard per
forked worker (:mod:`repro.obs.shard`).  This module puts them back
together:

* :func:`find_shards` — discover ``<trace>.shard-<n>.jsonl`` files next
  to a parent trace, ordered by shard index;
* :func:`merge_trace` — parse parent + shards and return one
  :class:`~repro.obs.stats.TraceFile` whose forest grafts each shard's
  root spans under the parent span they were forked under (the shard
  meta's ``forked_under`` id), so ``repro explore --jobs 4`` renders as
  one tree with per-candidate worker spans under ``explore.map``;
* :func:`write_merged_trace` — write that merged forest back out as a
  single schema-valid ``repro-trace/1`` file.

Merging is deterministic: shards are taken in index order, events keep
their file order within each source, and span ids are renumbered with
one global counter in that traversal order (per-shard ids restart at 1,
so raw ids collide across processes).  ``pid``/``tid`` are preserved on
every event — the Chrome/Perfetto export of a merged trace shows each
worker as its own process track on one shared timeline (shards inherit
the parent's monotonic epoch).

Shard validation is strict: every shard must be a well-formed
``repro-trace/1`` file whose meta line carries ``shard`` and
``parent_pid``, and its ``parent_pid`` must match the parent trace's
``pid`` — anything else raises :class:`~repro.obs.stats.TraceError`.
"""

from __future__ import annotations

import json
import os
import re

from repro.obs.stats import TraceError, TraceFile, _link, load_trace

__all__ = ["find_shards", "load_shard", "merge_trace",
           "write_merged_trace"]


def find_shards(trace_path: str) -> list[str]:
    """Shard files of *trace_path*, sorted by shard index.

    Only first-level shards are found (``<trace>.shard-<n>.jsonl``); a
    worker that forked again shards off its own file one more level,
    which none of the repo's pools do.
    """
    directory = os.path.dirname(os.path.abspath(trace_path))
    base = os.path.basename(trace_path)
    pattern = re.compile(re.escape(base) + r"\.shard-(\d+)\.jsonl$")
    shards: list[tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    for name in names:
        match = pattern.match(name)
        if match:
            shards.append((int(match.group(1)),
                           os.path.join(directory, name)))
    return [path for _index, path in sorted(shards)]


def load_shard(path: str) -> TraceFile:
    """Parse one shard file, checking the shard-specific meta keys."""
    shard = load_trace(path)
    missing = [key for key in ("shard", "parent_pid")
               if key not in shard.meta]
    if missing:
        raise TraceError(
            f"{path}:1: not a worker shard (meta line missing {missing})")
    return shard


def merge_trace(trace_path: str,
                shard_paths: list[str] | None = None) -> TraceFile:
    """Merge a parent trace and its worker shards into one forest.

    *shard_paths* defaults to :func:`find_shards`; a parent with no
    shards merges to itself (same events, ids renumbered).
    """
    parent = load_trace(trace_path)
    if shard_paths is None:
        shard_paths = find_shards(trace_path)
    shards = [load_shard(path) for path in shard_paths]
    for path, shard in zip(shard_paths, shards):
        if shard.meta["parent_pid"] != parent.meta.get("pid"):
            raise TraceError(
                f"{path}: shard was forked from pid "
                f"{shard.meta['parent_pid']}, but {trace_path} is pid "
                f"{parent.meta.get('pid')}")

    events: list[dict] = []
    next_id = 0

    def renumber(source_events: list[dict]) -> dict[int, int]:
        nonlocal next_id
        id_map: dict[int, int] = {}
        for event in source_events:
            next_id += 1
            id_map[event["id"]] = next_id
        return id_map

    parent_ids = renumber(parent.events)
    for event in parent.events:
        merged = dict(event)
        merged["id"] = parent_ids[event["id"]]
        if event["parent"] is not None:
            merged["parent"] = parent_ids[event["parent"]]
        events.append(merged)

    metrics = list(parent.metrics)
    dropped = parent.dropped
    for shard in shards:
        shard_ids = renumber(shard.events)
        graft = parent_ids.get(shard.meta.get("forked_under"))
        for event in shard.events:
            merged = dict(event)
            merged["id"] = shard_ids[event["id"]]
            if event["parent"] is not None:
                merged["parent"] = shard_ids[event["parent"]]
            else:
                merged["parent"] = graft
            events.append(merged)
        metrics.extend(shard.metrics)
        dropped += shard.dropped

    meta = dict(parent.meta)
    meta["merged_shards"] = len(shards)
    meta["shard_pids"] = [shard.meta["pid"] for shard in shards]
    return TraceFile(meta=meta, roots=_link(events), events=events,
                     metrics=metrics, dropped=dropped)


def write_merged_trace(trace_path: str, out_path: str,
                       shard_paths: list[str] | None = None) -> str:
    """Merge and write one unified ``repro-trace/1`` JSONL file."""
    merged = merge_trace(trace_path, shard_paths)
    with open(out_path, "w") as handle:
        handle.write(json.dumps(merged.meta) + "\n")
        for event in merged.events:
            handle.write(json.dumps(event) + "\n")
        closing: dict = {"type": "metrics", "metrics": merged.metrics}
        if merged.dropped:
            closing["dropped"] = merged.dropped
        handle.write(json.dumps(closing) + "\n")
    return out_path
