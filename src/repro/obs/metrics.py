"""Thread-safe metrics: counters, gauges, histograms, one registry.

The registry is the repo's single telemetry vocabulary — the pipeline's
cache counters, the kernel layer's per-backend call accounting, the
explorer's journal statistics and the serving stack's request metrics
all record into :class:`MetricsRegistry` instances (serving owns its
own always-on registry; everything else shares the process-global one
behind :func:`repro.obs.enable`).

Design constraints:

* zero dependencies (stdlib only) — importable from anywhere, including
  :mod:`repro.kernels` which must stay import-light;
* thread-safe recording — the serving server records from many handler
  threads, the micro-batcher from its worker thread;
* bounded memory — histograms keep exact count/sum/min/max forever but
  estimate quantiles from a rolling window (a long-lived server stays
  O(1));
* proper quantiles — linear interpolation (:func:`quantile`, the
  ``numpy.quantile(..., method="linear")`` rule), not the biased
  nearest-rank-by-truncation this replaced in ``serving/metrics.py``.

Exports are JSON (:meth:`MetricsRegistry.to_dict`) and the Prometheus
text exposition format (:meth:`MetricsRegistry.to_prometheus`, served at
``GET /metrics``).
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Iterable

__all__ = ["quantile", "Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_WINDOW", "HELP_TEXT", "prometheus_name",
           "escape_label_value"]

#: Default rolling-window size for histogram quantile estimation.
DEFAULT_WINDOW = 2048

#: ``# HELP`` text for the repo's documented metric vocabulary
#: (docs/observability.md).  Kept here — not as a metric kwarg — so help
#: text never masquerades as a label schema; ad-hoc metrics without an
#: entry simply render without a HELP line.  Extend via
#: :meth:`MetricsRegistry.describe` for registry-local metrics.
HELP_TEXT: dict[str, str] = {
    "pipeline.cache.hits": "Pipeline stage cache hits",
    "pipeline.cache.misses": "Pipeline stage cache misses",
    "kernels.calls": "Kernel dispatches per backend and kernel",
    "kernels.seconds": "Cumulative kernel seconds per backend and kernel",
    "explore.journal_hits": "Explore candidates satisfied from the journal",
    "explore.journal_writes": "Explore candidate records written",
    "explore.candidates_evaluated": "Explore candidates actually evaluated",
    "explore.candidate_seconds": "Wall seconds per evaluated candidate",
    "explore.workers": "Worker processes of the last explore pool",
    "explore.worker_utilization":
        "Sum of candidate seconds / (workers * wall seconds)",
    "explore.retries": "Explore candidate attempts retried after a failure",
    "explore.quarantined":
        "Explore candidates quarantined as typed failure records",
    "explore.corrupt_records":
        "Corrupt or truncated journal records skipped on resume",
    "faults.injected": "Faults injected per fault-model kind",
    "serving.requests": "HTTP inference requests served",
    "serving.samples": "Samples classified across all requests",
    "serving.batches": "Micro-batcher flushes",
    "serving.errors": "Failed inference requests",
    "serving.shed_total": "Requests shed at the queue depth bound (503)",
    "serving.deadline_expired":
        "Queued requests dropped past their deadline",
    "serving.energy_nj": "Estimated energy spent serving, in nanojoules",
    "serving.queue_depth": "Micro-batcher queue depth",
    "serving.latency_seconds": "End-to-end request latency in seconds",
    "serving.batch_size": "Micro-batcher flush sizes",
    "serving.model_requests": "Requests per served model",
    "serving.model_samples": "Samples per served model",
    "serving.model_energy_nj": "Energy per served model, in nanojoules",
    "obs.spans_dropped": "Spans dropped past the in-memory forest cap",
}


def quantile(values: Iterable[float], q: float) -> float:
    """Linear-interpolation quantile of *values* (``0 <= q <= 1``).

    Matches ``numpy.quantile(values, q)`` (the default "linear" method):
    the quantile position is ``q * (n - 1)`` and the two bracketing
    order statistics are interpolated.  An empty sequence returns 0.0 —
    the snapshot-friendly convention every caller here wants.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile fraction must be in [0, 1], got {q}")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return float(ordered[low])
    fraction = position - low
    return float(ordered[low] * (1.0 - fraction) + ordered[high] * fraction)


class Counter:
    """Monotonically increasing value (float so it can carry seconds)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depth, worker count)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Distribution tracker: exact count/sum/min/max, windowed quantiles.

    The count, sum and extremes cover *every* observation ever made; the
    quantiles are estimated from the last ``window`` observations so the
    memory footprint is bounded (the standard rolling-window trade-off
    for long-lived servers).
    """

    __slots__ = ("_lock", "_count", "_sum", "_min", "_max", "_window")

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError("histogram window must be >= 1")
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._window: deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self._window.append(value)

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        with self._lock:
            return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        with self._lock:
            return self._max if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Windowed linear-interpolation quantile (0.0 when empty)."""
        with self._lock:
            window = list(self._window)
        return quantile(window, q)

    def summary(self, quantiles: tuple[float, ...] = (0.5, 0.95, 0.99),
                ) -> dict[str, float]:
        """One JSON-able row: count/sum/mean/min/max plus quantiles."""
        with self._lock:
            count, total = self._count, self._sum
            low = self._min if count else 0.0
            high = self._max if count else 0.0
            window = list(self._window)
        row: dict[str, float] = {
            "count": count, "sum": total,
            "mean": total / count if count else 0.0,
            "min": low, "max": high,
        }
        for q in quantiles:
            row[f"p{format(q * 100, 'g')}"] = quantile(window, q)
        return row


# ----------------------------------------------------------------------
# Prometheus text exposition helpers
# ----------------------------------------------------------------------
def prometheus_name(name: str) -> str:
    """Sanitise a dotted metric name into ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    safe = "".join(c if c.isalnum() or c in "_:" else "_" for c in name)
    if not safe or not (safe[0].isalpha() or safe[0] in "_:"):
        safe = "_" + safe
    return safe


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format rules."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_suffix(labels: tuple[tuple[str, str], ...],
                  extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = labels + extra
    if not items:
        return ""
    inner = ",".join(f'{prometheus_name(key)}="{escape_label_value(val)}"'
                     for key, val in items)
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if value != value:                       # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


# ----------------------------------------------------------------------
class MetricsRegistry:
    """A named, labelled family of counters, gauges and histograms.

    Metric instances are memoized by ``(name, sorted labels)`` — calling
    ``registry.counter("kernels.calls", backend="fast")`` twice returns
    the same :class:`Counter`.  A name is bound to one metric kind; mixing
    kinds under one name raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], Any] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}

    def describe(self, name: str, text: str) -> None:
        """Attach registry-local ``# HELP`` text to a metric name.

        Overrides the shared :data:`HELP_TEXT` vocabulary for this
        registry only; exposition escapes the text per the format rules.
        """
        with self._lock:
            self._help[name] = text

    # ------------------------------------------------------------------
    def _get(self, kind: str, name: str, labels: dict[str, Any],
             factory) -> Any:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        with self._lock:
            bound = self._kinds.get(name)
            if bound is not None and bound != kind:
                raise ValueError(
                    f"metric {name!r} is a {bound}, not a {kind}")
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
                self._kinds[name] = kind
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels, Gauge)

    def histogram(self, name: str, window: int = DEFAULT_WINDOW,
                  **labels: Any) -> Histogram:
        return self._get("histogram", name, labels,
                         lambda: Histogram(window=window))

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every metric (test isolation)."""
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()
            self._help.clear()

    def _sorted_items(self):
        with self._lock:
            items = sorted(self._metrics.items())
            kinds = dict(self._kinds)
            help_text = dict(self._help)
        return items, kinds, help_text

    def to_dict(self) -> list[dict]:
        """Flat, JSON-able metric rows sorted by (name, labels)."""
        items, kinds, _ = self._sorted_items()
        rows = []
        for (name, labels), metric in items:
            row: dict[str, Any] = {"name": name, "kind": kinds[name],
                                   "labels": dict(labels)}
            if isinstance(metric, Histogram):
                row.update(metric.summary())
            else:
                row["value"] = metric.value
            rows.append(row)
        return rows

    def to_prometheus(self) -> str:
        """Render every metric in the Prometheus text exposition format.

        Counters and gauges become single samples; histograms become
        summaries (``name{quantile="0.5"}``, ``name_count``,
        ``name_sum``).  Dotted names are sanitised to underscores, label
        values escaped per the format rules, and each metric family gets
        its ``# HELP`` line (from :data:`HELP_TEXT` or
        :meth:`describe`) ahead of its ``# TYPE`` line.
        """
        items, kinds, help_text = self._sorted_items()
        lines: list[str] = []
        typed: set[str] = set()
        for (name, labels), metric in items:
            pname = prometheus_name(name)
            kind = kinds[name]
            if name not in typed:
                typed.add(name)
                help_line = help_text.get(name, HELP_TEXT.get(name))
                if help_line:
                    escaped = (help_line.replace("\\", "\\\\")
                               .replace("\n", "\\n"))
                    lines.append(f"# HELP {pname} {escaped}")
                ptype = {"counter": "counter", "gauge": "gauge",
                         "histogram": "summary"}[kind]
                lines.append(f"# TYPE {pname} {ptype}")
            if isinstance(metric, Histogram):
                summary = metric.summary()
                for q in (0.5, 0.95, 0.99):
                    suffix = _label_suffix(
                        labels, (("quantile", format(q, "g")),))
                    value = summary["p" + format(q * 100, "g")]
                    lines.append(f"{pname}{suffix} {_fmt(value)}")
                lines.append(f"{pname}_count{_label_suffix(labels)} "
                             f"{_fmt(summary['count'])}")
                lines.append(f"{pname}_sum{_label_suffix(labels)} "
                             f"{_fmt(summary['sum'])}")
            else:
                lines.append(
                    f"{pname}{_label_suffix(labels)} {_fmt(metric.value)}")
        return "\n".join(lines) + ("\n" if lines else "")
