"""Fig. 10: normalised neuron area at iso-speed (8- and 12-bit)."""

from conftest import emit

from repro.experiments.power_area import format_hardware_table, run_figure10


def test_fig10_area(benchmark):
    rows = benchmark(run_figure10)
    emit("fig10", format_hardware_table(
        rows, "Fig 10 - normalized neuron area @ iso-speed"))

    by_key = {(r.bits, r.num_alphabets): r.normalized for r in rows}
    # paper's headline: ~37% (8b) and ~62% (12b) MAN area reduction
    assert 0.25 <= 1 - by_key[(8, 1)] <= 0.45
    assert 0.52 <= 1 - by_key[(12, 1)] <= 0.72
    # the key scaling claim: 12-bit savings exceed 8-bit savings
    assert by_key[(12, 1)] < by_key[(8, 1)]
    for bits in (8, 12):
        assert by_key[(bits, 1)] < by_key[(bits, 2)] < by_key[(bits, 4)] <= 1.05
