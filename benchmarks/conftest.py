"""Shared helpers for the benchmark suite.

Training-backed benches run a *tiny* budget so the whole suite finishes in
minutes; the printed tables are the same rows the paper reports (regenerate
the paper-scale numbers with ``python -m repro.experiments.runner --full``).
Each bench writes its table to ``results/`` and prints it, so running with
``pytest benchmarks/ --benchmark-only -s`` shows every reproduced row.
"""

import os

import pytest

from repro.experiments.config import Budget

#: Budget used by training-backed benches.
TINY = Budget("tiny", n_train=400, n_test=200, max_epochs=5,
              retrain_epochs=3)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def emit(name: str, text: str) -> None:
    """Print a reproduced table and persist it under results/."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


@pytest.fixture
def tiny_budget():
    return TINY
