"""Shared helpers for the benchmark suite.

Training-backed benches run a *tiny* budget so the whole suite finishes in
minutes; the printed tables are the same rows the paper reports (regenerate
the paper-scale numbers with ``python -m repro.experiments.runner --full``).
Each bench writes its table to ``results/`` and prints it, so running with
``pytest benchmarks/ --benchmark-only -s`` shows every reproduced row.
"""

import json
import os
import socket

import pytest

import repro
from repro.experiments.config import Budget

#: Budget used by training-backed benches.
TINY = Budget("tiny", n_train=400, n_test=200, max_epochs=5,
              retrain_epochs=3)

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")
RESULTS_DIR = os.path.join(REPO_ROOT, "results")


def emit(name: str, text: str) -> None:
    """Print a reproduced table and persist it under results/."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


def emit_json(name: str, results: dict, version: int = 1,
              merge: bool = False) -> str:
    """Write machine-readable bench results as ``BENCH_<name>.json``.

    The one writer every perf bench shares: wraps *results* in the
    ``{"format": "repro-bench/<name>/<version>", "results": ...}``
    envelope and writes it at the repo root (next to the text tables'
    ``emit``), where the CI perf-smoke jobs and the perf trajectory
    tooling expect it.  Returns the path written.

    Every payload carries ``host``, ``repro_version`` and ``git_sha`` so
    numbers from different machines / releases / commits are never
    compared blindly.  The stamps are attribution only — they stay out
    of every cache key (the RPR001 allowlist covers ``benchmarks/``).

    With ``merge=True`` an existing same-format payload's result
    sections are kept (new keys win) and the stamps are refreshed —
    multi-script suites like ``training`` combine their sections this
    way.  A payload from another format version is replaced outright.
    """
    from repro.obs.history import git_sha

    payload = {"format": f"repro-bench/{name}/{version}",
               "host": socket.gethostname(),
               "repro_version": repro.__version__,
               "git_sha": git_sha(cwd=REPO_ROOT),
               "results": results}
    path = os.path.join(REPO_ROOT, f"BENCH_{name}.json")
    if merge:
        try:
            with open(path) as handle:
                prior = json.load(handle)
        except (OSError, ValueError):
            prior = None
        if prior is not None and prior.get("format") == payload["format"] \
                and isinstance(prior.get("results"), dict):
            payload["results"] = {**prior["results"], **results}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@pytest.fixture
def tiny_budget():
    return TINY
