"""Resiliency bench: accuracy-vs-fault-rate curves, ASM vs conventional.

The paper's thesis is that neural networks tolerate multiplier error;
the natural robustness question is whether the alphabet-set designs
*also* tolerate device faults no worse than the conventional deployment.
This bench sweeps a deterministic activation-upset fault model over the
digits MLP at three rates for conventional/asm2/asm8, renders the curve,
and writes the gated scalars into ``BENCH_faults.json``:

* ``min_clean_accuracy`` — floor: every design must still classify at
  fault rate 0 (catches a broken train/constrain path);
* ``worst_excess_degradation_pp`` — ceiling: the worst ASM accuracy drop
  beyond conventional's at the same rate, in percentage points.

The CI ``faults-smoke`` job runs this bench and ``repro bench --check``
enforces both gates against the ledgered history.
"""

from conftest import TINY, emit, emit_json

from repro.faults import ResiliencyReport, format_resiliency_report
from repro.pipeline import Pipeline, PipelineConfig

DESIGNS = ("conventional", "asm2", "asm8")
RATES = (0.001, 0.005, 0.02)


def test_bench_faults_resiliency(benchmark, tmp_path):
    budget = {"name": TINY.name, "n_train": TINY.n_train,
              "n_test": TINY.n_test, "max_epochs": TINY.max_epochs,
              "retrain_epochs": TINY.retrain_epochs}
    config = PipelineConfig(
        app="mnist_mlp", designs=DESIGNS,
        stages=("train", "quantize", "constrain", "evaluate", "faults"),
        budget=budget, cache_dir=str(tmp_path / "cache"),
        fault_rates=RATES, fault_kind="activation_upset", fault_seed=0)

    report = benchmark.pedantic(
        lambda: ResiliencyReport.from_pipeline_report(
            Pipeline(config).run()),
        rounds=1, iterations=1)

    emit("faults_resiliency", format_resiliency_report(report))
    emit_json("faults", report.bench_results())

    assert set(report.clean) == set(DESIGNS)
    assert len(report.points) == len(DESIGNS) * len(RATES)
    # every non-zero rate actually injected faults
    assert all(point.injected > 0 for point in report.points)
    # the tiny budget still trains a usable digit classifier
    assert report.min_clean_accuracy() > 0.5
