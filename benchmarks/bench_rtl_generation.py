"""Bench: Verilog generation + model-equivalence check for every datapath.

Not a paper table — infrastructure validation: generating all twelve RTL
modules and spot-proving the emitted case logic against the functional
multiplier must stay fast enough to run in CI.
"""

from conftest import emit

from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4
from repro.asm.constraints import WeightConstrainer
from repro.asm.multiplier import AlphabetSetMultiplier
from repro.hardware.report import format_table
from repro.rtl import (
    evaluate_mac_product,
    generate_asm_mac,
    generate_conventional_mac,
    module_name,
)


def test_rtl_generation_and_equivalence(benchmark):
    def generate_and_check():
        results = []
        for bits in (8, 12):
            results.append((module_name(bits, None),
                            len(generate_conventional_mac(bits).splitlines()),
                            "n/a"))
            for aset in (ALPHA_4, ALPHA_2, ALPHA_1):
                source = generate_asm_mac(bits, aset, fallback="nearest")
                model = AlphabetSetMultiplier(bits, aset,
                                              fallback="nearest")
                constrainer = WeightConstrainer(bits, aset)
                checked = 0
                limit = 2 ** (bits - 1)
                for raw in range(-limit + 1, limit, limit // 4):
                    weight = constrainer.constrain(raw)
                    assert evaluate_mac_product(source, weight, 57, bits) \
                        == model.multiply(weight, 57)
                    checked += 1
                results.append((module_name(bits, aset),
                                len(source.splitlines()), checked))
        return results

    results = benchmark(generate_and_check)
    emit("rtl_generation", format_table(
        ["Module", "Verilog lines", "Equivalence points"],
        [list(r) for r in results],
        title="RTL generation + functional equivalence"))
    assert len(results) == 8
