"""Table II: face-detection accuracy across alphabet counts (12-bit)."""

from conftest import TINY, emit

from repro.experiments.accuracy import format_accuracy_table, run_accuracy_grid


def test_table2_face_accuracy(benchmark):
    grid = benchmark.pedantic(
        lambda: run_accuracy_grid("face", budget_override=TINY),
        rounds=1, iterations=1)
    emit("table2", format_accuracy_table(
        grid, "Table II - NN accuracy, face detection (tiny budget)"))
    # paper shape: conventional row first, losses small on this easy task
    assert grid.baseline.num_alphabets is None
    assert grid.baseline.accuracy > 0.7
    assert grid.max_loss < 0.15
