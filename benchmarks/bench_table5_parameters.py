"""Table V: experimental parameters (feature size, iso-speed clocks)."""

from conftest import emit

from repro.experiments.tables import format_table5, table5_rows
from repro.hardware.neuron import make_neuron


def test_table5_parameters(benchmark):
    """Verify the Table V conditions by building every design at the paper
    clocks (the construction is what the benchmark times)."""

    def build_all():
        return [make_neuron(bits) for bits in (8, 12)]

    designs = benchmark(build_all)
    emit("table5", format_table5())
    assert designs[0].clock_ghz == 3.0
    assert designs[1].clock_ghz == 2.5
    rows = dict(table5_rows())
    assert rows["Feature Size"] == "45nm"
