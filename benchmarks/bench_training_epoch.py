"""Whole-epoch training throughput: planned fast kernels vs reference.

The training-kernel family (:mod:`repro.kernels.training`) claims a
bit-identical fast path for the forward/backward/update loop that
dominates every ``train`` and ``constrain`` stage.  This bench times one
constrained-retraining epoch of the paper-scale 8-bit MLP — Algorithm
2's inner loop: mini-batch SGD with the weight projection after every
step — end to end on both backends, asserts the resulting parameters
are bitwise identical, and merges ``train_epoch_mlp_8b`` (gated) plus
an informational plain-epoch section into ``BENCH_training.json``
alongside the projection-kernel rows.  The ``perf-smoke`` CI job runs
it and enforces the epoch speedup floor.
"""

import time

import numpy as np
from conftest import emit, emit_json

from repro.asm.alphabet import ALPHA_2
from repro.datasets.registry import mlp
from repro.hardware.report import format_table
from repro.nn.optim import SGD
from repro.nn.trainer import Trainer
from repro.training.constrained import (
    ConstraintProjector,
    constrained_trainer,
)

#: acceptance bar: fast >= 2x reference on the 8-bit constrained epoch
SPEEDUP_FLOOR = 2.0

SIZES = [1024, 100, 10]
BITS = 8
BATCH = 32
N_SAMPLES = 2048


def _epoch_data(rng):
    x = rng.normal(size=(N_SAMPLES, SIZES[0]))
    y = np.eye(SIZES[-1])[rng.integers(0, SIZES[-1], size=N_SAMPLES)]
    return x, y


def _build(backend, constrained):
    network = mlp(SIZES, name="bench", seed=5)
    network.set_train_backend(backend)
    optimizer = SGD(network, learning_rate=0.05, momentum=0.9)
    if constrained:
        projector = ConstraintProjector(network, BITS, ALPHA_2,
                                        backend=backend)
        trainer = constrained_trainer(network, optimizer, projector,
                                      batch_size=BATCH,
                                      rng=np.random.default_rng(5))
    else:
        trainer = Trainer(network, optimizer, batch_size=BATCH,
                          rng=np.random.default_rng(5))
    return network, trainer


def _epoch_ms(trainer, x, y, passes=3):
    """Best-of-*passes* ms per epoch (first pass warms plans/caches)."""
    trainer.train_epoch(x, y)
    best = float("inf")
    for _ in range(passes):
        start = time.perf_counter()
        trainer.train_epoch(x, y)
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def _state_bytes(network):
    return b"".join(param.tobytes() for layer in network.state()
                    for param in layer.values())


def test_training_epoch_backends(benchmark):
    x, y = _epoch_data(np.random.default_rng(7))

    # identity first: two seeded epochs must agree byte for byte
    # (the speed runs below reuse fresh trainers)
    for constrained in (True, False):
        net_ref, tr_ref = _build("reference", constrained)
        net_fast, tr_fast = _build("fast", constrained)
        loss_ref = tr_ref.train_epoch(x, y)
        loss_fast = tr_fast.train_epoch(x, y)
        assert loss_ref == loss_fast, \
            f"training backends diverged (constrained={constrained})"
        assert _state_bytes(net_ref) == _state_bytes(net_fast), \
            f"training backends diverged (constrained={constrained})"

    results = {}
    for section, constrained in (("train_epoch_mlp_8b", True),
                                 ("plain_epoch_mlp", False)):
        _, tr_ref = _build("reference", constrained)
        _, tr_fast = _build("fast", constrained)
        ref_ms = _epoch_ms(tr_ref, x, y)
        fast_ms = _epoch_ms(tr_fast, x, y)
        results[section] = {
            "batch_size": BATCH,
            "samples": N_SAMPLES,
            "reference_ms": round(ref_ms, 2),
            "fast_ms": round(fast_ms, 2),
            "speedup": round(ref_ms / fast_ms, 2),
        }

    _, timed = _build("fast", True)
    benchmark.pedantic(timed.train_epoch, args=(x, y), rounds=1,
                       iterations=1)
    emit_json("training", results, merge=True)

    rows = [[name, entry["samples"], entry["batch_size"],
             f"{entry['reference_ms']:.1f}", f"{entry['fast_ms']:.1f}",
             f"{entry['speedup']:.2f}x"]
            for name, entry in results.items()]
    emit("bench_training_epoch", format_table(
        ["Workload", "Samples", "Batch", "reference (ms)", "fast (ms)",
         "Speedup"],
        rows, title="Training-kernel backends - one epoch, "
                    "MLP 1024-100-10 (8-bit constrained retrain)"))

    epoch_speedup = results["train_epoch_mlp_8b"]["speedup"]
    assert epoch_speedup >= SPEEDUP_FLOOR, \
        f"fast training epoch only {epoch_speedup:.2f}x reference on " \
        f"the 8-bit constrained MLP (floor {SPEEDUP_FLOOR}x)"
