"""Fig. 9: per-application inference energy, grouped by network class."""

from conftest import emit

from repro.experiments.energy import (
    FIGURE9_GROUPS,
    format_energy_table,
    run_figure9,
)


def test_fig9_energy(benchmark):
    rows = benchmark.pedantic(run_figure9, rounds=1, iterations=1)
    emit("fig9", format_energy_table(
        rows, "Fig 9 - per-inference energy by application"))

    apps = {row.app for row in rows}
    assert apps == {a for group in FIGURE9_GROUPS.values() for a in group}
    # within every app: MAN < 2-alph < 4-alph < conventional
    for app in apps:
        series = {row.design: row.energy_nj
                  for row in rows if row.app == app}
        assert series["{1}"] < series["{1,3}"] < series["{1,3,5,7}"] \
            < series["conventional"]
    # paper: absolute savings grow with NN size — SVHN (1M synapses) saves
    # more nJ than the MNIST MLP (100k synapses)
    def saving(app):
        series = {row.design: row.energy_nj
                  for row in rows if row.app == app}
        return series["conventional"] - series["{1}"]
    assert saving("svhn") > saving("mnist_mlp")
