"""Exploration benchmarks: Pareto reduction cost + a tiny end-to-end grid.

Two things matter for the explorer's scalability: (1) the Pareto
reduction is the only part whose cost grows with the candidate count
alone (quadratic pairwise sweep), so time it on a large synthetic cloud;
(2) a real (tiny) grid exploration through the shared stage cache shows
the end-to-end path and emits the frontier table the subsystem exists to
produce.
"""

import numpy as np
from conftest import TINY, emit

from repro.explore import (
    SearchSpace,
    format_exploration_report,
    pareto_frontier,
    resolve_objectives,
    run_exploration,
)

N_POINTS = 2000
OBJECTIVES = resolve_objectives(("accuracy", "energy_nj", "area_um2"))


def _synthetic_cloud(n: int) -> list[dict]:
    rng = np.random.default_rng(11)
    points = []
    for accuracy, energy, area in zip(rng.uniform(0.5, 1.0, n),
                                      rng.uniform(10.0, 100.0, n),
                                      rng.uniform(1e3, 1e5, n)):
        points.append({"accuracy": float(accuracy),
                       "energy_nj": float(energy),
                       "area_um2": float(area)})
    return points


def test_bench_pareto_reduction(benchmark):
    points = _synthetic_cloud(N_POINTS)
    frontier = benchmark(pareto_frontier, points, OBJECTIVES)
    assert 0 < len(frontier) < N_POINTS
    # frontier members are mutually non-dominated by construction;
    # spot-check the extremes survived
    best_acc = max(range(N_POINTS),
                   key=lambda i: points[i]["accuracy"])
    assert best_acc in frontier


def test_bench_explore_tiny_grid(benchmark, tmp_path):
    budget = {"name": TINY.name, "n_train": TINY.n_train,
              "n_test": TINY.n_test, "max_epochs": TINY.max_epochs,
              "retrain_epochs": TINY.retrain_epochs}
    space = SearchSpace(app="face", name="bench-grid",
                        designs=("conventional", "asm2", "asm1"),
                        budgets=(budget,), seeds=(0,))
    report = benchmark.pedantic(
        lambda: run_exploration(space, str(tmp_path / "journal"), jobs=2),
        rounds=1, iterations=1)

    emit("explore_pareto", format_exploration_report(report))
    assert len(report.records) == 3
    assert report.frontier
