"""Ablation: per-layer sensitivity to ASM approximation (§VI.E's premise).

Approximates each layer of a trained network in isolation and measures the
accuracy drop — the evidence behind the paper's mixed-alphabet plans
(spend alphabets on the layers that hurt the most when approximated).
"""

from conftest import TINY, emit

from repro.analysis.sensitivity import layer_sensitivity
from repro.asm.alphabet import ALPHA_1
from repro.datasets import build_model, load_dataset
from repro.hardware.report import format_table
from repro.nn.optim import SGD
from repro.nn.trainer import Trainer


def _train():
    data = load_dataset("tich", n_train=TINY.n_train, n_test=TINY.n_test,
                        seed=0)
    model = build_model("tich", seed=1)
    trainer = Trainer(model, SGD(model, 0.05), batch_size=32, patience=2)
    trainer.fit(data.flat_train, data.y_train_onehot, data.flat_test,
                data.y_test, max_epochs=TINY.max_epochs)
    return model, data


def test_ablation_layer_sensitivity(benchmark):
    model, data = _train()
    results = benchmark.pedantic(
        lambda: layer_sensitivity(model, data.flat_test, data.y_test,
                                  bits=8, alphabet_set=ALPHA_1),
        rounds=1, iterations=1)

    rows = [[entry.layer_index, entry.layer_name,
             f"{entry.accuracy * 100:.2f}", f"{entry.drop * 100:.2f}"]
            for entry in results]
    emit("ablation_layer_sensitivity", format_table(
        ["Layer #", "Layer", "Accuracy (%)", "Drop (%)"],
        rows,
        title="Ablation - per-layer MAN sensitivity (TICH, no retraining)"))

    assert len(results) == 5   # the 5-layer TICH MLP
    # approximating a single layer never destroys the network outright
    for entry in results:
        assert entry.accuracy > 0.05
