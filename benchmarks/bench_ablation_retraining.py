"""Ablation: constrained retraining vs post-hoc deployment.

The paper's central methodological claim is that *retraining with the
constraints in place* recovers the accuracy an approximate multiplier
loses.  This bench deploys the same trained network three ways:

* conventional engine (baseline),
* MAN engine without retraining (quartets snap via the hardware fallback),
* MAN engine after constrained retraining.
"""

from conftest import TINY, emit

from repro.asm.alphabet import ALPHA_1
from repro.asm.constraints import WeightConstrainer
from repro.datasets import build_model, load_dataset
from repro.hardware.report import format_table
from repro.nn.optim import SGD
from repro.nn.quantized import QuantizationSpec, QuantizedNetwork
from repro.nn.trainer import Trainer
from repro.training.constrained import ConstraintProjector, constrained_trainer


def _run():
    data = load_dataset("svhn", n_train=TINY.n_train, n_test=TINY.n_test,
                        seed=0)
    model = build_model("svhn", seed=1)
    trainer = Trainer(model, SGD(model, 0.05), batch_size=32, patience=2)
    trainer.fit(data.flat_train, data.y_train_onehot, data.flat_test,
                data.y_test, max_epochs=TINY.max_epochs)

    baseline = QuantizedNetwork.from_float(
        model, QuantizationSpec(8)).accuracy(data.flat_test, data.y_test)
    posthoc = QuantizedNetwork.from_float(
        model, QuantizationSpec(8, ALPHA_1, fallback="nearest"),
    ).accuracy(data.flat_test, data.y_test)

    projector = ConstraintProjector(model, 8, ALPHA_1)
    retrainer = constrained_trainer(model, SGD(model, 0.0125), projector,
                                    batch_size=32, patience=2)
    retrainer.fit(data.flat_train, data.y_train_onehot, data.flat_test,
                  data.y_test, max_epochs=TINY.retrain_epochs)
    constrainer = WeightConstrainer(8, ALPHA_1)
    retrained = QuantizedNetwork.from_float(
        model, QuantizationSpec(8, ALPHA_1, constrainer=constrainer),
    ).accuracy(data.flat_test, data.y_test)
    return baseline, posthoc, retrained


def test_ablation_retraining(benchmark):
    baseline, posthoc, retrained = benchmark.pedantic(
        _run, rounds=1, iterations=1)
    emit("ablation_retraining", format_table(
        ["Deployment", "Accuracy (%)"],
        [["conventional 8-bit", f"{baseline * 100:.2f}"],
         ["MAN, no retraining (nearest fallback)", f"{posthoc * 100:.2f}"],
         ["MAN, constrained retraining", f"{retrained * 100:.2f}"]],
        title="Ablation - retraining vs post-hoc MAN deployment (SVHN)"))
    # retraining must recover (most of) the post-hoc loss
    assert retrained >= posthoc - 0.02
    assert retrained >= baseline - 0.12
