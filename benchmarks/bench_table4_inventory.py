"""Table IV: benchmark inventory — regenerated and verified exactly."""

from conftest import emit

from repro.experiments.tables import format_table4, table4_rows


def test_table4_inventory(benchmark):
    rows = benchmark(table4_rows)   # includes exact-count verification
    emit("table4", format_table4())
    published = {
        "mnist_mlp": (110, 103510),
        "mnist_cnn": (8010, 51946),
        "face": (102, 102702),
        "svhn": (1560, 1054260),
        "tich": (786, 421186),
    }
    built = {(r[3], r[4]) for r in rows}
    assert built == set(published.values())
