"""Ablation: CSHM pre-computer sharing factor.

The ASM only wins when the alphabet bank is amortised across MAC units
(paper §III: "ASMs will only be advantageous if ... shared").  This bench
sweeps the cluster size and shows the per-neuron cost of multi-alphabet
ASMs falling with sharing while the MAN (bankless) is indifferent.
"""

from conftest import emit

from repro.asm.alphabet import ALPHA_1, ALPHA_4
from repro.hardware.neuron import NeuronConfig, make_neuron
from repro.hardware.report import format_table


def test_ablation_sharing_factor(benchmark):
    def sweep():
        results = {}
        for share in (1, 2, 4, 8):
            config = NeuronConfig(share_units=share)
            for aset in (ALPHA_4, ALPHA_1):
                cost = make_neuron(8, aset, config=config).cost()
                results[(share, str(aset))] = cost
        return results

    results = benchmark(sweep)

    rows = [[share, aset, f"{cost.area_um2:.0f}", f"{cost.power_uw:.0f}"]
            for (share, aset), cost in sorted(results.items())]
    emit("ablation_sharing", format_table(
        ["Share units", "Alphabet set", "Area (um2)", "Power (uW)"],
        rows, title="Ablation - CSHM sharing factor (8-bit neuron)"))

    # multi-alphabet ASM: strictly cheaper with more sharing
    a4 = [results[(s, "{1,3,5,7}")].area_um2 for s in (1, 2, 4, 8)]
    assert a4[0] > a4[1] > a4[2] > a4[3]
    # MAN has no bank: sharing is irrelevant
    man = [results[(s, "{1}")].area_um2 for s in (1, 2, 4, 8)]
    assert max(man) - min(man) < 1e-9
