"""Table I: decomposition of multiplication into select/shift/add terms."""

from conftest import emit

from repro.asm.alphabet import FULL_ALPHABETS
from repro.asm.decompose import decompose_magnitude
from repro.experiments.tables import format_table1
from repro.fixedpoint.quartet import LAYOUT_8BIT


def test_table1_decomposition(benchmark):
    """Benchmark the decomposition kernel over every 8-bit magnitude and
    print the paper's Table I rows."""

    def decompose_all():
        return [decompose_magnitude(w, LAYOUT_8BIT, FULL_ALPHABETS)
                for w in range(128)]

    terms = benchmark(decompose_all)
    assert len(terms) == 128
    emit("table1", format_table1())
