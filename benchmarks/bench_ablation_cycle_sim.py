"""Ablation: cycle-accurate (bit-toggle) vs analytic energy estimation.

Runs the same layer through the analytic CSHM engine and the cycle-accurate
simulator at several activation sparsity levels.  The analytic model is
data-blind; the simulator exposes the energy head-room that sparse
activations give shift-add datapaths.
"""

import numpy as np
from conftest import emit

from repro.asm.alphabet import ALPHA_1
from repro.asm.constraints import WeightConstrainer
from repro.hardware.engine import LayerWork, NetworkTopology, ProcessingEngine
from repro.hardware.report import format_table
from repro.hardware.simulator import CycleAccurateEngine

FAN_IN, NEURONS = 128, 16


def _weights(rng):
    raw = rng.integers(-127, 128, size=(FAN_IN, NEURONS))
    return WeightConstrainer(8, ALPHA_1).constrain_array(raw)


def test_ablation_cycle_accurate_energy(benchmark):
    rng = np.random.default_rng(0)
    weights = _weights(rng)
    dense_inputs = rng.integers(-120, 120, size=FAN_IN)

    def simulate_sparsities():
        sim = CycleAccurateEngine(8, ALPHA_1)
        traces = {}
        for sparsity in (0.0, 0.5, 0.9):
            inputs = dense_inputs.copy()
            drop = rng.permutation(FAN_IN)[:int(sparsity * FAN_IN)]
            inputs[drop] = 0
            traces[sparsity] = sim.run_layer(weights, inputs)
        return traces

    traces = benchmark.pedantic(simulate_sparsities, rounds=3, iterations=1)

    topo = NetworkTopology("layer", (LayerWork("fc", NEURONS, FAN_IN),))
    analytic = ProcessingEngine(8, ALPHA_1).run(topo).energy_nj
    rows = [["analytic (data-blind)", "-", f"{analytic:.4f}", "-"]]
    for sparsity, trace in sorted(traces.items()):
        rows.append([f"simulated, sparsity {sparsity:.0%}",
                     trace.cycles, f"{trace.energy_nj:.4f}",
                     trace.toggles.total])
    emit("ablation_cycle_sim", format_table(
        ["Estimator", "Cycles", "Energy (nJ)", "Bit toggles"],
        rows, title="Ablation - cycle-accurate vs analytic energy (MAN)"))

    # cycles identical regardless of data; energy falls with sparsity
    cycles = {t.cycles for t in traces.values()}
    assert len(cycles) == 1
    assert traces[0.9].energy_nj < traces[0.5].energy_nj \
        < traces[0.0].energy_nj
    # the two estimators agree within an order of magnitude
    assert 0.1 < traces[0.0].energy_nj / analytic < 10.0
