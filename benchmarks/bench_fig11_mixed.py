"""Fig. 11: mixed-alphabet networks — accuracy and energy together."""

from conftest import emit

from repro.experiments.mixed import format_figure11_table, run_figure11_app


def test_fig11_mixed_mnist(benchmark):
    rows = benchmark.pedantic(lambda: run_figure11_app("mnist_mlp"),
                              rounds=1, iterations=1)
    emit("fig11", format_figure11_table(
        {"mnist_mlp": rows},
        "Fig 11 - mixed-alphabet accuracy and energy (tiny budget)"))

    by_label = {row.deployment: row for row in rows}
    assert set(by_label) == {"conventional", "all {1}", "mixed"}
    conv, man, mixed = (by_label["conventional"], by_label["all {1}"],
                        by_label["mixed"])
    # energy: man < mixed << conventional; the mixed overhead is tiny
    assert man.energy_nj < mixed.energy_nj < conv.energy_nj
    assert mixed.energy_nj / man.energy_nj < 1.05
    # accuracy: mixed recovers to within noise of the conventional baseline
    assert mixed.accuracy >= man.accuracy - 0.05
    assert mixed.accuracy >= conv.accuracy - 0.10
