"""Ablation: alphabet-set design-space sweep beyond the paper's ladder.

The paper only evaluates {1}, {1,3}, {1,3,5,7} and the full set.  This
bench sweeps every alphabet subset of size <= 3 plus the standard sets,
reporting quartet coverage against hardware cost — showing the paper's
ladder sits on the coverage/cost Pareto frontier.
"""

from itertools import combinations

from conftest import emit

from repro.asm.alphabet import STANDARD_SETS, AlphabetSet
from repro.hardware.neuron import make_neuron
from repro.hardware.report import format_table


def _candidate_sets():
    odds = (1, 3, 5, 7, 9, 11, 13, 15)
    sets = []
    for size in (1, 2, 3):
        for combo in combinations(odds, size):
            sets.append(AlphabetSet(combo))
    sets.extend(STANDARD_SETS.values())
    unique = {s.alphabets: s for s in sets}
    return list(unique.values())


def test_ablation_alphabet_sweep(benchmark):
    def sweep():
        results = []
        for aset in _candidate_sets():
            coverage = aset.coverage(4)
            cost = make_neuron(8, aset).cost()
            results.append((aset, coverage, cost.area_um2))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    top = sorted(results, key=lambda r: (-r[1], r[2]))[:12]
    rows = [[str(a), f"{c:.3f}", f"{area:.0f}"] for a, c, area in top]
    emit("ablation_alphabet_sweep", format_table(
        ["Alphabet set", "Quartet coverage", "Area (um2)"],
        rows, title="Ablation - alphabet-set sweep (best coverage first)"))

    by_alphabets = {r[0].alphabets: r for r in results}
    # the paper's ladder is Pareto-efficient among same-size sets:
    # {1,3} has the best coverage of all 2-sets containing 1
    cov_13 = by_alphabets[(1, 3)][1]
    for combo, record in by_alphabets.items():
        if len(combo) == 2 and 1 in combo:
            assert record[1] <= cov_13 + 1e-9
    # coverage grows monotonically along the ladder
    assert by_alphabets[(1,)][1] < cov_13 < by_alphabets[(1, 3, 5, 7)][1]
