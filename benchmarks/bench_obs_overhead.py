"""Disabled-mode observability overhead on the kernels hot path.

Every quantised-layer forward now routes through
``repro.nn.quantized._dispatch``, whose disabled path is one
``obs.enabled()`` boolean check per kernel call.  This bench measures
that cost directly: the same dense forward batch, once through the
instrumented dispatch (obs disabled) and once calling the kernel backend
directly (no dispatch at all).  The acceptance bar for the obs layer is
**< 1% overhead**; results land in ``BENCH_obs.json`` at the repo root,
where the ``obs-smoke`` CI job checks the bar.

Best-of-N timing on a batch large enough that the integer matmul
dominates keeps the comparison stable against scheduler noise.
"""

import time

import numpy as np
from conftest import emit, emit_json

from repro import obs
from repro.asm.alphabet import ALPHA_2
from repro.datasets.registry import mlp
from repro.hardware.report import format_table
from repro.nn.quantized import QuantizationSpec, QuantizedNetwork

N = 2048
ROUNDS = 30
RNG = np.random.default_rng(21)


def _best_seconds(*runs, rounds: int = ROUNDS) -> list[float]:
    """Best-of-*rounds* for each callable, rounds interleaved.

    Interleaving (a round of each, repeated) decorrelates the comparison
    from slow machine-state drift — measuring one path's 30 rounds and
    then the other's would charge any frequency/cache drift entirely to
    the second path.
    """
    for run in runs:
        run()                                    # warm caches
    best = [float("inf")] * len(runs)
    for _ in range(rounds):
        for index, run in enumerate(runs):
            start = time.perf_counter()
            run()
            best[index] = min(best[index],
                              time.perf_counter() - start)
    return best


def test_disabled_obs_overhead_under_one_percent(benchmark):
    obs.reset()                                  # obs must be OFF
    quantized = QuantizedNetwork.from_float(
        mlp([1024, 100, 10], name="digits", seed=2),
        QuantizationSpec.constrained(8, ALPHA_2)).with_backend("fast")
    x = RNG.uniform(-1.0, 1.0, size=(N, 1024))

    backend = quantized._backend
    codes0 = backend.quantize_input(x, quantized.act_fmt)
    layers = quantized.layers

    def dispatched() -> None:                    # instrumented path
        codes, fmt = codes0, quantized.act_fmt
        for layer in layers:
            codes, fmt = layer.forward(codes, fmt, backend)

    def direct() -> None:                        # dispatch bypassed
        codes, fmt = codes0, quantized.act_fmt
        for layer in layers:
            codes, fmt = getattr(backend, layer.kind)(layer, codes, fmt)

    direct_s, dispatched_s = _best_seconds(direct, dispatched)
    overhead_pct = 100.0 * (dispatched_s - direct_s) / direct_s

    benchmark.pedantic(dispatched, rounds=3, iterations=1)
    results = {
        "batch": N,
        "rounds": ROUNDS,
        "direct_ms": round(direct_s * 1e3, 4),
        "dispatched_disabled_ms": round(dispatched_s * 1e3, 4),
        "overhead_pct": round(overhead_pct, 4),
    }
    emit_json("obs", results)
    emit("bench_obs_overhead", format_table(
        ["Path", "best-of ms / batch"],
        [["direct backend call", f"{direct_s * 1e3:.3f}"],
         ["dispatch, obs disabled", f"{dispatched_s * 1e3:.3f}"],
         ["overhead", f"{overhead_pct:.3f}%"]],
        title="Observability disabled-path overhead (dense forward)"))

    assert overhead_pct < 1.0, \
        f"disabled obs dispatch costs {overhead_pct:.2f}% (bar: <1%)"
