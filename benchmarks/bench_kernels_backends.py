"""Kernel-backend throughput: fast (BLAS) vs reference (integer) kernels.

Runs the same quantised networks through both backends of
:mod:`repro.kernels`, asserts bit-identity, and emits a machine-readable
``BENCH_kernels.json`` (samples/sec per backend + speedup) at the repo
root so the perf trajectory of the hot path has data over time.  The
``kernels-smoke`` CI job runs this bench and checks the dense speedup
floor.
"""

import time

import numpy as np
from conftest import emit, emit_json

from repro.asm.alphabet import ALPHA_2
from repro.datasets.registry import lenet, mlp
from repro.hardware.report import format_table
from repro.nn.quantized import QuantizationSpec, QuantizedNetwork

N_DENSE = 1024
N_CONV = 64
ROUNDS = 5
RNG = np.random.default_rng(9)


def _samples_per_sec(forward, x, rounds: int = ROUNDS) -> float:
    forward(x)                                   # warm caches / folded plans
    start = time.perf_counter()
    for _ in range(rounds):
        forward(x)
    elapsed = (time.perf_counter() - start) / rounds
    return len(x) / elapsed


def _measure(quantized: QuantizedNetwork, x: np.ndarray) -> dict:
    reference = quantized.with_backend("reference")
    fast = quantized.with_backend("fast")
    assert np.array_equal(reference.forward(x), fast.forward(x)), \
        "backends diverged — the exactness guarantee is broken"
    ref_sps = _samples_per_sec(reference.forward, x)
    fast_sps = _samples_per_sec(fast.forward, x)
    return {
        "batch": len(x),
        "reference_samples_per_sec": round(ref_sps, 1),
        "fast_samples_per_sec": round(fast_sps, 1),
        "speedup": round(fast_sps / ref_sps, 2),
    }


def test_dense_and_conv_backends(benchmark):
    dense_net = QuantizedNetwork.from_float(
        mlp([1024, 100, 10], name="digits", seed=2),
        QuantizationSpec.constrained(8, ALPHA_2))
    x_dense = RNG.uniform(-1.0, 1.0, size=(N_DENSE, 1024))

    conv_net = QuantizedNetwork.from_float(
        lenet(10, seed=3), QuantizationSpec.constrained(12, ALPHA_2))
    x_conv = RNG.uniform(-1.0, 1.0, size=(N_CONV, 1, 32, 32))

    results = {
        "dense_mlp_8b_asm2": _measure(dense_net, x_dense),
        "conv_lenet_12b_asm2": _measure(conv_net, x_conv),
    }
    benchmark.pedantic(
        lambda: dense_net.with_backend("fast").forward(x_dense),
        rounds=3, iterations=1)
    emit_json("kernels", results)

    rows = [[name,
             f"{entry['reference_samples_per_sec']:.0f}",
             f"{entry['fast_samples_per_sec']:.0f}",
             f"{entry['speedup']:.2f}x"]
            for name, entry in results.items()]
    emit("bench_kernels_backends", format_table(
        ["Workload", "reference (sps)", "fast (sps)", "Speedup"], rows,
        title="Kernel backends - batched inference throughput"))

    # acceptance bar: fast >= 3x reference on batched dense inference
    dense_speedup = results["dense_mlp_8b_asm2"]["speedup"]
    assert dense_speedup >= 3.0, \
        f"fast backend only {dense_speedup:.2f}x reference on dense"
