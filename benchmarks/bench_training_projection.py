"""Projection-kernel throughput: fused fast pass vs reference round trip.

:class:`~repro.training.constrained.ConstraintProjector` runs after every
optimiser step of a constrained retrain, so its per-call cost multiplies
across every retrain, quality-ladder escalation and ``repro explore``
candidate.  This bench projects the weights of the paper-scale 8-bit MLP
(and the 12-bit variant) through both projection-kernel backends, asserts
the projected parameters are bitwise identical, and emits machine-
readable ``BENCH_training.json`` (ms per projection + speedup) at the
repo root.  The ``perf-smoke`` CI job runs it and enforces the speedup
floor on the 8-bit MLP workload.
"""

import time

import numpy as np
from conftest import emit, emit_json

from repro.asm.alphabet import ALPHA_2
from repro.datasets.registry import mlp
from repro.hardware.report import format_table
from repro.training.constrained import ConstraintProjector

#: acceptance bar: fast >= 3x reference on the 8-bit MLP retrain step
SPEEDUP_FLOOR = 3.0

WORKLOADS = {
    # name: (layer sizes, bits)
    "mlp_1024x100x10_8b_asm2": ([1024, 100, 10], 8),
    "mlp_1024x100x10_12b_asm2": ([1024, 100, 10], 12),
}


def _ms_per_projection(projector, rounds=100, passes=5):
    """Best-of-*passes* mean ms per ``project()`` call (noise-robust)."""
    projector.project()                            # warm caches / formats
    best = float("inf")
    for _ in range(passes):
        start = time.perf_counter()
        for _ in range(rounds):
            projector.project()
        best = min(best, (time.perf_counter() - start) / rounds)
    return best * 1e3


def test_projection_backends(benchmark):
    results = {}
    for name, (sizes, bits) in WORKLOADS.items():
        network = mlp(sizes, name="bench", seed=5)
        start_state = network.state()

        reference = ConstraintProjector(network, bits, ALPHA_2,
                                        backend="reference")
        fast = ConstraintProjector(network, bits, ALPHA_2, backend="fast")

        reference.project()
        ref_state = network.state()
        network.load_state(start_state)
        fast.project()
        for ref_layer, got_layer in zip(ref_state, network.state()):
            for key in ref_layer:
                assert ref_layer[key].tobytes() == got_layer[key].tobytes(), \
                    f"{name}: projection backends diverged on {key!r}"
        assert fast.violations() == 0

        ref_ms = _ms_per_projection(reference)
        fast_ms = _ms_per_projection(fast)
        results[name] = {
            "weights": int(sum(np.prod(s) for s in
                               zip(sizes[:-1], sizes[1:]))),
            "reference_ms": round(ref_ms, 4),
            "fast_ms": round(fast_ms, 4),
            "speedup": round(ref_ms / fast_ms, 2),
        }
    benchmark.pedantic(fast.project, rounds=3, iterations=1)
    emit_json("training", results, merge=True)

    rows = [[name, entry["weights"], f"{entry['reference_ms']:.3f}",
             f"{entry['fast_ms']:.3f}", f"{entry['speedup']:.2f}x"]
            for name, entry in results.items()]
    emit("bench_training_projection", format_table(
        ["Workload", "Weights", "reference (ms)", "fast (ms)", "Speedup"],
        rows, title="Projection backends - constrained-retraining hot loop"))

    mlp8_speedup = results["mlp_1024x100x10_8b_asm2"]["speedup"]
    assert mlp8_speedup >= SPEEDUP_FLOOR, \
        f"fast projection only {mlp8_speedup:.2f}x reference on the " \
        f"8-bit MLP (floor {SPEEDUP_FLOOR}x)"
