"""Fig. 8: normalised neuron power at iso-speed (8- and 12-bit)."""

from conftest import emit

from repro.experiments.power_area import format_hardware_table, run_figure8


def test_fig8_power(benchmark):
    rows = benchmark(run_figure8)
    emit("fig8", format_hardware_table(
        rows, "Fig 8 - normalized neuron power @ iso-speed"))

    by_key = {(r.bits, r.num_alphabets): r.normalized for r in rows}
    # paper's headline: ~35% (8b) and ~60% (12b) MAN power reduction
    assert 0.25 <= 1 - by_key[(8, 1)] <= 0.45
    assert 0.45 <= 1 - by_key[(12, 1)] <= 0.70
    # monotone in alphabet count at both widths
    for bits in (8, 12):
        assert by_key[(bits, 1)] < by_key[(bits, 2)] < by_key[(bits, 4)] <= 1.0
