"""Ablation: Algorithm-1 greedy rounding vs exact nearest-representable.

The paper's quartet-by-quartet walk (Algorithm 1) is not globally optimal;
this bench quantifies how much precision the greedy walk gives up and
whether it matters after quantisation.
"""

import numpy as np
from conftest import emit

from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4
from repro.asm.constraints import WeightConstrainer, constraint_stats
from repro.hardware.report import format_table


def test_ablation_rounding_modes(benchmark):
    rng = np.random.default_rng(0)
    weights = rng.integers(-2047, 2048, size=20000)

    def constrain_both():
        results = {}
        for aset in (ALPHA_1, ALPHA_2, ALPHA_4):
            for mode in ("greedy", "nearest"):
                constrainer = WeightConstrainer(12, aset, mode=mode)
                results[(str(aset), mode)] = constraint_stats(
                    constrainer, weights)
        return results

    results = benchmark(constrain_both)

    rows = []
    for (aset, mode), stats in sorted(results.items()):
        rows.append([aset, mode, stats.num_changed,
                     stats.max_abs_error, f"{stats.mean_abs_error:.3f}"])
    emit("ablation_rounding", format_table(
        ["Alphabet set", "Mode", "# changed", "max |err|", "mean |err|"],
        rows, title="Ablation - Algorithm 1 greedy vs exact nearest"))

    for aset in ("{1}", "{1,3}", "{1,3,5,7}"):
        greedy = results[(aset, "greedy")]
        nearest = results[(aset, "nearest")]
        # exact nearest is never worse on mean or max error
        assert nearest.mean_abs_error <= greedy.mean_abs_error + 1e-12
        assert nearest.max_abs_error <= greedy.max_abs_error
        # both modes change exactly the off-grid weights
        assert nearest.num_changed == greedy.num_changed
    # measured gap (uniform weights): greedy ~2x worse for {1,3} and ~4.5x
    # for {1,3,5,7} on mean error — the carry cascade of Algorithm 1 can
    # move a weight a long way when a high quartet rounds up.
    assert results[("{1,3,5,7}", "greedy")].mean_abs_error > \
        results[("{1,3,5,7}", "nearest")].mean_abs_error
