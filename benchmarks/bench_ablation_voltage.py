"""Ablation: voltage scaling on top of the MAN's timing slack.

The MAN meets the iso-speed clock with slack (its critical path is far
shorter than the conventional multiplier's).  That slack can be traded for
supply-voltage reduction: gates slow down (delay_ratio up) but dynamic
energy falls with Vdd^2.  This bench sweeps Vdd and reports the compounded
MAN energy advantage — an extension the paper leaves on the table.
"""

from conftest import emit

from repro.asm.alphabet import ALPHA_1
from repro.hardware.neuron import make_neuron
from repro.hardware.report import format_table
from repro.hardware.technology import IBM45, scaled_technology

#: Vdd ratio -> approximate gate-delay ratio (alpha-power law, 45 nm-ish).
VOLTAGE_POINTS = {1.0: 1.0, 0.9: 1.18, 0.8: 1.45}


def test_ablation_voltage_scaling(benchmark):
    def sweep():
        results = {}
        conv_nominal = make_neuron(8).cost()
        for vdd, delay_ratio in VOLTAGE_POINTS.items():
            tech = scaled_technology(IBM45, f"vdd{vdd:g}",
                                     vdd_ratio=vdd, delay_ratio=delay_ratio)
            man = make_neuron(8, ALPHA_1, tech=tech)
            results[vdd] = (man.cost(), man.critical_path_ps,
                            man.period_ps)
        return conv_nominal, results

    conv_nominal, results = benchmark(sweep)

    rows = []
    for vdd, (cost, path, period) in sorted(results.items(), reverse=True):
        meets = "yes" if path <= period else "NO"
        rows.append([f"{vdd:.1f}", f"{cost.energy_per_mac_fj:.0f}",
                     f"{cost.energy_per_mac_fj / conv_nominal.energy_per_mac_fj:.3f}",
                     f"{path:.0f}", meets])
    emit("ablation_voltage", format_table(
        ["Vdd ratio", "MAN energy/MAC (fJ)", "vs conv @ nominal",
         "crit path (ps)", "meets 3 GHz"],
        rows, title="Ablation - voltage-scaled 8-bit MAN"))

    # energy falls monotonically with Vdd
    energies = [results[v][0].energy_per_mac_fj
                for v in sorted(VOLTAGE_POINTS, reverse=True)]
    assert energies[0] > energies[1] > energies[2]
    # at 0.9 Vdd the MAN still meets the 3 GHz clock without sizing
    cost_09, path_09, period = results[0.9]
    assert path_09 <= period
    assert cost_09.max_sizing_factor == 1.0
