"""Ablation: hardware fallback policies for unsupported quartets.

When unconstrained weights reach a reduced-alphabet ASM, the control logic
must pick *some* supported quartet.  This bench compares the error the
``nearest`` (midpoint rounding) and ``truncate`` (floor) policies inject
across every weight value and alphabet set.
"""

from conftest import emit

from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4
from repro.asm.multiplier import AlphabetSetMultiplier
from repro.hardware.report import format_table


def test_ablation_fallback_policies(benchmark):
    def profile_all():
        profiles = {}
        for bits in (8, 12):
            for aset in (ALPHA_1, ALPHA_2, ALPHA_4):
                for policy in ("nearest", "truncate"):
                    m = AlphabetSetMultiplier(bits, aset, fallback=policy)
                    profiles[(bits, str(aset), policy)] = m.error_profile()
        return profiles

    profiles = benchmark(profile_all)

    rows = [[bits, aset, policy,
             f"{p['mean_abs_error']:.2f}", f"{p['max_abs_error']:.0f}",
             f"{p['fraction_exact']:.3f}"]
            for (bits, aset, policy), p in sorted(profiles.items())]
    emit("ablation_fallback", format_table(
        ["Bits", "Alphabet set", "Policy", "mean |err|", "max |err|",
         "exact frac"],
        rows, title="Ablation - fallback policies on unconstrained weights"))

    for bits in (8, 12):
        for aset in ("{1}", "{1,3}", "{1,3,5,7}"):
            near = profiles[(bits, aset, "nearest")]
            trunc = profiles[(bits, aset, "truncate")]
            assert near["mean_abs_error"] <= trunc["mean_abs_error"] + 1e-9
