"""Fig. 7: accuracy comparison across all five applications.

One tiny-budget grid per application; the assertion checks the paper's
qualitative claims — retrained ASM networks stay close to their
conventional baselines, and accuracy degrades (weakly) as alphabets shrink.
"""

from conftest import TINY, emit

from repro.experiments.accuracy import format_accuracy_table, run_accuracy_grid
from repro.experiments.config import ACCURACY_APPS


def test_fig7_accuracy_all_apps(benchmark):
    def run_all():
        return {app: run_accuracy_grid(app, budget_override=TINY)
                for app in ACCURACY_APPS}

    grids = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = "\n\n".join(
        format_accuracy_table(
            grid, f"Fig 7 - {app} ({grid.bits} bit, tiny budget)")
        for app, grid in grids.items())
    emit("fig7", text)

    assert set(grids) == set(ACCURACY_APPS)
    for app, grid in grids.items():
        # every grid has conventional + 4/2/1-alphabet rows
        assert [row.num_alphabets for row in grid.rows] == [None, 4, 2, 1]
        # paper: losses are bounded (max ~2.83% at paper scale; the tiny
        # budget is noisier, so the bound here is loose)
        assert grid.max_loss < 0.25, app
