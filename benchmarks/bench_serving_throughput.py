"""Serving throughput: compiled+batched vs naive per-sample inference.

Quantifies why the serving stack exists: (1) a
:class:`~repro.serving.compiled.CompiledModel` batched forward pass
amortises the integer matmul across samples, versus naively running the
quantised network one sample at a time; (2) the micro-batching queue turns
many single-sample requests into few forward passes.
"""

import time

import numpy as np
from conftest import emit

from repro.asm.alphabet import ALPHA_2
from repro.asm.constraints import WeightConstrainer
from repro.datasets.registry import mlp
from repro.hardware.report import format_table
from repro.nn.quantized import QuantizationSpec, QuantizedNetwork
from repro.serving import BatchSettings, CompiledModel, MicroBatcher

N_SAMPLES = 256
RNG = np.random.default_rng(5)


def _build(tmp_path):
    network = mlp([1024, 100, 10], name="digits", seed=2)
    spec = QuantizationSpec(8, ALPHA_2,
                            constrainer=WeightConstrainer(8, ALPHA_2))
    quantized = QuantizedNetwork.from_float(network, spec)
    path = quantized.export(str(tmp_path / "digits"))
    return quantized, CompiledModel.load(path)


def test_compiled_batched_vs_naive(benchmark, tmp_path):
    quantized, compiled = _build(tmp_path)
    x = RNG.uniform(-1.0, 1.0, size=(N_SAMPLES, 1024))

    start = time.perf_counter()
    naive_scores = np.concatenate(
        [quantized.forward(x[i:i + 1]) for i in range(N_SAMPLES)], axis=0)
    naive_s = time.perf_counter() - start

    batched_scores = benchmark.pedantic(
        lambda: compiled.forward(x), rounds=3, iterations=1)
    start = time.perf_counter()
    compiled.forward(x)
    batched_s = time.perf_counter() - start

    assert np.array_equal(naive_scores, batched_scores)
    speedup = naive_s / batched_s
    emit("bench_serving_throughput", format_table(
        ["Path", "Time (ms)", "us/sample", "Speedup"],
        [["naive per-sample QuantizedNetwork", f"{naive_s * 1e3:.2f}",
          f"{naive_s / N_SAMPLES * 1e6:.1f}", "1.00x"],
         ["CompiledModel batched", f"{batched_s * 1e3:.2f}",
          f"{batched_s / N_SAMPLES * 1e6:.1f}", f"{speedup:.2f}x"]],
        title=f"Serving throughput - {N_SAMPLES} samples, digits MLP"))
    # acceptance bar: compiled batched inference >= 5x naive per-sample
    assert speedup >= 5.0, f"only {speedup:.1f}x over naive"


def test_microbatch_vs_unbatched_latency(benchmark, tmp_path):
    _, compiled = _build(tmp_path)
    x = RNG.uniform(-1.0, 1.0, size=(64, 1024))

    def run(settings: BatchSettings) -> tuple[float, float]:
        """Total wall time and mean batch size for 64 single requests."""
        from repro.serving import ServingMetrics
        metrics = ServingMetrics()
        with MicroBatcher(lambda key: compiled, settings,
                          metrics=metrics) as batcher:
            start = time.perf_counter()
            futures = [batcher.submit("digits", x[i]) for i in range(64)]
            for future in futures:
                future.result(timeout=30.0)
            elapsed = time.perf_counter() - start
        return elapsed, metrics.snapshot()["batch_size"]["mean"]

    unbatched_s, _ = run(BatchSettings(max_batch_size=1, max_latency_ms=0.0))
    batched_s, mean_batch = benchmark.pedantic(
        lambda: run(BatchSettings(max_batch_size=64, max_latency_ms=5.0)),
        rounds=1, iterations=1)

    emit("bench_serving_batching", format_table(
        ["Queue mode", "64 requests (ms)", "Mean batch"],
        [["unbatched (max_batch_size=1)", f"{unbatched_s * 1e3:.2f}", "1.0"],
         ["micro-batched (64, 5 ms)", f"{batched_s * 1e3:.2f}",
          f"{mean_batch:.1f}"]],
        title="Micro-batching - 64 concurrent single-sample requests"))
    assert mean_batch > 1.0, "micro-batcher never coalesced"


def test_compiled_load_vs_from_float(benchmark, tmp_path):
    """Artifact load skips training-side table/spec reconstruction."""
    network = mlp([1024, 100, 10], name="digits", seed=2)
    spec = QuantizationSpec(8, ALPHA_2,
                            constrainer=WeightConstrainer(8, ALPHA_2))
    quantized = QuantizedNetwork.from_float(network, spec)
    path = quantized.export(str(tmp_path / "digits"))

    start = time.perf_counter()
    for _ in range(5):
        QuantizedNetwork.from_float(network, spec)
    from_float_s = (time.perf_counter() - start) / 5

    load_s_holder = benchmark.pedantic(
        lambda: CompiledModel.load(path), rounds=5, iterations=1)
    assert load_s_holder is not None
    start = time.perf_counter()
    for _ in range(5):
        CompiledModel.load(path)
    load_s = (time.perf_counter() - start) / 5

    emit("bench_serving_load", format_table(
        ["Construction path", "Time (ms)"],
        [["QuantizedNetwork.from_float (requantise)",
          f"{from_float_s * 1e3:.2f}"],
         ["CompiledModel.load (artifact)", f"{load_s * 1e3:.2f}"]],
        title="Model construction - requantise vs artifact load"))
