"""Table III: MNIST digit-recognition accuracy across alphabet counts."""

from conftest import TINY, emit

from repro.experiments.accuracy import format_accuracy_table, run_accuracy_grid


def test_table3_digit_accuracy(benchmark):
    grid = benchmark.pedantic(
        lambda: run_accuracy_grid("mnist_mlp", budget_override=TINY),
        rounds=1, iterations=1)
    emit("table3", format_accuracy_table(
        grid, "Table III - digit recognition, 8-bit MLP (tiny budget)"))
    assert grid.baseline.accuracy > 0.6
    # retrained ASM rows stay close to the conventional baseline
    assert grid.max_loss < 0.15
