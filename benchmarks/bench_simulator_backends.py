"""Simulation-kernel throughput: fast (vectorised) vs reference (loop).

Runs the cycle-accurate toggle simulator over the same layers through
both backends of :mod:`repro.kernels.simulate`, asserts the
:class:`~repro.hardware.simulator.LayerTrace` results are identical, and
emits machine-readable ``BENCH_simulator.json`` (ms per layer evaluation
per backend + speedup) at the repo root.  The ``perf-smoke`` CI job runs
this bench and enforces the speedup floor on the LeNet-scale dense
workload.
"""

import time

import numpy as np
from conftest import emit, emit_json

from repro.asm.alphabet import ALPHA_1, ALPHA_2
from repro.asm.constraints import WeightConstrainer
from repro.hardware.report import format_table
from repro.hardware.simulator import CycleAccurateEngine

RNG = np.random.default_rng(11)

#: acceptance bar: fast >= 20x reference on a LeNet-scale dense layer
SPEEDUP_FLOOR = 20.0

WORKLOADS = {
    # name: (bits, alphabet set, fan_in, neurons)
    "dense_400x120_8b_asm2": (8, ALPHA_2, 400, 120),
    "dense_400x120_8b_man": (8, ALPHA_1, 400, 120),
    "dense_256x32_12b_conventional": (12, None, 256, 32),
}


def _layer(bits, aset, fan_in, neurons):
    limit = 2 ** (bits - 1) - 1
    raw = RNG.integers(-limit, limit + 1, size=(fan_in, neurons))
    weights = WeightConstrainer(bits, aset).constrain_array(raw) \
        if aset is not None else raw
    inputs = RNG.integers(-limit, limit + 1, size=fan_in)
    return weights, inputs


def _ms_per_run(sim, weights, inputs, rounds):
    sim.run_layer(weights, inputs)                  # warm
    start = time.perf_counter()
    for _ in range(rounds):
        sim.run_layer(weights, inputs)
    return (time.perf_counter() - start) / rounds * 1e3


def test_simulator_backends(benchmark):
    results = {}
    for name, (bits, aset, fan_in, neurons) in WORKLOADS.items():
        weights, inputs = _layer(bits, aset, fan_in, neurons)
        reference = CycleAccurateEngine(bits, aset, backend="reference")
        fast = CycleAccurateEngine(bits, aset, backend="fast")
        ref_trace = reference.run_layer(weights, inputs)
        fast_trace = fast.run_layer(weights, inputs)
        assert ref_trace == fast_trace, \
            f"{name}: backends diverged - the bit-identity guarantee is " \
            f"broken"
        ref_ms = _ms_per_run(reference, weights, inputs, rounds=2)
        fast_ms = _ms_per_run(fast, weights, inputs, rounds=20)
        results[name] = {
            "cycles": ref_trace.cycles,
            "macs": ref_trace.macs,
            "toggles_total": ref_trace.toggles.total,
            "energy_nj": round(ref_trace.energy_nj, 6),
            "reference_ms": round(ref_ms, 3),
            "fast_ms": round(fast_ms, 3),
            "speedup": round(ref_ms / fast_ms, 1),
        }
    benchmark.pedantic(
        lambda: CycleAccurateEngine(8, ALPHA_2, backend="fast").run_layer(
            *_layer(8, ALPHA_2, 400, 120)),
        rounds=3, iterations=1)
    emit_json("simulator", results)

    rows = [[name, entry["cycles"], f"{entry['reference_ms']:.1f}",
             f"{entry['fast_ms']:.2f}", f"{entry['speedup']:.0f}x"]
            for name, entry in results.items()]
    emit("bench_simulator_backends", format_table(
        ["Workload", "Cycles", "reference (ms)", "fast (ms)", "Speedup"],
        rows, title="Simulation backends - cycle-accurate toggle counting"))

    lenet_speedup = results["dense_400x120_8b_asm2"]["speedup"]
    assert lenet_speedup >= SPEEDUP_FLOOR, \
        f"fast simulator only {lenet_speedup:.1f}x reference on the " \
        f"LeNet-scale dense layer (floor {SPEEDUP_FLOOR}x)"
