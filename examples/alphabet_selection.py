"""Data-driven alphabet selection — an extension beyond the paper.

The paper fixes its ladder to {1}, {1,3}, {1,3,5,7}.  But trained weight
distributions are not uniform: this example histograms the quartet values a
trained network actually uses, selects the best k-alphabet set for that
distribution, and compares its coverage against the paper's defaults.

Run:  python examples/alphabet_selection.py
"""

import numpy as np

from repro.analysis import quartet_usage, select_alphabets, weighted_coverage
from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4
from repro.datasets import build_model, load_dataset
from repro.nn.optim import SGD
from repro.nn.trainer import Trainer


def main() -> None:
    print("training the MNIST MLP (quick budget)...")
    data = load_dataset("mnist_mlp", n_train=1000, n_test=400, seed=0)
    model = build_model("mnist_mlp", seed=1)
    trainer = Trainer(model, SGD(model, 0.3), batch_size=32, patience=2)
    trainer.fit(data.flat_train, data.y_train_onehot, data.flat_test,
                data.y_test, max_epochs=10)

    weights = np.concatenate([layer.params["W"].ravel()
                              for layer in model.trainable_layers])
    usage = quartet_usage(weights, bits=8)

    print("\nobserved quartet-value frequencies (8-bit weights):")
    for value, freq in enumerate(usage.frequencies):
        bar = "#" * int(freq * 120)
        print(f"  {value:2d}: {freq * 100:5.2f}% {bar}")

    print("\ncoverage of the paper's ladder vs the data-driven choice:")
    for k, default in ((1, ALPHA_1), (2, ALPHA_2), (4, ALPHA_4)):
        chosen = select_alphabets(usage, k)
        print(f"  k={k}:  paper {str(default):12s} "
              f"{weighted_coverage(usage, default) * 100:6.2f}%   "
              f"data-driven {str(chosen):12s} "
              f"{weighted_coverage(usage, chosen) * 100:6.2f}%")

    print("\n(trained weights cluster near zero, so low quartet values")
    print("dominate — which is why the paper's small sets lose so little.)")


if __name__ == "__main__":
    main()
