"""Quickstart: the Alphabet Set Multiplier in five minutes.

Walks the paper's core ideas end to end on scalar values:

1. decompose a weight into select/shift/add terms (Table I),
2. see a reduced alphabet set fail on an unsupported weight,
3. constrain the weight (Algorithm 1) and multiply exactly,
4. compile the Multiplier-less Neuron's shift-add program,
5. compare hardware cost of conventional vs ASM vs MAN neurons.

Run:  python examples/quickstart.py
"""

from repro.asm import (
    ALPHA_1,
    ALPHA_2,
    FULL_ALPHABETS,
    AlphabetSetMultiplier,
    UnsupportedQuartetError,
    WeightConstrainer,
    compile_weight,
    format_decomposition,
)
from repro.fixedpoint import LAYOUT_8BIT
from repro.hardware import make_neuron


def main() -> None:
    weight, operand = 105, 66   # the paper's Table I example values

    print("=== 1. decomposition with the full alphabet set ===")
    print(f"  {format_decomposition(weight, LAYOUT_8BIT, FULL_ALPHABETS)}")
    exact = AlphabetSetMultiplier(8, FULL_ALPHABETS)
    print(f"  ASM product {weight} x {operand} = "
          f"{exact.multiply(weight, operand)} (exact: {weight * operand})")

    print("\n=== 2. reduced alphabets cannot cover every weight ===")
    reduced = AlphabetSetMultiplier(8, ALPHA_2)
    try:
        reduced.multiply(weight, operand)
    except UnsupportedQuartetError as error:
        print(f"  {error}")

    print("\n=== 3. constrain the weight (Algorithm 1), then multiply ===")
    constrainer = WeightConstrainer(8, ALPHA_2)
    constrained = constrainer.constrain(weight)
    print(f"  constrain({weight}) -> {constrained}")
    print(f"  ASM product {constrained} x {operand} = "
          f"{reduced.multiply(constrained, operand)} "
          f"(exact: {constrained * operand})")

    print("\n=== 4. the Multiplier-less Neuron: shifts and adds only ===")
    man_constrainer = WeightConstrainer(8, ALPHA_1)
    man_weight = man_constrainer.constrain(weight)
    program = compile_weight(man_weight, LAYOUT_8BIT, ALPHA_1)
    print(f"  constrain({weight}) -> {man_weight}")
    print(f"  {man_weight} * x = {program}")
    print(f"  program({operand}) = {program.apply(operand)}")

    print("\n=== 5. hardware cost at iso-speed (8-bit, 3 GHz) ===")
    conventional = make_neuron(8).cost()
    for label, aset in (("conventional", None), ("ASM {1,3}", ALPHA_2),
                        ("MAN {1}", ALPHA_1)):
        cost = make_neuron(8, aset).cost()
        ratio = cost.normalized_to(conventional)
        print(f"  {label:13s}: area {cost.area_um2:7.1f} um2 "
              f"({ratio['area']:.2f}x)   power {cost.power_uw:7.1f} uW "
              f"({ratio['power']:.2f}x)")


if __name__ == "__main__":
    main()
