"""Serve a constrained digit-recognition network end to end.

The full deployment path on a tiny training budget:

1. train the paper's digit MLP on the synthetic MNIST stand-in,
2. retrain it under ASM weight constraints (2 alphabets, Algorithm 1/2),
3. lower it onto the integer engine and export a serving artifact,
4. load it into a registry, start the batched HTTP server,
5. send a predict request and read back predictions + live energy stats.

Run:  PYTHONPATH=src python examples/serve_digits.py
"""

import json
import tempfile
import threading
import urllib.request

from repro.asm.alphabet import ALPHA_2
from repro.asm.constraints import WeightConstrainer
from repro.datasets.registry import build_model, load_dataset
from repro.nn.optim import SGD
from repro.nn.quantized import QuantizationSpec, QuantizedNetwork
from repro.nn.trainer import Trainer
from repro.serving import BatchSettings, ModelRegistry, create_server
from repro.training.constrained import ConstraintProjector, constrained_trainer


def main() -> None:
    print("=== 1. train the digit MLP (tiny budget) ===")
    data = load_dataset("mnist_mlp", n_train=600, n_test=300, seed=0)
    model = build_model("mnist_mlp", seed=1)
    Trainer(model, SGD(model, 0.3), batch_size=32, patience=2).fit(
        data.flat_train, data.y_train_onehot, data.flat_test, data.y_test,
        max_epochs=6)

    print("\n=== 2. constrained retraining for the {1,3} alphabet set ===")
    projector = ConstraintProjector(model, 8, ALPHA_2)
    constrained_trainer(model, SGD(model, 0.075), projector,
                        batch_size=32, patience=2).fit(
        data.flat_train, data.y_train_onehot, data.flat_test, data.y_test,
        max_epochs=4)

    print("\n=== 3. quantise + export the serving artifact ===")
    spec = QuantizationSpec(8, ALPHA_2,
                            constrainer=WeightConstrainer(8, ALPHA_2))
    quantized = QuantizedNetwork.from_float(model, spec)
    workdir = tempfile.mkdtemp(prefix="repro-serve-")
    path = quantized.export(f"{workdir}/digits")
    print(f"  exported {quantized.spec.label} -> {path}")

    print("\n=== 4. registry + batched HTTP server ===")
    registry = ModelRegistry()
    entry = registry.register(path, name="digits")
    energy = entry.model.energy_per_inference_nj()
    print(f"  registered {entry.key}: {energy:.1f} nJ/inference estimated")
    server = create_server(registry,
                           settings=BatchSettings(max_batch_size=32,
                                                  max_latency_ms=2.0))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    print(f"  serving on {base}")

    print("\n=== 5. predict over HTTP ===")
    inputs = data.flat_test[:8]
    request = urllib.request.Request(
        f"{base}/predict",
        data=json.dumps({"model": "digits",
                         "inputs": inputs.tolist()}).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30.0) as response:
        payload = json.loads(response.read())
    print(f"  predictions: {payload['predictions']}")
    print(f"  labels:      {data.y_test[:8].tolist()}")
    print(f"  latency: {payload['latency_ms']} ms, "
          f"energy ~{payload['energy_nj_est']:.1f} nJ")
    with urllib.request.urlopen(f"{base}/stats", timeout=10.0) as response:
        stats = json.loads(response.read())
    print(f"  served {stats['samples_total']} samples, "
          f"{stats['energy']['total_nj']} nJ total estimated")

    server.shutdown()
    thread.join(timeout=5.0)


if __name__ == "__main__":
    main()
