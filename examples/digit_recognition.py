"""Digit recognition with the full design methodology (Algorithm 2).

Trains the paper's 1024-100-10 MLP on the synthetic MNIST stand-in, then
runs the alphabet-escalation methodology: retrain with {1}, accept if the
quality bound holds, else escalate to {1,3}, {1,3,5,7}, ...

Run:  python examples/digit_recognition.py [--full]
"""

import argparse

from repro.datasets import build_model, load_dataset
from repro.training import DesignMethodology


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-scale training budget")
    parser.add_argument("--quality", type=float, default=0.99,
                        help="quality constraint Q (default 0.99)")
    args = parser.parse_args()

    n_train, n_test = (4000, 1500) if args.full else (1200, 500)
    epochs, retrain = (40, 20) if args.full else (12, 8)

    print(f"generating synthetic MNIST ({n_train} train / {n_test} test)")
    dataset = load_dataset("mnist_mlp", n_train=n_train, n_test=n_test,
                           seed=0)
    model = build_model("mnist_mlp", seed=1)
    print(f"model: {model.num_params} synapses, {model.num_neurons} neurons "
          f"(Table IV: 103510 / 110)")

    methodology = DesignMethodology(bits=8, quality=args.quality,
                                    ladder=(1, 2, 4, 8))
    result = methodology.run(model, dataset, max_epochs=epochs,
                             retrain_epochs=retrain, verbose=True)

    print(f"\nfloat accuracy:            {result.float_accuracy * 100:.2f}%")
    print(f"8-bit conventional (J):    {result.baseline_accuracy * 100:.2f}%")
    for stage in result.stages:
        verdict = "ACCEPTED" if stage.accepted else "rejected"
        print(f"  {stage.num_alphabets} alphabet(s) {stage.alphabet_set}: "
              f"K = {stage.accuracy * 100:.2f}%  [{verdict}]")
    print(f"\nchosen design: {result.chosen_alphabets} alphabet(s), "
          f"accuracy loss {result.accuracy_loss * 100:.2f}%")
    if result.chosen_alphabets == 1:
        print("-> the network runs on Multiplier-less Artificial Neurons.")


if __name__ == "__main__":
    main()
