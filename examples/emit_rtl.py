"""Emit the Verilog RTL the paper's flow would synthesise.

Writes one ``.v`` file per datapath configuration into ``rtl_out/`` —
conventional, 4/2-alphabet ASMs and the MAN at both word widths, plus the
shared pre-computer banks.

Run:  python examples/emit_rtl.py [--out rtl_out]
"""

import argparse
import os

from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4
from repro.rtl import (
    generate_asm_mac,
    generate_conventional_mac,
    generate_precompute_bank,
    module_name,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="rtl_out")
    args = parser.parse_args()
    os.makedirs(args.out, exist_ok=True)

    written = []
    for bits in (8, 12):
        sources = {module_name(bits, None): generate_conventional_mac(bits)}
        for aset in (ALPHA_4, ALPHA_2, ALPHA_1):
            sources[module_name(bits, aset)] = generate_asm_mac(
                bits, aset, fallback="nearest")
        for aset in (ALPHA_4, ALPHA_2):
            name = f"precompute_bank_{bits}b_{len(aset)}a"
            sources[name] = generate_precompute_bank(bits, aset)
        for name, source in sources.items():
            path = os.path.join(args.out, f"{name}.v")
            with open(path, "w") as handle:
                handle.write(source)
            written.append((path, len(source.splitlines())))

    print(f"wrote {len(written)} Verilog modules:")
    for path, lines in written:
        print(f"  {path}  ({lines} lines)")
    print("\npreview of the 8-bit MAN datapath:")
    print(generate_asm_mac(8, ALPHA_1, fallback="nearest"))


if __name__ == "__main__":
    main()
