"""Face detection — the paper's §IV.C credibility experiment (Table II).

Trains the 1024-100-2 MLP on synthetic face/non-face patches, then
reproduces Table II: accuracy at 8 and 12 bits for the conventional
multiplier and the 4/2/1-alphabet ASMs (with constrained retraining).

Run:  python examples/face_detection.py [--full]
"""

import argparse

from repro.experiments.accuracy import (
    format_accuracy_table,
    run_accuracy_grid,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-scale training budget")
    args = parser.parse_args()

    for bits in (8, 12):
        grid = run_accuracy_grid("face", bits=bits, full=args.full, seed=0)
        print(format_accuracy_table(
            grid, f"Table II - face detection, {bits}-bit synapses"))
        print()

    print("paper reference (Table II): 12-bit losses 0.12 / 0.19 / 0.24 %")
    print("for 4 / 2 / 1 alphabets; max degradation 0.47% at 8 bits.")


if __name__ == "__main__":
    main()
