"""Hardware deep-dive: stage-level cost reports and the Fig. 8/9/10 tables.

Prints the gate-level stage breakdown of every neuron design (what the
RTL + synthesis flow of the paper would report), then the normalised
power/area comparisons and the per-application engine energy.

Run:  python examples/hardware_report.py
"""

from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4
from repro.experiments.energy import format_energy_table, run_figure9
from repro.experiments.power_area import (
    format_hardware_table,
    run_figure8,
    run_figure10,
)
from repro.hardware import make_neuron


def main() -> None:
    print("=== stage-level design reports (iso-speed) ===\n")
    for bits in (8, 12):
        for aset in (None, ALPHA_4, ALPHA_2, ALPHA_1):
            design = make_neuron(bits, aset)
            print(design.report())
            print()

    print("=== Fig. 8: normalised power ===")
    print(format_hardware_table(run_figure8(), ""))
    print()
    print("=== Fig. 10: normalised area ===")
    print(format_hardware_table(run_figure10(), ""))
    print()
    print("=== Fig. 9: per-inference energy (all five applications) ===")
    print(format_energy_table(run_figure9(), ""))


if __name__ == "__main__":
    main()
