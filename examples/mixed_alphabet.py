"""Mixed-alphabet networks (§VI.E / Fig. 11).

Large early layers use the 1-alphabet MAN; the small concluding layers use
2/4-alphabet ASMs.  The example retrains the SVHN-style 6-layer MLP under
the three deployments and reports accuracy, energy, and the share of
processing cycles the upgraded layers account for (paper: ~3.84%).

Run:  python examples/mixed_alphabet.py [--app svhn|tich|mnist_mlp]
"""

import argparse

from repro.asm.alphabet import ALPHA_1
from repro.datasets import build_model
from repro.experiments.mixed import run_figure11_app
from repro.hardware.engine import ProcessingEngine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="svhn",
                        choices=["svhn", "tich", "mnist_mlp"])
    parser.add_argument("--full", action="store_true")
    args = parser.parse_args()

    topology = build_model(args.app).topology()
    engine = ProcessingEngine(8, ALPHA_1)
    report = engine.run(topology)
    tail = 2 if args.app in ("svhn", "tich") else 1
    share = report.layer_cycle_fraction(tail)
    print(f"{args.app}: last {tail} layer(s) use {share * 100:.2f}% of "
          f"processing cycles (paper quotes 3.84% for SVHN)\n")

    rows = run_figure11_app(args.app, full=args.full, seed=0)
    print(f"{'deployment':15s} {'accuracy':>9s} {'energy (nJ)':>12s} "
          f"{'vs conv':>8s}")
    for row in rows:
        print(f"{row.deployment:15s} {row.accuracy * 100:8.2f}% "
              f"{row.energy_nj:12.1f} {row.normalized_energy:8.3f}")

    man = next(r for r in rows if r.deployment == "all {1}")
    mixed = next(r for r in rows if r.deployment == "mixed")
    print(f"\nmixed vs all-{{1}}: {(mixed.accuracy - man.accuracy) * 100:+.2f}"
          f" accuracy points for "
          f"{(mixed.energy_nj / man.energy_nj - 1) * 100:+.2f}% energy")


if __name__ == "__main__":
    main()
