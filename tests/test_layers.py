"""Tests for layers: shapes, gradients (finite differences), LeNet counts."""

import numpy as np
import pytest

from repro.nn.conv_utils import col2im, conv_output_size, im2col
from repro.nn.layers import Conv2D, Dense, Flatten, ScaledAvgPool2D

RNG = np.random.default_rng(42)


def numeric_gradient(layer, x, param_key, epsilon=1e-6):
    """Central-difference gradient of sum(forward(x)) w.r.t. a parameter."""
    param = layer.params[param_key]
    grad = np.zeros_like(param)
    flat = param.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        up = layer.forward(x, training=False).sum()
        flat[i] = original - epsilon
        down = layer.forward(x, training=False).sum()
        flat[i] = original
        grad.reshape(-1)[i] = (up - down) / (2 * epsilon)
    return grad


class TestConvUtils:
    def test_output_size(self):
        assert conv_output_size(32, 5) == 28
        assert conv_output_size(5, 5) == 1

    def test_output_size_rejects_large_kernel(self):
        with pytest.raises(ValueError):
            conv_output_size(4, 5)

    def test_im2col_shape(self):
        x = RNG.normal(size=(2, 3, 8, 8))
        cols = im2col(x, 3)
        assert cols.shape == (2, 36, 27)

    def test_im2col_values_by_hand(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols = im2col(x, 3)
        # first window is rows 0-2 x cols 0-2
        np.testing.assert_array_equal(
            cols[0, 0], [0, 1, 2, 4, 5, 6, 8, 9, 10])
        # second window shifts one column right
        np.testing.assert_array_equal(
            cols[0, 1], [1, 2, 3, 5, 6, 7, 9, 10, 11])

    def test_col2im_adjoint_property(self):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint identity."""
        x = RNG.normal(size=(2, 3, 6, 6))
        y = RNG.normal(size=(2, 16, 27))
        lhs = np.sum(im2col(x, 3) * y)
        rhs = np.sum(x * col2im(y, x.shape, 3))
        assert lhs == pytest.approx(rhs)

    def test_col2im_shape_check(self):
        # 4x4 input with k=3 yields 4 positions, not 5
        with pytest.raises(ValueError):
            col2im(np.zeros((1, 5, 9)), (1, 1, 4, 4), 3)


class TestDense:
    def test_forward_shape(self):
        layer = Dense(5, 3, rng=RNG)
        out = layer.forward(RNG.normal(size=(7, 5)))
        assert out.shape == (7, 3)

    def test_forward_values_identity_activation(self):
        layer = Dense(2, 2, activation="identity", rng=RNG)
        layer.params["W"] = np.array([[1.0, 2.0], [3.0, 4.0]])
        layer.params["b"] = np.array([0.5, -0.5])
        out = layer.forward(np.array([[1.0, 1.0]]))
        np.testing.assert_allclose(out, [[4.5, 5.5]])

    def test_rejects_wrong_input_width(self):
        with pytest.raises(ValueError):
            Dense(5, 3).forward(np.zeros((2, 4)))

    def test_num_params(self):
        assert Dense(1024, 100).num_params == 102500

    @pytest.mark.parametrize("activation", ["identity", "sigmoid", "tanh"])
    def test_weight_gradient(self, activation):
        layer = Dense(4, 3, activation=activation, rng=RNG)
        x = RNG.normal(size=(5, 4))
        out = layer.forward(x)
        layer.backward(np.ones_like(out))
        numeric = numeric_gradient(layer, x, "W")
        np.testing.assert_allclose(layer.grads["W"], numeric, atol=1e-5)

    def test_bias_gradient(self):
        layer = Dense(4, 3, activation="sigmoid", rng=RNG)
        x = RNG.normal(size=(5, 4))
        out = layer.forward(x)
        layer.backward(np.ones_like(out))
        numeric = numeric_gradient(layer, x, "b")
        np.testing.assert_allclose(layer.grads["b"], numeric, atol=1e-5)

    def test_input_gradient(self):
        layer = Dense(4, 3, activation="tanh", rng=RNG)
        x = RNG.normal(size=(2, 4))
        out = layer.forward(x)
        grad_x = layer.backward(np.ones_like(out))
        h = 1e-6
        numeric = np.zeros_like(x)
        for i in range(x.size):
            xp = x.copy().reshape(-1)
            xp[i] += h
            up = layer.forward(xp.reshape(x.shape), training=False).sum()
            xp[i] -= 2 * h
            down = layer.forward(xp.reshape(x.shape), training=False).sum()
            numeric.reshape(-1)[i] = (up - down) / (2 * h)
        np.testing.assert_allclose(grad_x, numeric, atol=1e-5)

    def test_state_roundtrip(self):
        layer = Dense(3, 2, rng=RNG)
        saved = layer.state()
        layer.params["W"] += 1.0
        layer.load_state(saved)
        np.testing.assert_array_equal(layer.params["W"], saved["W"])

    def test_load_state_validates(self):
        layer = Dense(3, 2, rng=RNG)
        with pytest.raises(KeyError):
            layer.load_state({"missing": np.zeros(1)})
        with pytest.raises(ValueError):
            layer.load_state({"W": np.zeros((1, 1))})


class TestDefaultInitDeterminism:
    """Layers built without an explicit rng must be reproducible: the
    default generator is seeded (lint rule RPR001 guards the source)."""

    def test_dense_default_init_identical(self):
        a = Dense(12, 5)
        b = Dense(12, 5)
        np.testing.assert_array_equal(a.params["W"], b.params["W"])
        np.testing.assert_array_equal(a.params["b"], b.params["b"])

    def test_conv_default_init_identical(self):
        a = Conv2D(2, 3, 5)
        b = Conv2D(2, 3, 5)
        np.testing.assert_array_equal(a.params["W"], b.params["W"])

    def test_explicit_rng_still_wins(self):
        seeded = Dense(12, 5, rng=np.random.default_rng(7))
        default = Dense(12, 5)
        assert not np.array_equal(seeded.params["W"], default.params["W"])


class TestConv2D:
    def test_forward_shape(self):
        layer = Conv2D(3, 8, 5, rng=RNG)
        out = layer.forward(RNG.normal(size=(2, 3, 12, 12)))
        assert out.shape == (2, 8, 8, 8)

    def test_forward_matches_naive(self):
        layer = Conv2D(2, 3, 3, activation="identity", rng=RNG)
        x = RNG.normal(size=(1, 2, 5, 5))
        out = layer.forward(x, training=False)
        w, b = layer.params["W"], layer.params["b"]
        for oc in range(3):
            for i in range(3):
                for j in range(3):
                    expected = b[oc] + np.sum(
                        w[oc] * x[0, :, i:i + 3, j:j + 3])
                    assert out[0, oc, i, j] == pytest.approx(expected)

    def test_weight_gradient(self):
        layer = Conv2D(2, 3, 3, activation="tanh", rng=RNG)
        x = RNG.normal(size=(2, 2, 5, 5))
        out = layer.forward(x)
        layer.backward(np.ones_like(out))
        numeric = numeric_gradient(layer, x, "W")
        np.testing.assert_allclose(layer.grads["W"], numeric, atol=1e-5)

    def test_input_gradient(self):
        layer = Conv2D(1, 2, 3, activation="identity", rng=RNG)
        x = RNG.normal(size=(1, 1, 4, 4))
        out = layer.forward(x)
        grad_x = layer.backward(np.ones_like(out))
        h = 1e-6
        numeric = np.zeros_like(x)
        for i in range(x.size):
            xp = x.copy().reshape(-1)
            xp[i] += h
            up = layer.forward(xp.reshape(x.shape), training=False).sum()
            xp[i] -= 2 * h
            down = layer.forward(xp.reshape(x.shape), training=False).sum()
            numeric.reshape(-1)[i] = (up - down) / (2 * h)
        np.testing.assert_allclose(grad_x, numeric, atol=1e-5)

    def test_connection_table_masks_weights(self):
        table = np.array([[True, False], [False, True], [True, True]])
        layer = Conv2D(2, 3, 3, connection_table=table, rng=RNG)
        assert np.all(layer.params["W"][0, 1] == 0)
        assert np.all(layer.params["W"][1, 0] == 0)

    def test_connection_table_masks_gradients(self):
        table = np.array([[True, False]])
        layer = Conv2D(2, 1, 3, activation="identity",
                       connection_table=table, rng=RNG)
        x = RNG.normal(size=(1, 2, 5, 5))
        out = layer.forward(x)
        layer.backward(np.ones_like(out))
        assert np.all(layer.grads["W"][0, 1] == 0)

    def test_connection_table_param_count(self):
        # classic LeNet C3: 60 connected pairs, 5x5 kernels, 16 biases
        table = np.zeros((16, 6), dtype=bool)
        table.reshape(-1)[:60] = True
        layer = Conv2D(6, 16, 5, connection_table=table)
        assert layer.num_params == 60 * 25 + 16

    def test_connection_table_shape_check(self):
        with pytest.raises(ValueError):
            Conv2D(2, 3, 3, connection_table=np.ones((2, 2), dtype=bool))


class TestScaledAvgPool:
    def test_forward_shape(self):
        layer = ScaledAvgPool2D(4, 2)
        out = layer.forward(RNG.normal(size=(3, 4, 8, 8)))
        assert out.shape == (3, 4, 4, 4)

    def test_forward_values(self):
        layer = ScaledAvgPool2D(1, 2, activation="identity")
        layer.params["gain"] = np.array([2.0])
        layer.params["bias"] = np.array([1.0])
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        # top-left 2x2 block mean = (0+1+4+5)/4 = 2.5 -> 2*2.5+1 = 6
        assert out[0, 0, 0, 0] == pytest.approx(6.0)

    def test_gain_gradient(self):
        layer = ScaledAvgPool2D(2, 2, activation="tanh")
        x = RNG.normal(size=(2, 2, 4, 4))
        out = layer.forward(x)
        layer.backward(np.ones_like(out))
        numeric = numeric_gradient(layer, x, "gain")
        np.testing.assert_allclose(layer.grads["gain"], numeric, atol=1e-5)

    def test_input_gradient_spreads_evenly(self):
        layer = ScaledAvgPool2D(1, 2, activation="identity")
        x = RNG.normal(size=(1, 1, 4, 4))
        out = layer.forward(x)
        grad_x = layer.backward(np.ones_like(out))
        # each input pixel receives gain / 4
        expected = layer.params["gain"][0] / 4
        np.testing.assert_allclose(grad_x, expected)

    def test_rejects_indivisible_input(self):
        with pytest.raises(ValueError):
            ScaledAvgPool2D(1, 2).forward(np.zeros((1, 1, 5, 5)))

    def test_num_params(self):
        assert ScaledAvgPool2D(6, 2).num_params == 12  # LeNet S2


class TestFlatten:
    def test_roundtrip(self):
        layer = Flatten()
        x = RNG.normal(size=(2, 3, 4, 4))
        out = layer.forward(x)
        assert out.shape == (2, 48)
        back = layer.backward(out)
        np.testing.assert_array_equal(back, x)
