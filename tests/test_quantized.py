"""Tests for the bit-accurate quantised/ASM inference engine."""

import numpy as np
import pytest

from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4, FULL_ALPHABETS
from repro.asm.constraints import WeightConstrainer
from repro.asm.decompose import UnsupportedQuartetError
from repro.datasets import lenet, mlp, synthetic_mnist
from repro.nn.quantized import QuantizationSpec, QuantizedNetwork

RNG = np.random.default_rng(11)


@pytest.fixture(scope="module")
def trained_mlp():
    """A small trained MLP shared across the module's tests."""
    from repro.nn import SGD, Trainer
    data = synthetic_mnist(n_train=500, n_test=200, seed=0)
    model = mlp([1024, 40, 10], seed=1)
    trainer = Trainer(model, SGD(model, 0.3), batch_size=32, patience=2)
    trainer.fit(data.flat_train, data.y_train_onehot, data.flat_test,
                data.y_test, max_epochs=10)
    return model, data


class TestQuantizationSpec:
    def test_labels(self):
        assert QuantizationSpec(8).label == "8b-conventional"
        assert QuantizationSpec(8, ALPHA_2, fallback="nearest").label == \
            "8b-asm2-nearest"
        c = WeightConstrainer(8, ALPHA_2)
        assert QuantizationSpec(8, ALPHA_2, constrainer=c).label == \
            "8b-asm2-constrained"

    def test_constrainer_bits_mismatch(self):
        with pytest.raises(ValueError):
            QuantizationSpec(12, ALPHA_2,
                             constrainer=WeightConstrainer(8, ALPHA_2))

    def test_quantize_weights_range(self):
        spec = QuantizationSpec(8)
        weights = RNG.normal(scale=0.2, size=(30, 10))
        ints, fmt = spec.quantize_weights(weights)
        assert ints.max() <= 127 and ints.min() >= -128
        # dequantised weights close to the originals
        assert np.max(np.abs(ints * fmt.resolution - weights)) <= \
            fmt.resolution

    def test_constrained_weights_on_grid(self):
        c = WeightConstrainer(8, ALPHA_1)
        spec = QuantizationSpec(8, ALPHA_1, constrainer=c)
        ints, _ = spec.quantize_weights(RNG.normal(size=(50,)))
        assert all(c.is_representable(int(w)) for w in ints)

    def test_effective_remap_applied(self):
        spec = QuantizationSpec(8, ALPHA_2, fallback="nearest")
        # a weight value landing on 105 (R=9 unsupported) must be remapped
        fmt_scale = 105 / 128
        ints, fmt = spec.quantize_weights(np.array([fmt_scale, 127 / 128]))
        c = WeightConstrainer(8, ALPHA_2, mode="nearest")
        # the deployed weights must all be ASM-exact values
        from repro.asm.multiplier import AlphabetSetMultiplier
        m = AlphabetSetMultiplier(8, ALPHA_2, fallback="nearest")
        table = m.effective_weight_table()
        for w in ints:
            assert table[int(w) + 128] == w


class TestQuantizedAccuracy:
    def test_conventional_close_to_float(self, trained_mlp):
        model, data = trained_mlp
        float_acc = model.accuracy(data.flat_test, data.y_test)
        q8 = QuantizedNetwork.from_float(model, QuantizationSpec(8))
        q12 = QuantizedNetwork.from_float(model, QuantizationSpec(12))
        assert abs(q8.accuracy(data.flat_test, data.y_test)
                   - float_acc) < 0.05
        assert abs(q12.accuracy(data.flat_test, data.y_test)
                   - float_acc) < 0.03

    def test_full_alphabet_asm_equals_conventional(self, trained_mlp):
        """The 8-alphabet ASM is exact: identical predictions."""
        model, data = trained_mlp
        conv = QuantizedNetwork.from_float(model, QuantizationSpec(8))
        asm = QuantizedNetwork.from_float(
            model, QuantizationSpec(8, FULL_ALPHABETS, fallback="nearest"))
        np.testing.assert_array_equal(
            conv.predict(data.flat_test[:50]),
            asm.predict(data.flat_test[:50]))

    def test_error_policy_raises_without_constraining(self, trained_mlp):
        model, _ = trained_mlp
        with pytest.raises(UnsupportedQuartetError):
            # fallback="error": lowering unconstrained weights must fail
            QuantizedNetwork.from_float(model, QuantizationSpec(8, ALPHA_2))

    def test_constrained_weights_run_under_error_policy(self, trained_mlp):
        model, data = trained_mlp
        c = WeightConstrainer(8, ALPHA_2)
        q = QuantizedNetwork.from_float(
            model, QuantizationSpec(8, ALPHA_2, constrainer=c))
        acc = q.accuracy(data.flat_test, data.y_test)
        assert acc > 0.3  # runs, and is far better than chance

    def test_lut_mode_close_to_float_sigmoid(self, trained_mlp):
        model, data = trained_mlp
        plain = QuantizedNetwork.from_float(model, QuantizationSpec(8))
        lut = QuantizedNetwork.from_float(model, QuantizationSpec(8),
                                          use_lut=True)
        a = plain.accuracy(data.flat_test, data.y_test)
        b = lut.accuracy(data.flat_test, data.y_test)
        assert abs(a - b) < 0.05

    def test_accuracy_length_check(self, trained_mlp):
        model, data = trained_mlp
        q = QuantizedNetwork.from_float(model, QuantizationSpec(8))
        with pytest.raises(ValueError):
            q.accuracy(data.flat_test[:3], data.y_test[:4])


class TestQuantizedCNN:
    def test_lenet_quantises_and_runs(self):
        net = lenet(seed=0)
        q = QuantizedNetwork.from_float(net, QuantizationSpec(12))
        x = RNG.uniform(0, 1, size=(3, 1, 32, 32))
        scores = q.forward(x)
        assert scores.shape == (3, 10)

    def test_lenet_man_deployment(self):
        net = lenet(seed=0)
        c = WeightConstrainer(12, ALPHA_1)
        q = QuantizedNetwork.from_float(
            net, QuantizationSpec(12, ALPHA_1, constrainer=c))
        x = RNG.uniform(0, 1, size=(2, 1, 32, 32))
        assert q.forward(x).shape == (2, 10)


class TestLayerSpecs:
    def test_mixed_specs_accepted(self, trained_mlp):
        model, data = trained_mlp
        c1 = WeightConstrainer(8, ALPHA_1)
        c4 = WeightConstrainer(8, ALPHA_4)
        specs = [QuantizationSpec(8, ALPHA_1, constrainer=c1),
                 QuantizationSpec(8, ALPHA_4, constrainer=c4)]
        q = QuantizedNetwork.from_float(model, QuantizationSpec(8),
                                        layer_specs=specs)
        assert 0.0 <= q.accuracy(data.flat_test, data.y_test) <= 1.0

    def test_wrong_spec_count(self, trained_mlp):
        model, _ = trained_mlp
        with pytest.raises(ValueError):
            QuantizedNetwork.from_float(
                model, QuantizationSpec(8),
                layer_specs=[QuantizationSpec(8)])

    def test_mixed_bits_rejected(self, trained_mlp):
        model, _ = trained_mlp
        with pytest.raises(ValueError):
            QuantizedNetwork.from_float(
                model, QuantizationSpec(8),
                layer_specs=[QuantizationSpec(8), QuantizationSpec(12)])


class TestKernelBackends:
    """The layer stack dispatches to repro.kernels; backends must be
    bit-identical on trained networks (the broad sweep lives in
    tests/test_kernels.py)."""

    def test_default_backend_is_reference(self, trained_mlp):
        model, _ = trained_mlp
        q = QuantizedNetwork.from_float(model, QuantizationSpec(8))
        assert q.backend == "reference"
        assert q.with_backend("auto").backend == "fast"

    def test_fast_bit_identical_on_trained_network(self, trained_mlp):
        model, data = trained_mlp
        c = WeightConstrainer(8, ALPHA_2)
        q = QuantizedNetwork.from_float(
            model, QuantizationSpec(8, ALPHA_2, constrainer=c))
        fast = q.with_backend("fast")
        np.testing.assert_array_equal(q.forward(data.flat_test),
                                      fast.forward(data.flat_test))
        assert q.accuracy(data.flat_test, data.y_test) == \
            fast.accuracy(data.flat_test, data.y_test)

    def test_with_backend_shares_layers(self, trained_mlp):
        model, _ = trained_mlp
        q = QuantizedNetwork.from_float(model, QuantizationSpec(8))
        fast = q.with_backend("fast")
        assert fast.layers is q.layers
        assert q.backend == "reference"  # original untouched

    def test_unknown_backend_rejected(self, trained_mlp):
        model, _ = trained_mlp
        from repro.kernels import KernelBackendError
        with pytest.raises(KernelBackendError):
            QuantizedNetwork.from_float(model, QuantizationSpec(8),
                                        backend="simd")

    def test_lut_backend_equivalence(self, trained_mlp):
        model, data = trained_mlp
        q = QuantizedNetwork.from_float(model, QuantizationSpec(8),
                                        use_lut=True)
        np.testing.assert_array_equal(
            q.forward(data.flat_test[:64]),
            q.with_backend("fast").forward(data.flat_test[:64]))


class TestBitWidthOrdering:
    def test_12bit_at_least_as_good_as_8bit_man(self, trained_mlp):
        """More weight bits → finer MAN grid → no worse accuracy (paper's
        §VI.E observation), modulo small-sample noise."""
        model, data = trained_mlp
        accs = {}
        for bits in (8, 12):
            c = WeightConstrainer(bits, ALPHA_1)
            q = QuantizedNetwork.from_float(
                model, QuantizationSpec(bits, ALPHA_1, constrainer=c))
            accs[bits] = q.accuracy(data.flat_test, data.y_test)
        assert accs[12] >= accs[8] - 0.05
