"""Tests for the gate-level component library."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fixedpoint.binary import clog2
from repro.hardware.components import (
    ActivationLUT,
    ArrayMultiplier,
    BarrelShifter,
    CarrySkipAdder,
    Composite,
    ControlLogic,
    GateBank,
    KoggeStoneAdder,
    MuxTree,
    Register,
    RippleCarryAdder,
    WireBus,
    best_adder,
)
from repro.hardware.technology import IBM45


class TestGateBank:
    def test_area_energy(self):
        bank = GateBank(IBM45, "g", {"NAND2": 10}, path=["NAND2"] * 3)
        assert bank.area_um2 == pytest.approx(10 * IBM45.area("NAND2"))
        assert bank.energy_fj == pytest.approx(10 * IBM45.energy("NAND2"))
        assert bank.delay_ps == pytest.approx(3 * IBM45.delay("NAND2"))

    def test_activity_scales_energy_not_area(self):
        full = GateBank(IBM45, "g", {"FA": 4}, activity=1.0)
        half = GateBank(IBM45, "g", {"FA": 4}, activity=0.5)
        assert half.energy_fj == pytest.approx(full.energy_fj / 2)
        assert half.area_um2 == full.area_um2

    def test_rejects_unknown_gate(self):
        with pytest.raises(KeyError):
            GateBank(IBM45, "g", {"FLUX_CAP": 1})

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            GateBank(IBM45, "g", {"NAND2": -1})

    def test_rejects_negative_activity(self):
        with pytest.raises(ValueError):
            GateBank(IBM45, "g", {"NAND2": 1}, activity=-0.1)


class TestComposite:
    def test_children_aggregate(self):
        parent = Composite(IBM45, "p")
        parent.add_child(RippleCarryAdder(IBM45, 4))
        parent.add_child(RippleCarryAdder(IBM45, 4), multiplicity=0.5)
        single = RippleCarryAdder(IBM45, 4)
        assert parent.area_um2 == pytest.approx(1.5 * single.area_um2)
        assert parent.energy_fj == pytest.approx(1.5 * single.energy_fj)

    def test_critical_path_is_max_child(self):
        parent = Composite(IBM45, "p")
        parent.add_child(RippleCarryAdder(IBM45, 2))
        parent.add_child(RippleCarryAdder(IBM45, 8))
        assert parent.delay_ps == RippleCarryAdder(IBM45, 8).delay_ps

    def test_off_path_child_excluded_from_delay(self):
        parent = Composite(IBM45, "p")
        parent.add_child(RippleCarryAdder(IBM45, 8), on_critical_path=False)
        assert parent.delay_ps == 0.0

    def test_rejects_negative_multiplicity(self):
        with pytest.raises(ValueError):
            Composite(IBM45, "p").add_child(
                RippleCarryAdder(IBM45, 2), multiplicity=-1)

    def test_report_contains_children(self):
        parent = Composite(IBM45, "p")
        parent.add_child(RippleCarryAdder(IBM45, 4))
        text = parent.report()
        assert "p:" in text and "rca4" in text


class TestAdders:
    @pytest.mark.parametrize("width", [1, 4, 8, 16, 30])
    def test_ripple_linear_delay(self, width):
        adder = RippleCarryAdder(IBM45, width)
        assert adder.delay_ps == pytest.approx(width * IBM45.delay("FA"))
        assert adder.gate_counts["FA"] == width

    def test_carry_skip_not_slower_than_ripple(self):
        # at width 8 the two skip groups degenerate to a plain ripple chain
        for width in (8, 16, 24, 32):
            assert CarrySkipAdder(IBM45, width).delay_ps <= \
                RippleCarryAdder(IBM45, width).delay_ps

    def test_carry_skip_strictly_faster_when_wide(self):
        for width in (16, 24, 32):
            assert CarrySkipAdder(IBM45, width).delay_ps < \
                RippleCarryAdder(IBM45, width).delay_ps

    def test_kogge_stone_fastest(self):
        for width in (8, 16, 24, 32):
            assert KoggeStoneAdder(IBM45, width).delay_ps < \
                CarrySkipAdder(IBM45, width).delay_ps

    def test_area_ordering(self):
        # speed costs area: ripple < carry-skip < kogge-stone
        for width in (8, 16, 32):
            rca = RippleCarryAdder(IBM45, width).area_um2
            csk = CarrySkipAdder(IBM45, width).area_um2
            ksa = KoggeStoneAdder(IBM45, width).area_um2
            assert rca < csk < ksa

    @pytest.mark.parametrize("cls", [RippleCarryAdder, CarrySkipAdder,
                                     KoggeStoneAdder])
    def test_rejects_zero_width(self, cls):
        with pytest.raises(ValueError):
            cls(IBM45, 0)

    def test_best_adder_prefers_small(self):
        generous = best_adder(IBM45, 8, budget_ps=1e6)
        assert isinstance(generous, RippleCarryAdder)

    def test_best_adder_meets_budget_when_possible(self):
        tight = best_adder(IBM45, 16, budget_ps=300)
        assert tight.delay_ps <= 300

    def test_best_adder_falls_back_to_fastest(self):
        impossible = best_adder(IBM45, 32, budget_ps=1)
        assert isinstance(impossible, KoggeStoneAdder)

    @given(st.integers(min_value=2, max_value=40),
           st.floats(min_value=50, max_value=2000))
    def test_best_adder_is_minimal_area_among_meeting(self, width, budget):
        chosen = best_adder(IBM45, width, budget)
        candidates = [RippleCarryAdder(IBM45, width),
                      CarrySkipAdder(IBM45, width),
                      KoggeStoneAdder(IBM45, width)]
        meeting = [c for c in candidates if c.delay_ps <= budget]
        if meeting:
            assert chosen.area_um2 == min(c.area_um2 for c in meeting)
        else:
            assert chosen.delay_ps == min(c.delay_ps for c in candidates)


class TestArrayMultiplier:
    def test_quadratic_area_growth(self):
        a8 = ArrayMultiplier(IBM45, 8).area_um2
        a16 = ArrayMultiplier(IBM45, 16).area_um2
        assert 3.4 < a16 / a8 < 4.6  # ~quadratic

    def test_glitch_activity_default(self):
        assert ArrayMultiplier(IBM45, 8).activity > 1.0

    def test_delay_linear_in_width(self):
        d8 = ArrayMultiplier(IBM45, 8).delay_ps
        d12 = ArrayMultiplier(IBM45, 12).delay_ps
        assert d12 > d8

    def test_rejects_width_one(self):
        with pytest.raises(ValueError):
            ArrayMultiplier(IBM45, 1)


class TestBarrelShifter:
    def test_stage_count(self):
        shifter = BarrelShifter(IBM45, 16, max_shift=3)
        assert shifter.gate_counts["MUX2"] == 16 * 2  # shifts 0..3 -> 2 stages

    def test_zero_shift_is_free(self):
        shifter = BarrelShifter(IBM45, 16, max_shift=0)
        assert shifter.area_um2 == 0.0
        assert shifter.delay_ps == 0.0

    def test_delay_is_stages_times_mux(self):
        shifter = BarrelShifter(IBM45, 8, max_shift=7)
        assert shifter.delay_ps == pytest.approx(3 * IBM45.delay("MUX2"))

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BarrelShifter(IBM45, 0, 3)
        with pytest.raises(ValueError):
            BarrelShifter(IBM45, 8, -1)


class TestMuxTree:
    def test_two_way(self):
        mux = MuxTree(IBM45, 12, 2)
        assert mux.gate_counts["MUX2"] == 12
        assert mux.delay_ps == pytest.approx(IBM45.delay("MUX2"))

    def test_four_way(self):
        mux = MuxTree(IBM45, 12, 4)
        assert mux.gate_counts["MUX2"] == 12 * 3
        assert mux.delay_ps == pytest.approx(2 * IBM45.delay("MUX2"))

    def test_one_way_is_wire(self):
        mux = MuxTree(IBM45, 12, 1)
        assert mux.area_um2 == 0.0
        assert mux.delay_ps == 0.0

    @given(st.integers(min_value=1, max_value=16),
           st.integers(min_value=1, max_value=16))
    def test_mux_count_formula(self, width, ways):
        mux = MuxTree(IBM45, width, ways)
        assert mux.gate_counts["MUX2"] == width * (ways - 1)


class TestRegisterLutControlWire:
    def test_register(self):
        reg = Register(IBM45, 16)
        assert reg.gate_counts["DFF"] == 16

    def test_lut_geometry(self):
        lut = ActivationLUT(IBM45, 8, 8)
        assert lut.gate_counts["ROM_BIT"] == 256 * 8

    def test_lut_access_energy_much_smaller_than_total(self):
        lut = ActivationLUT(IBM45, 8, 8)
        total_if_all_switch = lut.gate_counts["ROM_BIT"] * IBM45.energy("ROM_BIT")
        assert lut.energy_fj < total_if_all_switch / 100

    def test_control_scales_with_alphabets(self):
        small = ControlLogic(IBM45, 2, 1)
        big = ControlLogic(IBM45, 2, 8)
        assert big.area_um2 > small.area_um2

    def test_wire_bus_scales_with_alphabets_and_length(self):
        short = WireBus(IBM45, 12, 2, length_um=50)
        long = WireBus(IBM45, 12, 2, length_um=100)
        wide = WireBus(IBM45, 12, 4, length_um=50)
        assert long.area_um2 == pytest.approx(2 * short.area_um2)
        assert wide.area_um2 == pytest.approx(2 * short.area_um2)

    def test_wire_bus_zero_length(self):
        assert WireBus(IBM45, 12, 2, length_um=0).area_um2 == 0.0

    def test_invalid_geometries(self):
        with pytest.raises(ValueError):
            Register(IBM45, 0)
        with pytest.raises(ValueError):
            ActivationLUT(IBM45, 0, 8)
        with pytest.raises(ValueError):
            ControlLogic(IBM45, 0, 1)
        with pytest.raises(ValueError):
            WireBus(IBM45, 12, 2, length_um=-1)
