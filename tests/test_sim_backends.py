"""Bit-identity of the fast simulation and projection kernels.

The fast backends of :mod:`repro.kernels.simulate` and
:mod:`repro.kernels.projection` claim bit-identical results to the
reference loops they vectorise.  This suite enforces the claim with
seeded property-style sweeps: simulator traces across units x fan_in x
alphabet sets (including the multiplierless MAN and the conventional
engine) x ragged tail groups, and projector equality/idempotence across
word widths under randomly drifting weights that cross power-of-two
format boundaries (exercising the fast kernel's QFormat memoization).
"""

import numpy as np
import pytest

from repro.asm.alphabet import ALPHA_1, ALPHA_2, ALPHA_4, ALPHA_8
from repro.asm.constraints import WeightConstrainer
from repro.hardware.engine import ProcessingEngine
from repro.hardware.simulator import CycleAccurateEngine
from repro.kernels import get_backend
from repro.kernels.projection import project_fast, project_reference
from repro.training.constrained import ConstraintProjector

ALPHABET_CASES = {
    "conventional": None,
    "man": ALPHA_1,              # multiplierless: no bank
    "asm2": ALPHA_2,
    "asm8": ALPHA_8,
}


def _constrained_weights(shape, bits, aset, rng):
    limit = 2 ** (bits - 1) - 1
    raw = rng.integers(-limit, limit + 1, size=shape)
    if aset is None:
        return raw
    return WeightConstrainer(bits, aset).constrain_array(raw)


class TestSimulatorBitIdentity:
    """fast trace == reference trace, across the whole grid."""

    @pytest.mark.parametrize("alphabet", sorted(ALPHABET_CASES))
    @pytest.mark.parametrize("units", [1, 4, 10])
    @pytest.mark.parametrize("fan_in", [1, 7, 64])
    def test_traces_identical(self, alphabet, units, fan_in):
        aset = ALPHABET_CASES[alphabet]
        seed = (sorted(ALPHABET_CASES).index(alphabet) * 10000
                + units * 100 + fan_in)
        rng = np.random.default_rng(seed)
        # neuron counts cover full groups, one ragged tail and fewer
        # neurons than lanes
        for neurons in (1, units, 2 * units + 1):
            weights = _constrained_weights((fan_in, neurons), 8, aset, rng)
            inputs = rng.integers(-120, 121, size=fan_in)
            ref = CycleAccurateEngine(
                8, aset, units=units, backend="reference"
            ).run_layer(weights, inputs)
            fast = CycleAccurateEngine(
                8, aset, units=units, backend="fast"
            ).run_layer(weights, inputs)
            assert ref == fast

    def test_twelve_bit_traces_identical(self):
        rng = np.random.default_rng(99)
        weights = _constrained_weights((31, 9), 12, ALPHA_4, rng)
        inputs = rng.integers(-2000, 2001, size=31)
        ref = CycleAccurateEngine(12, ALPHA_4,
                                  backend="reference").run_layer(weights,
                                                                 inputs)
        fast = CycleAccurateEngine(12, ALPHA_4,
                                   backend="fast").run_layer(weights, inputs)
        assert ref == fast

    def test_sparse_stream_identical(self):
        """Zero-heavy activation streams (the data-dependence case)."""
        rng = np.random.default_rng(5)
        weights = _constrained_weights((40, 6), 8, ALPHA_2, rng)
        inputs = rng.integers(-120, 121, size=40)
        inputs[::2] = 0
        ref = CycleAccurateEngine(8, ALPHA_2,
                                  backend="reference").run_layer(weights,
                                                                 inputs)
        fast = CycleAccurateEngine(8, ALPHA_2,
                                   backend="fast").run_layer(weights, inputs)
        assert ref == fast

    def test_empty_layer(self):
        """Zero neurons: both backends report an idle engine."""
        weights = np.zeros((4, 0), dtype=np.int64)
        inputs = np.ones(4, dtype=np.int64)
        for backend in ("reference", "fast"):
            trace = CycleAccurateEngine(
                8, None, backend=backend).run_layer(weights, inputs)
            assert trace.cycles == 0
            assert trace.utilization == 0.0
            assert trace.toggles.total == 0

    def test_auto_resolves_to_fast(self):
        assert CycleAccurateEngine(8, ALPHA_1).backend == "fast"
        assert CycleAccurateEngine(
            8, ALPHA_1, backend="reference").backend == "reference"

    def test_engine_simulator_factory(self):
        """ProcessingEngine hands its sim_backend to memoized simulators."""
        engine = ProcessingEngine(8, sim_backend="reference")
        sim = engine.simulator(ALPHA_2)
        assert sim.backend == "reference"
        assert sim.units == engine.units
        assert engine.simulator(ALPHA_2) is sim          # memoized
        conventional = engine.simulator(None)            # explicit None
        assert conventional.alphabet_set is None
        assert conventional is not sim


class TestProjectorBitIdentity:
    """fast projection == reference projection, and both idempotent."""

    @pytest.mark.parametrize("bits", [8, 12])
    @pytest.mark.parametrize("aset", [ALPHA_1, ALPHA_2, ALPHA_4],
                             ids=["man", "asm2", "asm4"])
    def test_drifting_weights_identical(self, bits, aset):
        """Simulated retrain steps: perturb, project, compare bitwise.

        The growing scale sweeps max|w| across power-of-two boundaries,
        so the fast kernel's memoized QFormat is repeatedly invalidated
        and rebuilt.
        """
        rng = np.random.default_rng(bits * 100 + len(aset))
        constrainer = WeightConstrainer(bits, aset)
        w_ref = rng.normal(scale=0.4, size=(37, 11))
        w_fast = w_ref.copy()
        cache = {}
        for step in range(12):
            ref = project_reference(w_ref, bits, constrainer, {})
            fast = project_fast(w_fast, bits, constrainer, cache)
            assert ref.tobytes() == fast.tobytes(), (bits, step)
            noise = rng.normal(scale=0.05 * 1.7 ** step, size=ref.shape)
            w_ref = ref + noise
            w_fast = fast + noise

    def test_projection_idempotent(self):
        rng = np.random.default_rng(2)
        constrainer = WeightConstrainer(8, ALPHA_2)
        w = rng.normal(scale=0.7, size=(64, 16))
        cache = {}
        once = project_fast(w.copy(), 8, constrainer, cache)
        twice = project_fast(once.copy(), 8, constrainer, cache)
        assert once.tobytes() == twice.tobytes()

    def test_saturation_and_zeros_identical(self):
        """Edge values: exact zeros, sign flips, out-of-range magnitudes
        (including the most-negative-code saturation path)."""
        constrainer = WeightConstrainer(8, ALPHA_2)
        w = np.array([0.0, -0.0, 1e-15, -1e-15, 0.5, -0.5, 250.0, -250.0,
                      0.9921875, -1.0])
        ref = project_reference(w.copy(), 8, constrainer, {})
        fast = project_fast(w.copy(), 8, constrainer, {})
        assert ref.tobytes() == fast.tobytes()

    def test_non_contiguous_falls_back(self):
        constrainer = WeightConstrainer(8, ALPHA_2)
        base = np.random.default_rng(0).normal(size=(8, 8))
        view = base[:, ::2]                       # not C-contiguous
        ref = project_reference(view.copy(), 8, constrainer, {})
        fast = project_fast(view, 8, constrainer, {})
        assert np.array_equal(ref, fast)


class TestConstraintProjectorBackends:
    """The projector front end drives both kernels identically."""

    def _network(self, seed=7):
        from repro.datasets.registry import mlp

        return mlp([64, 12, 4], name="t", seed=seed)

    @pytest.mark.parametrize("bits", [8, 12])
    def test_networks_project_identically(self, bits):
        net_ref = self._network()
        net_fast = self._network()
        ref = ConstraintProjector(net_ref, bits, ALPHA_2,
                                  backend="reference")
        fast = ConstraintProjector(net_fast, bits, ALPHA_2, backend="fast")
        assert ref.backend == "reference"
        assert fast.backend == "fast"
        rng = np.random.default_rng(bits)
        for _ in range(5):
            ref.project()
            fast.project()
            for lr, lf in zip(net_ref.layers, net_fast.layers):
                for key in lr.params:
                    assert lr.params[key].tobytes() == \
                        lf.params[key].tobytes()
            assert ref.violations() == 0
            assert fast.violations() == 0
            for lr, lf in zip(net_ref.layers, net_fast.layers):
                for key, value in lr.params.items():
                    noise = rng.normal(scale=0.02, size=value.shape)
                    lr.params[key] = value + noise
                    lf.params[key] = lf.params[key] + noise

    def test_default_backend_is_auto(self):
        projector = ConstraintProjector(self._network(), 8, ALPHA_1)
        assert projector.backend == get_backend("auto").name

    def test_projection_preserves_bias(self):
        """Biases never pass through the multiplier on either backend."""
        for backend in ("reference", "fast"):
            net = self._network()
            bias_before = [layer.params["b"].copy()
                           for layer in net.layers if "b" in layer.params]
            ConstraintProjector(net, 8, ALPHA_2, backend=backend).project()
            bias_after = [layer.params["b"]
                          for layer in net.layers if "b" in layer.params]
            for before, after in zip(bias_before, bias_after):
                assert np.array_equal(before, after)


class TestSimulatedEnergyStage:
    """The energy stage's toggle simulation plumbing (sim_samples)."""

    BUDGET = {"name": "micro", "n_train": 60, "n_test": 30,
              "max_epochs": 1, "retrain_epochs": 1}

    def _config(self, **overrides):
        from repro.pipeline.config import PipelineConfig

        base = dict(app="mnist_mlp", designs=("conventional", "asm1"),
                    stages=("train", "quantize", "constrain", "evaluate",
                            "energy"),
                    budget=self.BUDGET, sim_samples=2)
        base.update(overrides)
        return PipelineConfig(**base)

    def test_simulated_rows_and_backend_independence(self):
        from repro.pipeline.pipeline import Pipeline

        report = Pipeline(self._config()).run()
        for row in report.energy.rows:
            assert row.sim_energy_nj > 0
            assert row.sim_toggles > 0
            # the simulator schedules exactly the analytic cycle count
            assert row.sim_cycles == row.cycles
            assert row.sim_macs > 0
        # the fully-reference run reproduces the same energy result bit
        # for bit (forward, simulation and projection backends alike)
        reference = Pipeline(self._config(
            backend="reference", sim_backend="reference")).run()
        assert reference.energy == report.energy

    def test_sim_samples_zero_keeps_analytic_rows(self):
        from repro.pipeline.pipeline import Pipeline

        config = self._config(sim_samples=0,
                              stages=("train", "quantize", "constrain",
                                      "energy"))
        report = Pipeline(config).run()
        for row in report.energy.rows:
            assert row.sim_energy_nj == 0.0
            assert row.sim_toggles == 0.0
            assert row.sim_cycles == 0

    def test_cache_keys(self):
        """sim_backend never splits the cache; sim_samples splits only
        the energy stage, and only when nonzero."""
        from repro.pipeline.pipeline import Pipeline

        base = Pipeline(self._config(sim_samples=0))
        simulated = Pipeline(self._config(sim_samples=4))
        other_backend = Pipeline(self._config(sim_samples=4,
                                              sim_backend="reference"))
        plan = base.plan()
        sim_plan = simulated.plan()
        for stage in plan:
            assert base.stage_key(stage, plan) != "", stage
        for stage in sim_plan:
            assert simulated.stage_key(stage, sim_plan) == \
                other_backend.stage_key(stage, sim_plan), stage
        assert base.stage_key("energy", plan) != \
            simulated.stage_key("energy", sim_plan)
        for stage in ("train", "quantize", "constrain", "evaluate"):
            assert base.stage_key(stage, plan) == \
                simulated.stage_key(stage, sim_plan), stage

    def test_energy_requires_weights_when_simulating(self):
        from repro.pipeline.pipeline import Pipeline

        plan = Pipeline(self._config(stages=("energy",))).plan()
        assert "train" in plan and "constrain" in plan
        analytic_plan = Pipeline(self._config(
            sim_samples=0, stages=("energy",))).plan()
        assert analytic_plan == ("energy",)
