"""Unit and property tests for two's-complement helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fixedpoint.binary import (
    bit_string,
    clog2,
    from_twos_complement,
    is_power_of_two,
    popcount,
    sign_bit,
    signed_range,
    to_twos_complement,
)


class TestSignedRange:
    def test_8bit(self):
        assert signed_range(8) == (-128, 127)

    def test_12bit(self):
        assert signed_range(12) == (-2048, 2047)

    def test_smallest_width(self):
        assert signed_range(2) == (-2, 1)

    def test_rejects_one_bit(self):
        with pytest.raises(ValueError):
            signed_range(1)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            signed_range(0)


class TestToTwosComplement:
    def test_positive_identity(self):
        assert to_twos_complement(105, 8) == 105

    def test_minus_one_is_all_ones(self):
        assert to_twos_complement(-1, 8) == 255

    def test_most_negative(self):
        assert to_twos_complement(-128, 8) == 128

    def test_zero(self):
        assert to_twos_complement(0, 8) == 0

    def test_overflow_positive(self):
        with pytest.raises(OverflowError):
            to_twos_complement(128, 8)

    def test_overflow_negative(self):
        with pytest.raises(OverflowError):
            to_twos_complement(-129, 8)

    def test_12bit_negative(self):
        assert to_twos_complement(-2048, 12) == 2048


class TestFromTwosComplement:
    def test_positive(self):
        assert from_twos_complement(105, 8) == 105

    def test_negative(self):
        assert from_twos_complement(255, 8) == -1

    def test_most_negative(self):
        assert from_twos_complement(128, 8) == -128

    def test_rejects_out_of_range_word(self):
        with pytest.raises(ValueError):
            from_twos_complement(256, 8)

    def test_rejects_negative_word(self):
        with pytest.raises(ValueError):
            from_twos_complement(-1, 8)


class TestRoundTrips:
    @given(st.integers(min_value=-128, max_value=127))
    def test_roundtrip_8bit(self, value):
        assert from_twos_complement(to_twos_complement(value, 8), 8) == value

    @given(st.integers(min_value=-2048, max_value=2047))
    def test_roundtrip_12bit(self, value):
        assert from_twos_complement(to_twos_complement(value, 12), 12) == value

    @given(st.integers(min_value=2, max_value=32), st.data())
    def test_roundtrip_any_width(self, bits, data):
        low, high = signed_range(bits)
        value = data.draw(st.integers(min_value=low, max_value=high))
        assert from_twos_complement(to_twos_complement(value, bits), bits) == value


class TestSignBit:
    def test_positive_has_zero_sign(self):
        assert sign_bit(5, 8) == 0

    def test_negative_has_one_sign(self):
        assert sign_bit(-5, 8) == 1

    def test_zero_sign(self):
        assert sign_bit(0, 8) == 0


class TestBitString:
    def test_paper_weight_w1(self):
        # Table I: W1 = 01101001 (105)
        assert bit_string(105, 8) == "01101001"

    def test_paper_weight_w2(self):
        # Table I: W2 = 01000010 (66)
        assert bit_string(66, 8) == "01000010"

    def test_negative(self):
        assert bit_string(-2, 4) == "1110"

    @given(st.integers(min_value=-128, max_value=127))
    def test_length_is_width(self, value):
        assert len(bit_string(value, 8)) == 8


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 8, 16, 1024])
    def test_powers(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -1, -2, 3, 5, 6, 7, 12])
    def test_non_powers(self, value):
        assert not is_power_of_two(value)


class TestClog2:
    @pytest.mark.parametrize("value,expected", [
        (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (16, 4),
    ])
    def test_values(self, value, expected):
        assert clog2(value) == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            clog2(0)

    @given(st.integers(min_value=1, max_value=10**6))
    def test_definition(self, value):
        k = clog2(value)
        assert 2 ** k >= value
        assert k == 0 or 2 ** (k - 1) < value


class TestPopcount:
    @pytest.mark.parametrize("value,expected", [
        (0, 0), (1, 1), (3, 2), (105, 4), (255, 8),
    ])
    def test_values(self, value, expected):
        assert popcount(value) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            popcount(-1)

    @given(st.integers(min_value=0, max_value=2**40))
    def test_matches_bin(self, value):
        assert popcount(value) == bin(value).count("1")
