"""Tests for the bit-accurate ASM and conventional multiplier models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.alphabet import (
    ALPHA_1,
    ALPHA_2,
    ALPHA_4,
    FULL_ALPHABETS,
)
from repro.asm.constraints import WeightConstrainer
from repro.asm.decompose import UnsupportedQuartetError
from repro.asm.multiplier import (
    FALLBACK_POLICIES,
    AlphabetSetMultiplier,
    ConventionalMultiplier,
)


class TestConventionalMultiplier:
    def test_exact(self):
        m = ConventionalMultiplier(8)
        assert m.multiply(105, 66) == 105 * 66

    def test_signs(self):
        m = ConventionalMultiplier(8)
        assert m.multiply(-105, 66) == -105 * 66
        assert m.multiply(105, -66) == -105 * 66
        assert m.multiply(-105, -66) == 105 * 66

    def test_range_check_weight(self):
        with pytest.raises(OverflowError):
            ConventionalMultiplier(8).multiply(128, 1)

    def test_range_check_operand(self):
        with pytest.raises(OverflowError):
            ConventionalMultiplier(8).multiply(1, -129)

    def test_array(self):
        m = ConventionalMultiplier(8)
        w = np.array([-3, 0, 7])
        x = np.array([5, 5, 5])
        np.testing.assert_array_equal(m.multiply_array(w, x), w * x)


class TestASMExactness:
    """With the full alphabet set the ASM must be an exact multiplier."""

    def test_exhaustive_8bit_weights(self):
        m = AlphabetSetMultiplier(8, FULL_ALPHABETS)
        for w in range(-127, 128):
            assert m.multiply(w, 93) == w * 93

    def test_paper_fig2_walkthrough(self):
        # Fig. 2: W = 01001010, product = (4M << 4) + 10M = 74M
        m = AlphabetSetMultiplier(8, ALPHA_4)
        for operand in (-128, -17, 0, 3, 127):
            assert m.multiply(0b1001010, operand) == 74 * operand

    @given(st.integers(min_value=-2047, max_value=2047),
           st.integers(min_value=-2048, max_value=2047))
    def test_12bit_full_set_exact(self, weight, operand):
        m = AlphabetSetMultiplier(12, FULL_ALPHABETS)
        assert m.multiply(weight, operand) == weight * operand

    def test_most_negative_weight_saturates_magnitude(self):
        # |-128| does not fit the 7 magnitude bits; datapath sees 127
        m = AlphabetSetMultiplier(8, FULL_ALPHABETS)
        assert m.multiply(-128, 3) == -127 * 3


class TestASMOnConstrainedWeights:
    """Constrain-then-multiply must be exact for every alphabet set —
    the invariant the whole retraining methodology rests on."""

    @pytest.mark.parametrize("bits", [8, 12])
    @pytest.mark.parametrize("aset", [ALPHA_1, ALPHA_2, ALPHA_4],
                             ids=["a1", "a2", "a4"])
    def test_exact_on_grid(self, bits, aset):
        c = WeightConstrainer(bits, aset)
        m = AlphabetSetMultiplier(bits, aset)
        limit = 2 ** (bits - 1)
        step = 7 if bits == 12 else 1
        for w in range(-limit, limit, step):
            cw = c.constrain(w)
            assert m.multiply(cw, 77) == cw * 77

    def test_unconstrained_raises_under_error_policy(self):
        m = AlphabetSetMultiplier(8, ALPHA_2)
        with pytest.raises(UnsupportedQuartetError):
            m.multiply(105, 3)  # R = 9 unsupported


class TestFallbackPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            AlphabetSetMultiplier(8, ALPHA_2, fallback="wild")

    def test_policies_tuple(self):
        assert set(FALLBACK_POLICIES) == {"error", "nearest", "truncate"}

    def test_nearest_matches_paper_rounding(self):
        # quartet 9 under {1,3}: neighbours 8/12, threshold 10 -> 8
        m = AlphabetSetMultiplier(8, ALPHA_2, fallback="nearest")
        assert m.effective_weight(9) == 8
        # quartet 10 -> 12
        assert m.effective_weight(10) == 12

    def test_truncate_rounds_down(self):
        m = AlphabetSetMultiplier(8, ALPHA_2, fallback="truncate")
        assert m.effective_weight(9) == 8
        assert m.effective_weight(10) == 8
        assert m.effective_weight(15) == 12

    def test_nearest_no_carry_across_quartets(self):
        # per-quartet control logic cannot carry: 15 stays within quartet
        m = AlphabetSetMultiplier(8, ALPHA_2, fallback="nearest")
        assert m.effective_weight(15) == 12

    def test_effective_weight_sign(self):
        m = AlphabetSetMultiplier(8, ALPHA_2, fallback="nearest")
        for w in range(-127, 128):
            assert m.effective_weight(-w) == -m.effective_weight(w)

    @pytest.mark.parametrize("fallback", ["nearest", "truncate"])
    def test_multiply_equals_effective_times_operand(self, fallback):
        m = AlphabetSetMultiplier(8, ALPHA_1, fallback=fallback)
        for w in range(-127, 128, 3):
            assert m.multiply(w, 19) == m.effective_weight(w) * 19


class TestEffectiveWeightTable:
    def test_table_matches_scalar(self):
        m = AlphabetSetMultiplier(8, ALPHA_2, fallback="nearest")
        table = m.effective_weight_table()
        for w in range(-128, 128):
            assert table[w + 128] == m.effective_weight(w)

    def test_multiply_array_matches_scalar(self):
        m = AlphabetSetMultiplier(8, ALPHA_4, fallback="nearest")
        weights = np.arange(-128, 128)
        got = m.multiply_array(weights, np.int64(31))
        expected = np.array([m.multiply(int(w), 31) for w in weights])
        np.testing.assert_array_equal(got, expected)

    def test_error_policy_array_raises_on_unsupported(self):
        m = AlphabetSetMultiplier(8, ALPHA_2)
        with pytest.raises(UnsupportedQuartetError):
            m.multiply_array(np.array([105]), np.int64(2))

    def test_error_policy_array_ok_on_grid(self):
        c = WeightConstrainer(12, ALPHA_1)
        m = AlphabetSetMultiplier(12, ALPHA_1)
        weights = c.constrain_array(np.arange(-2048, 2048))
        np.testing.assert_array_equal(
            m.multiply_array(weights, np.int64(5)), weights * 5)

    def test_out_of_range_weights(self):
        m = AlphabetSetMultiplier(8, FULL_ALPHABETS)
        with pytest.raises(OverflowError):
            m.multiply_array(np.array([200]), np.int64(1))

    def test_broadcasting(self):
        m = AlphabetSetMultiplier(8, FULL_ALPHABETS)
        weights = np.array([[1, 2], [3, 4]])
        operands = np.array([10, 100])
        np.testing.assert_array_equal(
            m.multiply_array(weights, operands), weights * operands)


class TestPrecomputeBank:
    def test_bank_contents(self):
        m = AlphabetSetMultiplier(8, ALPHA_4)
        assert m.precompute_bank(10) == {1: 10, 3: 30, 5: 50, 7: 70}

    def test_man_bank_is_passthrough(self):
        m = AlphabetSetMultiplier(8, ALPHA_1)
        assert m.precompute_bank(42) == {1: 42}

    def test_bank_range_check(self):
        with pytest.raises(OverflowError):
            AlphabetSetMultiplier(8, ALPHA_1).precompute_bank(400)


class TestErrorProfile:
    def test_full_set_exact_except_most_negative(self):
        # the only non-exact weight is -128, whose magnitude saturates to 127
        m = AlphabetSetMultiplier(8, FULL_ALPHABETS)
        profile = m.error_profile()
        assert profile["max_abs_error"] == 1  # |-128 -> -127|
        assert profile["fraction_exact"] == pytest.approx(255 / 256)

    def test_smaller_sets_have_larger_error(self):
        profiles = {}
        for name, aset in (("a1", ALPHA_1), ("a2", ALPHA_2), ("a4", ALPHA_4)):
            m = AlphabetSetMultiplier(8, aset, fallback="nearest")
            profiles[name] = m.error_profile()["mean_abs_error"]
        assert profiles["a1"] >= profiles["a2"] >= profiles["a4"]

    def test_nearest_beats_truncate(self):
        near = AlphabetSetMultiplier(
            8, ALPHA_2, fallback="nearest").error_profile()
        trunc = AlphabetSetMultiplier(
            8, ALPHA_2, fallback="truncate").error_profile()
        assert near["mean_abs_error"] <= trunc["mean_abs_error"]


class TestDatapathCrossCheck:
    """The explicit select/shift/add path and the effective-weight view must
    agree everywhere — they model the same hardware."""

    @settings(max_examples=50)
    @given(st.integers(min_value=-2048, max_value=2047),
           st.integers(min_value=-2048, max_value=2047),
           st.sampled_from(["nearest", "truncate"]))
    def test_12bit_agreement(self, weight, operand, fallback):
        m = AlphabetSetMultiplier(12, ALPHA_2, fallback=fallback)
        assert m.multiply(weight, operand) == \
            m.effective_weight(weight) * operand

    def test_8bit_exhaustive_agreement(self):
        m = AlphabetSetMultiplier(8, ALPHA_4, fallback="nearest")
        table = m.effective_weight_table()
        for w in range(-128, 128):
            assert m.multiply(w, 11) == int(table[w + 128]) * 11
