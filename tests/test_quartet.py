"""Unit and property tests for quartet layouts (paper Fig. 4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fixedpoint.quartet import LAYOUT_8BIT, LAYOUT_12BIT, QuartetLayout


class TestLayoutShape:
    def test_8bit_widths(self):
        # 8-bit weight: 4-bit R quartet + 3-bit P quartet (sign excluded)
        assert LAYOUT_8BIT.quartet_widths == (4, 3)

    def test_12bit_widths(self):
        # 12-bit weight (Fig. 4): R, Q full quartets + 3-bit P
        assert LAYOUT_12BIT.quartet_widths == (4, 4, 3)

    def test_16bit_widths(self):
        assert QuartetLayout(16).quartet_widths == (4, 4, 4, 3)

    def test_num_quartets(self):
        assert LAYOUT_8BIT.num_quartets == 2
        assert LAYOUT_12BIT.num_quartets == 3

    def test_max_magnitude(self):
        assert LAYOUT_8BIT.max_magnitude == 127
        assert LAYOUT_12BIT.max_magnitude == 2047

    def test_quartet_max(self):
        assert LAYOUT_8BIT.quartet_max(0) == 15
        assert LAYOUT_8BIT.quartet_max(1) == 7

    def test_rejects_tiny_widths(self):
        with pytest.raises(ValueError):
            QuartetLayout(4)

    def test_shift_of(self):
        assert LAYOUT_12BIT.shift_of(0) == 0
        assert LAYOUT_12BIT.shift_of(1) == 4
        assert LAYOUT_12BIT.shift_of(2) == 8

    def test_shift_of_out_of_range(self):
        with pytest.raises(IndexError):
            LAYOUT_8BIT.shift_of(2)


class TestSplitJoin:
    def test_paper_w1(self):
        # W1 = 105 = 0110_1001 -> R=9, P=6
        assert LAYOUT_8BIT.split(105) == (9, 6)

    def test_paper_w2(self):
        # W2 = 66 = 0100_0010 -> R=2, P=4
        assert LAYOUT_8BIT.split(66) == (2, 4)

    def test_12bit_example(self):
        assert LAYOUT_12BIT.split(0b101_1010_0110) == (6, 10, 5)

    def test_zero(self):
        assert LAYOUT_8BIT.split(0) == (0, 0)

    def test_max(self):
        assert LAYOUT_8BIT.split(127) == (15, 7)
        assert LAYOUT_12BIT.split(2047) == (15, 15, 7)

    def test_join_inverse(self):
        assert LAYOUT_8BIT.join((9, 6)) == 105

    def test_split_rejects_negative(self):
        with pytest.raises(ValueError):
            LAYOUT_8BIT.split(-1)

    def test_split_rejects_overflow(self):
        with pytest.raises(OverflowError):
            LAYOUT_8BIT.split(128)

    def test_join_rejects_wrong_count(self):
        with pytest.raises(ValueError):
            LAYOUT_8BIT.join((1, 2, 3))

    def test_join_rejects_oversized_quartet(self):
        with pytest.raises(ValueError):
            LAYOUT_8BIT.join((16, 0))

    def test_join_rejects_oversized_msb_quartet(self):
        with pytest.raises(ValueError):
            LAYOUT_8BIT.join((0, 8))  # P is only 3 bits


class TestSplitJoinProperties:
    @given(st.integers(min_value=0, max_value=127))
    def test_roundtrip_8bit(self, magnitude):
        assert LAYOUT_8BIT.join(LAYOUT_8BIT.split(magnitude)) == magnitude

    @given(st.integers(min_value=0, max_value=2047))
    def test_roundtrip_12bit(self, magnitude):
        assert LAYOUT_12BIT.join(LAYOUT_12BIT.split(magnitude)) == magnitude

    @given(st.integers(min_value=0, max_value=2047))
    def test_split_reconstructs_via_shifts(self, magnitude):
        quartets = LAYOUT_12BIT.split(magnitude)
        total = sum(q << LAYOUT_12BIT.shift_of(i)
                    for i, q in enumerate(quartets))
        assert total == magnitude

    @given(st.integers(min_value=5, max_value=24),
           st.data())
    def test_roundtrip_any_width(self, bits, data):
        layout = QuartetLayout(bits)
        magnitude = data.draw(
            st.integers(min_value=0, max_value=layout.max_magnitude))
        assert layout.join(layout.split(magnitude)) == magnitude

    @given(st.integers(min_value=0, max_value=2047))
    def test_quartets_within_widths(self, magnitude):
        quartets = LAYOUT_12BIT.split(magnitude)
        for value, width in zip(quartets, LAYOUT_12BIT.quartet_widths):
            assert 0 <= value < (1 << width)
