"""Tests for the compute-kernel layer (`repro.kernels`).

The load-bearing property is *bit-identity*: the fast (BLAS-in-float64)
backend must match the reference (exact integer) backend to the last bit
across word widths, alphabet sets, mixed per-layer plans and fallback
policies — it is the foundation of the serving stack's correctness and
of sharing pipeline cache entries across backends.
"""

import numpy as np
import pytest

from repro.asm.alphabet import ALPHA_2, standard_set
from repro.asm.multiplier import FALLBACK_POLICIES, effective_weight_table
from repro.datasets.registry import lenet, mlp
from repro.fixedpoint.qformat import QFormat
from repro.kernels import (
    BACKEND_NAMES,
    KernelBackendError,
    batched_accuracy,
    blas_exact,
    get_backend,
    quantize_codes_f64,
    register_backend,
)
from repro.kernels.registry import _REGISTRY, KernelBackend
from repro.nn.activations import Sigmoid
from repro.nn.quantized import QuantizationSpec, QuantizedNetwork, _QuantDense
from repro.pipeline.config import PipelineConfig, PipelineConfigError

RNG = np.random.default_rng(17)


def random_batch(n: int, width: int) -> np.ndarray:
    return RNG.uniform(-1.0, 1.0, size=(n, width))


def assert_backends_identical(quantized: QuantizedNetwork,
                              x: np.ndarray) -> None:
    reference = quantized.with_backend("reference")
    fast = quantized.with_backend("fast")
    assert np.array_equal(reference.forward(x), fast.forward(x))
    assert np.array_equal(reference.predict(x), fast.predict(x))


class TestRegistry:
    def test_builtin_backends(self):
        assert set(BACKEND_NAMES) == {"reference", "fast", "auto"}
        assert get_backend("reference").name == "reference"
        assert get_backend("fast").name == "fast"

    def test_auto_resolves_to_fast(self):
        assert get_backend("auto") is get_backend("fast")
        assert get_backend() is get_backend("fast")

    def test_instance_passthrough(self):
        backend = get_backend("reference")
        assert get_backend(backend) is backend

    def test_unknown_backend(self):
        with pytest.raises(KernelBackendError, match="unknown"):
            get_backend("simd")

    def test_duplicate_registration(self):
        probe = KernelBackend()
        register_backend("test-probe", probe)
        try:
            with pytest.raises(KernelBackendError, match="registered"):
                register_backend("test-probe", probe)
            register_backend("test-probe", probe, replace=True)
        finally:
            del _REGISTRY["test-probe"]


class TestFastReferenceEquivalence:
    """The seeded-random equivalence suite of the exactness guarantee."""

    @pytest.mark.parametrize("bits", [8, 12])
    @pytest.mark.parametrize("count", [1, 2, 4, 8])
    def test_constrained_mlp(self, bits, count):
        net = mlp([64, 24, 10], seed=bits + count)
        spec = QuantizationSpec.constrained(bits, standard_set(count))
        quantized = QuantizedNetwork.from_float(net, spec)
        assert_backends_identical(quantized, random_batch(33, 64))

    @pytest.mark.parametrize("bits", [8, 12])
    def test_conventional_mlp(self, bits):
        net = mlp([64, 24, 10], seed=bits)
        quantized = QuantizedNetwork.from_float(net, QuantizationSpec(bits))
        assert_backends_identical(quantized, random_batch(33, 64))

    @pytest.mark.parametrize("fallback",
                             [f for f in FALLBACK_POLICIES if f != "error"])
    @pytest.mark.parametrize("bits", [8, 12])
    @pytest.mark.parametrize("count", [1, 2, 4])
    def test_fallback_policies(self, bits, count, fallback):
        """Post-hoc deployment (no constraining) under every fallback."""
        net = mlp([64, 24, 10], seed=count)
        spec = QuantizationSpec(bits, standard_set(count), fallback=fallback)
        quantized = QuantizedNetwork.from_float(net, spec)
        assert_backends_identical(quantized, random_batch(33, 64))

    @pytest.mark.parametrize("bits", [8, 12])
    def test_mixed_per_layer_plan(self, bits):
        """§VI.E-style mixed plan: MAN first layer, exact second."""
        net = mlp([64, 24, 10], seed=3)
        layer_specs = [
            QuantizationSpec.constrained(bits, standard_set(1)),
            QuantizationSpec(bits),
        ]
        quantized = QuantizedNetwork.from_float(
            net, QuantizationSpec(bits), layer_specs=layer_specs)
        assert_backends_identical(quantized, random_batch(33, 64))

    @pytest.mark.parametrize("use_lut", [False, True])
    def test_cnn_with_pool(self, use_lut):
        """Conv + scaled-avg-pool + dense, with and without the LUT."""
        net = lenet(10, seed=4)
        spec = QuantizationSpec.constrained(12, ALPHA_2)
        quantized = QuantizedNetwork.from_float(net, spec, use_lut=use_lut)
        x = RNG.uniform(-1.0, 1.0, size=(3, 1, 32, 32))
        assert_backends_identical(quantized, x)

    def test_quantize_codes_f64_matches_int_path(self):
        fmt = QFormat(8, 7)
        values = RNG.normal(scale=0.7, size=(50, 20))
        values[0, :3] = [2.0, -2.0, 0.5 * fmt.resolution]  # saturate + tie
        codes = quantize_codes_f64(values, fmt)
        assert codes.dtype == np.float64
        np.testing.assert_array_equal(codes.astype(np.int64),
                                      fmt.quantize_array(values))


class TestFallbackLowering:
    def test_blas_exact_bound(self):
        act_fmt = QFormat(8, 7)
        w = np.full((100, 10), 127, dtype=np.int64)
        assert blas_exact(w, 100, act_fmt)
        # fan_in * max|W| * max|x| >= 2**53 -> not provably exact
        huge = np.full((4, 4), 2 ** 40, dtype=np.int64)
        assert not blas_exact(huge, 4096, QFormat(8, 7))
        assert blas_exact(np.empty((0, 4), dtype=np.int64), 0, act_fmt)

    def test_inexact_layer_falls_back_bit_identically(self):
        """A layer over the 2**53 bound runs on the integer kernels even
        under the fast backend — and still matches exactly."""
        act_fmt = QFormat(40, 39)
        w_int = RNG.integers(-(2 ** 30), 2 ** 30, size=(64, 10),
                             dtype=np.int64)
        layer = _QuantDense(w_int, QFormat(40, 39), np.zeros(10), Sigmoid(),
                            act_fmt, None, is_output=True)
        fast = get_backend("fast")
        assert fast.lowering(layer) == "integer"
        x = RNG.integers(-(2 ** 20), 2 ** 20, size=(7, 64), dtype=np.int64)
        ref_out, _ = get_backend("reference").dense(layer, x, act_fmt)
        fast_out, _ = fast.dense(layer, x.astype(np.float64), act_fmt)
        np.testing.assert_array_equal(ref_out, fast_out)

    def test_exact_layer_reports_blas(self):
        net = mlp([64, 24, 10], seed=5)
        quantized = QuantizedNetwork.from_float(net, QuantizationSpec(8))
        fast = get_backend("fast")
        assert [fast.lowering(layer) for layer in quantized.layers] == \
            ["blas", "blas"]


class TestDirectKernelMethodParity:
    """Call each abstract KernelBackend method directly on both built-in
    backends — the interface-level counterpart of the network-level
    identity suites, so no kernel family can drop out of test coverage
    unnoticed (enforced by lint rule RPR003)."""

    def test_quantize_input_identical(self):
        fmt = QFormat(8, 7)
        x = RNG.normal(scale=0.6, size=(20, 12))
        ref_codes = get_backend("reference").quantize_input(x, fmt)
        fast_codes = get_backend("fast").quantize_input(x, fmt)
        assert ref_codes.dtype == np.int64
        assert fast_codes.dtype == np.float64     # fast carrier dtype
        np.testing.assert_array_equal(ref_codes,
                                      fast_codes.astype(np.int64))

    def test_simulate_layer_identical(self):
        weights = RNG.integers(-100, 101, size=(16, 5))
        inputs = RNG.integers(-120, 121, size=16)
        ref = get_backend("reference").simulate_layer(
            weights, inputs, 4, (3, 5))
        fast = get_backend("fast").simulate_layer(
            weights, inputs, 4, (3, 5))
        assert ref == fast
        assert ref.cycles == 16 * 2               # two lane groups

    def test_project_weights_identical(self):
        from repro.asm.constraints import WeightConstrainer

        constrainer = WeightConstrainer(8, ALPHA_2)
        weights = RNG.normal(scale=0.4, size=(12, 6))
        ref = get_backend("reference").project_weights(
            weights.copy(), 8, constrainer, {})
        fast = get_backend("fast").project_weights(
            weights.copy(), 8, constrainer, {})
        np.testing.assert_array_equal(ref, fast)


class TestEffectiveWeightTableReuse:
    def test_public_function_hits_the_memoized_table(self):
        from repro.asm.multiplier import AlphabetSetMultiplier

        table = effective_weight_table(8, ALPHA_2, "nearest")
        via_multiplier = AlphabetSetMultiplier(
            8, ALPHA_2, fallback="nearest").effective_weight_table()
        assert table is via_multiplier
        assert not table.flags.writeable

    def test_bad_fallback_rejected(self):
        with pytest.raises(ValueError, match="fallback"):
            effective_weight_table(8, ALPHA_2, "zero")
        with pytest.raises(ValueError, match="fallback"):
            QuantizationSpec(8, ALPHA_2, fallback="zero")

    def test_spec_multiplier_is_lazy_but_available(self):
        spec = QuantizationSpec(8, ALPHA_2, fallback="nearest")
        assert spec.multiplier is not None
        assert spec.multiplier.alphabet_set is ALPHA_2
        assert QuantizationSpec(8).multiplier is None


class TestBatchedAccuracy:
    def predict_mod(self, x):
        # per-sample deterministic: class = first feature mod 3
        return np.asarray(x)[:, 0].astype(np.int64) % 3

    def test_independent_of_batch_size(self):
        net = mlp([64, 24, 10], seed=6)
        quantized = QuantizedNetwork.from_float(net, QuantizationSpec(8))
        x = random_batch(100, 64)
        labels = RNG.integers(0, 10, size=100)
        accs = {quantized.accuracy(x, labels, batch_size=b)
                for b in (1, 7, 100, 512)}
        assert len(accs) == 1

    def test_counts_correct_predictions(self):
        x = np.repeat(np.arange(10.0)[:, None], 4, axis=1)
        labels = (np.arange(10) % 3).astype(np.int64)
        labels[0] = 2  # one miss
        assert batched_accuracy(self.predict_mod, x, labels,
                                batch_size=4) == pytest.approx(0.9)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            batched_accuracy(self.predict_mod, np.zeros((3, 4)),
                             np.zeros(4))

    def test_bad_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            batched_accuracy(self.predict_mod, np.zeros((3, 4)),
                             np.zeros(3), batch_size=0)

    def test_empty(self):
        assert batched_accuracy(self.predict_mod, np.zeros((0, 4)),
                                np.zeros(0)) == 0.0


class TestPipelinePlumbing:
    def test_config_round_trip_and_validation(self):
        config = PipelineConfig(app="mnist_mlp", backend="fast",
                                eval_batch_size=64)
        assert PipelineConfig.from_dict(config.to_dict()) == config
        with pytest.raises(PipelineConfigError, match="backend"):
            PipelineConfig(app="mnist_mlp", backend="simd")
        with pytest.raises(PipelineConfigError, match="eval_batch_size"):
            PipelineConfig(app="mnist_mlp", eval_batch_size=0)

    def test_stage_keys_shared_across_backends(self):
        """backend / eval_batch_size must not split the stage cache."""
        from repro.pipeline.pipeline import Pipeline

        base = PipelineConfig(app="mnist_mlp",
                              designs=("conventional", "asm1"))
        variants = [base.with_overrides(backend="reference"),
                    base.with_overrides(backend="fast"),
                    base.with_overrides(eval_batch_size=7)]
        plan = Pipeline(base).plan()
        for stage in plan:
            keys = {Pipeline(cfg).stage_key(stage, plan)
                    for cfg in [base] + variants}
            assert len(keys) == 1, stage

    def test_backend_changes_config_digest(self):
        base = PipelineConfig(app="mnist_mlp")
        assert base.digest() != \
            base.with_overrides(backend="reference").digest()

    def test_search_space_propagates_backend(self):
        from repro.explore.space import SearchSpace, SearchSpaceError

        space = SearchSpace(app="mnist_mlp", designs=("asm1",),
                            backend="reference")
        assert SearchSpace.from_dict(space.to_dict()) == space
        (candidate,) = space.grid()
        assert candidate.backend == "reference"
        with pytest.raises(SearchSpaceError, match="backend"):
            SearchSpace(app="mnist_mlp", backend="simd")

    def test_cli_backend_flag(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["run", "cfg.json", "--backend", "fast"])
        assert args.backend == "fast"
        args = parser.parse_args(["explore", "space.toml",
                                  "--backend", "reference"])
        assert args.backend == "reference"

    def test_pipeline_designs_bit_identical_across_backends(self, tmp_path):
        """Acceptance: conventional, asm1 and a mixed design deploy
        bit-identically on both backends after a real (tiny) pipeline."""
        from repro.pipeline.config import Budget
        from repro.pipeline.pipeline import Pipeline
        from repro.pipeline.stages import PipelineContext

        config = PipelineConfig(
            app="mnist_mlp", designs=("conventional", "asm1", "mixed:1-0"),
            stages=("train", "quantize", "constrain", "evaluate"),
            budget=Budget("tiny", n_train=120, n_test=60, max_epochs=2,
                          retrain_epochs=1),
            cache_dir=str(tmp_path / "cache"))
        ctx = PipelineContext(config)
        report = Pipeline(config).run(context=ctx)
        _, x_test = ctx.arrays()
        for design in ("asm1", "mixed:1-0"):
            quantized = ctx.design_quantized(design)
            assert_backends_identical(quantized, x_test)
        # the conventional baseline too
        ctx.model.load_state(ctx.train_state)
        baseline = QuantizedNetwork.from_float(
            ctx.model, QuantizationSpec(ctx.bits))
        assert_backends_identical(baseline, x_test)
        assert report.evaluate is not None
